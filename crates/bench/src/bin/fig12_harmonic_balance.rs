//! **F12 (extension) — harmonic balance: the loaded stage at large
//! signal.**
//!
//! The fixed-Vds time-domain path compresses only through the gm
//! nonlinearity; harmonic balance adds the load-line swing — knee clipping
//! and drain self-biasing. Expected shape: HB shows earlier/steeper
//! compression into a high-impedance load, harmonic powers rising ~k dB
//! per dB of drive for the k-th harmonic, and a DC current shift at high
//! drive.

use lna_bench::{header, print_series};
use rfkit_circuit::hb::{solve, HbConfig, HbTestbench};
use rfkit_circuit::{single_tone, TwoToneSpec};
use rfkit_device::Phemt;
use rfkit_num::units::dbm_from_watts;
use rfkit_num::Complex;

fn main() {
    header(
        "Figure 12 (extension)",
        "harmonic balance vs fixed-Vds analysis at large signal",
    );
    let device = Phemt::atf54143_like();
    let op = device.operating_point(device.bias_for_current(3.0, 0.06).unwrap(), 3.0);
    let r_load = 100.0;
    let bench = HbTestbench {
        device: &device,
        op,
        vdd: op.vds + op.ids * 20.0,
        r_dc_feed: 20.0,
        load: Box::new(move |_| Complex::real(r_load)),
    };
    let cfg = HbConfig::default();

    let amplitudes: Vec<f64> = (1..=12).map(|k| 0.03 * k as f64).collect();
    let mut p1_hb = Vec::new();
    let mut p2_hb = Vec::new();
    let mut p3_hb = Vec::new();
    let mut idc = Vec::new();
    let mut p1_fixed = Vec::new();
    for &a in &amplitudes {
        let sol = solve(&bench, a, &cfg).expect("HB converges");
        p1_hb.push(sol.harmonic_power_dbm(1, Complex::real(r_load)));
        p2_hb.push(sol.harmonic_power_dbm(2, Complex::real(r_load)));
        p3_hb.push(sol.harmonic_power_dbm(3, Complex::real(r_load)));
        idc.push(sol.dc_current() * 1e3);
        // Fixed-Vds path at the same gate amplitude, same load resistance.
        let pin_dbm = dbm_from_watts(a * a / (8.0 * 50.0));
        let (p_out, _) = single_tone(
            &device,
            &op,
            &TwoToneSpec {
                pin_dbm,
                r_load,
                ..Default::default()
            },
        );
        p1_fixed.push(p_out);
    }
    println!("\nload = {r_load} Ω, bias 3 V / 60 mA; per gate-drive amplitude:");
    print_series(
        "A_gate (V)",
        &["P1 HB (dBm)", "P1 fixed-Vds", "P2 HB", "P3 HB", "Idc (mA)"],
        &amplitudes,
        &[p1_hb.clone(), p1_fixed.clone(), p2_hb, p3_hb, idc],
    );
    let gap_small = (p1_hb[0] - p1_fixed[0]).abs();
    let gap_large = (p1_hb.last().unwrap() - p1_fixed.last().unwrap()).abs();
    println!(
        "\nHB-vs-fixed fundamental gap: {gap_small:.2} dB at small signal, {gap_large:.2} dB at full drive"
    );
    println!("(the load-line effects only harmonic balance captures)");
}
