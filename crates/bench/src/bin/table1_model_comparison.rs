//! **T1 — pHEMT model comparison** (paper claim 1: "an extraction of pHEMT
//! model parameters was performed, including comparisons among several
//! models").
//!
//! Extracts all five DC models from the golden device's noisy
//! characterization data with the three-step procedure and tabulates the
//! residual fit errors. Expected shape: Angelov (the generating family)
//! fits best on DC; the Curtice quadratic — no gm-bell, no knee
//! flexibility — is clearly worst; all models fit the small-signal
//! S-parameters comparably because the shell is free.

use lna::report::format_table;
use lna_bench::{golden_dataset, header};
use rfkit_device::MeasurementNoise;
use rfkit_extract::{compare_models, ThreeStepConfig};

fn main() {
    header("Table 1", "DC model comparison after three-step extraction");
    let data = golden_dataset(MeasurementNoise::default());
    let cfg = ThreeStepConfig {
        step1_evals: 20_000,
        step2_evals: 25_000,
        step3_evals: 2_000,
        seed: 0x7ab1e1,
    };
    let reports = compare_models(&data, &cfg);
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.n_params.to_string(),
                format!("{:.4}", r.dc_rmse),
                format!("{:.4}", r.sparam_rmse),
                r.evaluations.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["model", "params", "DC RMSE (rel)", "S RMSE", "evaluations"],
            &rows,
        )
    );
    println!(
        "winner: {} (DC RMSE {:.4}); worst: {} (DC RMSE {:.4})",
        reports[0].name,
        reports[0].dc_rmse,
        reports.last().unwrap().name,
        reports.last().unwrap().dc_rmse
    );
}
