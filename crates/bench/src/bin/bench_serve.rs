//! BENCH_serve: in-process load generator for the `rfkit-serve` batch
//! server. N concurrent clients drive a mixed request corpus (band
//! sweeps over a shared candidate pool, netlist verifies, Monte-Carlo
//! yields, pings) against an in-process server, and every round-trip
//! latency streams into the same mergeable `QuantileSketch` the
//! aggregate profiler uses. The report —
//! `results/BENCH_serve.json` — carries p50/p90/p99 latency, throughput,
//! and the cache-hit economics of the shared design and plan caches, so
//! future PRs can track serving-path performance against one artifact.
//!
//! The corpus draws designs from a small shared pool on purpose: cross-
//! client repeats are what exercise the shared `DesignCache`, and every
//! verify compiles (then reuses) the same `StampPlan`s, so a healthy run
//! must show nonzero hit rates on both caches. The bench hard-asserts
//! that, plus zero protocol errors, before it writes the report.

use std::collections::BTreeMap;
use std::thread;
use std::time::Instant;

use lna::{snap_to_catalog, DesignVariables};
use rfkit_num::rng::Rng64;
use rfkit_num::QuantileSketch;
use rfkit_obs::json::JsonObj;
use rfkit_serve::{client, Client, ServeConfig, Server, StatsSnapshot};

struct Args {
    clients: usize,
    requests: usize,
    workers: usize,
    queue: usize,
    out: String,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            clients: 8,
            requests: 48,
            workers: 4,
            queue: 256,
            out: "results/BENCH_serve.json".into(),
        }
    }
}

fn parse_args() -> Args {
    let mut a = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--clients" => a.clients = val().parse().expect("--clients"),
            "--requests" => a.requests = val().parse().expect("--requests"),
            "--workers" => a.workers = val().parse().expect("--workers"),
            "--queue" => a.queue = val().parse().expect("--queue"),
            "--out" => a.out = val(),
            other => {
                panic!("unknown flag {other} (try --clients/--requests/--workers/--queue/--out)")
            }
        }
    }
    assert!(a.clients > 0 && a.requests > 0, "need work to generate");
    a
}

/// Shared candidate pool: six catalog-snapped designs. Every client
/// cycles through the same pool, so repeats land in the shared caches.
fn pool_vars(seed: u64) -> DesignVariables {
    let mut rng = Rng64::new(seed);
    snap_to_catalog(DesignVariables {
        vds: rng.uniform(2.0, 4.0),
        ids: rng.uniform(0.02, 0.08),
        l1: rng.uniform(3e-9, 12e-9),
        ls_deg: rng.uniform(0.1e-9, 0.8e-9),
        l2: rng.uniform(5e-9, 15e-9),
        c2: rng.uniform(1e-12, 4e-12),
        r_bias: rng.uniform(15.0, 60.0),
    })
}

/// One client's corpus entry: request kind plus framed payload.
fn corpus(k: u64, i: u64) -> (&'static str, String) {
    let id = k * 1_000_000 + i;
    let vars = pool_vars(1 + (i + k) % 6);
    match i % 8 {
        4 => ("verify", client::verify_json(id, &vars, None)),
        5 => ("yield", client::yield_json(id, &vars, 12, k ^ i)),
        6 => ("ping", client::ping_json(id)),
        // A second, narrower band keeps more than one per-band design
        // cache warm.
        3 => (
            "sweep",
            client::sweep_json(id, &vars, Some((1.559e9, 1.61e9, 11)), Some(0.25)),
        ),
        _ => ("sweep", client::sweep_json(id, &vars, None, Some(0.25))),
    }
}

struct ClientReport {
    latency: QuantileSketch,
    per_kind: BTreeMap<&'static str, QuantileSketch>,
    statuses: BTreeMap<String, u64>,
}

fn run_client(addr: std::net::SocketAddr, k: u64, requests: usize) -> ClientReport {
    let mut c = Client::connect(addr).expect("client connects");
    let mut report = ClientReport {
        latency: QuantileSketch::new(),
        per_kind: BTreeMap::new(),
        statuses: BTreeMap::new(),
    };
    for i in 0..requests as u64 {
        let (kind, req) = corpus(k, i);
        let t = Instant::now();
        let resp = c.call(&req).expect("response arrives");
        let us = t.elapsed().as_micros() as f64;
        assert_eq!(resp.id, k * 1_000_000 + i, "response correlated by id");
        assert!(
            matches!(resp.status.as_str(), "ok" | "degraded" | "infeasible"),
            "clean load must never see `{}`: {}",
            resp.status,
            resp.raw
        );
        report.latency.record(us);
        report.per_kind.entry(kind).or_default().record(us);
        *report.statuses.entry(resp.status).or_insert(0) += 1;
    }
    report
}

fn report_json(
    a: &Args,
    elapsed_s: f64,
    latency: &QuantileSketch,
    per_kind: &BTreeMap<&'static str, QuantileSketch>,
    statuses: &BTreeMap<String, u64>,
    stats: &StatsSnapshot,
) -> String {
    let total = (a.clients * a.requests) as f64;
    let mut lat = JsonObj::new();
    lat.num("p50", latency.quantile(0.50));
    lat.num("p90", latency.quantile(0.90));
    lat.num("p99", latency.quantile(0.99));
    lat.num("count", latency.count() as f64);
    let mut kinds = JsonObj::new();
    for (kind, sk) in per_kind {
        let mut o = JsonObj::new();
        o.num("p50_us", sk.quantile(0.50));
        o.num("p99_us", sk.quantile(0.99));
        o.num("count", sk.count() as f64);
        kinds.raw(kind, &o.finish());
    }
    let mut st = JsonObj::new();
    for (status, n) in statuses {
        st.num(status, *n as f64);
    }
    let mut server = JsonObj::new();
    server.num("workers", a.workers as f64);
    server.num("queue_capacity", a.queue as f64);
    server.num("accepted", stats.accepted as f64);
    server.num("completed", stats.completed as f64);
    server.num("degraded", stats.degraded as f64);
    server.num("rejected", stats.rejected as f64);
    server.num("expired", stats.expired as f64);
    server.num("protocol_errors", stats.protocol_errors as f64);
    server.num("internal_errors", stats.internal_errors as f64);
    let dc_lookups = (stats.design_cache_hits + stats.design_cache_misses) as f64;
    let mut dc = JsonObj::new();
    dc.num("hits", stats.design_cache_hits as f64);
    dc.num("misses", stats.design_cache_misses as f64);
    dc.num("uncacheable", stats.design_cache_uncacheable as f64);
    dc.num("entries", stats.design_cache_entries as f64);
    dc.num(
        "hit_rate",
        stats.design_cache_hits as f64 / dc_lookups.max(1.0),
    );
    let pc_lookups = (stats.plan_cache_hits + stats.plan_cache_misses) as f64;
    let mut pc = JsonObj::new();
    pc.num("hits", stats.plan_cache_hits as f64);
    pc.num("misses", stats.plan_cache_misses as f64);
    pc.num("entries", stats.plan_cache_entries as f64);
    pc.num(
        "hit_rate",
        stats.plan_cache_hits as f64 / pc_lookups.max(1.0),
    );
    let mut doc = JsonObj::new();
    doc.str("bench", "BENCH_serve");
    doc.num("clients", a.clients as f64);
    doc.num("requests_per_client", a.requests as f64);
    doc.num("total_requests", total);
    doc.num("elapsed_s", elapsed_s);
    doc.num("throughput_rps", total / elapsed_s.max(1e-9));
    doc.raw("latency_us", &lat.finish());
    doc.raw("per_kind", &kinds.finish());
    doc.raw("statuses", &st.finish());
    doc.raw("server", &server.finish());
    doc.raw("design_cache", &dc.finish());
    doc.raw("plan_cache", &pc.finish());
    doc.finish()
}

fn main() {
    let a = parse_args();
    lna_bench::header(
        "BENCH_serve",
        "design-as-a-service latency and throughput under concurrent mixed load",
    );
    assert!(
        a.queue >= a.clients,
        "queue capacity below the client count would make backpressure \
         part of the steady state; size the queue for the load"
    );
    let server = Server::start(ServeConfig {
        workers: a.workers,
        queue_capacity: a.queue,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr();
    println!(
        "server {addr}: {} workers, queue {}; load: {} clients x {} requests",
        a.workers, a.queue, a.clients, a.requests
    );

    // Warmup outside the timed window: one pass over the corpus kinds so
    // the timed run measures steady-state serving, not first-touch plan
    // compilation.
    // (Client index 9999 stays clear of the timed clients' id ranges and
    // keeps ids exactly representable through the JSON f64 round-trip.)
    run_client(addr, 9_999, 8.min(a.requests));

    let t0 = Instant::now();
    let handles: Vec<_> = (0..a.clients as u64)
        .map(|k| {
            let requests = a.requests;
            thread::spawn(move || run_client(addr, k, requests))
        })
        .collect();
    let mut latency = QuantileSketch::new();
    let mut per_kind: BTreeMap<&'static str, QuantileSketch> = BTreeMap::new();
    let mut statuses: BTreeMap<String, u64> = BTreeMap::new();
    for h in handles {
        let r = h.join().expect("client thread");
        latency.merge(&r.latency);
        for (kind, sk) in &r.per_kind {
            per_kind.entry(kind).or_default().merge(sk);
        }
        for (status, n) in &r.statuses {
            *statuses.entry(status.clone()).or_insert(0) += n;
        }
    }
    let elapsed_s = t0.elapsed().as_secs_f64();
    let stats = server.shutdown();

    // The economics the serving architecture exists for: shared caches
    // must be earning hits under this corpus, and a clean load must be
    // protocol-error free. Hard failures, not footnotes.
    assert_eq!(stats.protocol_errors, 0, "protocol errors under clean load");
    assert_eq!(stats.internal_errors, 0, "handler panics under clean load");
    assert_eq!(stats.rejected, 0, "queue sized for the load; no overloads");
    assert!(
        stats.design_cache_hits > 0,
        "shared design cache earned no hits — pooled corpus broken?"
    );
    assert!(
        stats.plan_cache_hits > 0,
        "shared plan cache earned no hits — verify corpus broken?"
    );

    let total = (a.clients * a.requests) as f64;
    println!(
        "\n{} requests in {elapsed_s:.3} s = {:.1} req/s",
        total as u64,
        total / elapsed_s.max(1e-9)
    );
    println!(
        "latency: p50 {:.0} us | p90 {:.0} us | p99 {:.0} us",
        latency.quantile(0.50),
        latency.quantile(0.90),
        latency.quantile(0.99)
    );
    println!(
        "design cache: {} hits / {} misses ({} uncacheable); plan cache: {} hits / {} misses",
        stats.design_cache_hits,
        stats.design_cache_misses,
        stats.design_cache_uncacheable,
        stats.plan_cache_hits,
        stats.plan_cache_misses
    );

    let json = report_json(&a, elapsed_s, &latency, &per_kind, &statuses, &stats);
    if let Some(dir) = std::path::Path::new(&a.out).parent() {
        std::fs::create_dir_all(dir).expect("results dir");
    }
    std::fs::write(&a.out, &json).expect("write BENCH_serve report");
    println!("wrote {}", a.out);
    rfkit_obs::flush();
}
