//! **T6 (extension) — production yield of the final design.**
//!
//! Manufactures 200 units of the reference design at three component
//! tolerance grades and grades each against a spec set just under the
//! nominal performance. Expected shape: yield rises monotonically with
//! part quality, and the dominant failure mechanism identifies the
//! binding margin.

use lna::report::format_table;
use lna::{yield_analysis, Amplifier, BandMetrics, BandSpec, BuildConfig, YieldSpec};
use lna_bench::{header, reference_design};
use rfkit_device::Phemt;
use rfkit_num::stats;

fn main() {
    header(
        "Table 6 (extension)",
        "production yield vs component tolerance",
    );
    let device = Phemt::atf54143_like();
    let design = reference_design(&device);
    let band = BandSpec::gnss();
    let nominal = BandMetrics::evaluate(&Amplifier::new(&device, design.snapped), &band)
        .expect("design feasible");
    let spec = YieldSpec {
        max_nf_db: nominal.worst_nf_db + 0.05,
        min_gain_db: nominal.min_gain_db - 0.5,
        max_s11_db: -8.0,
        require_stability: true,
    };
    println!(
        "\nspec (from nominal NF {:.3} dB / gain {:.2} dB): NF <= {:.3} dB, gain >= {:.2} dB, |S11| <= -8 dB, mu > 1",
        nominal.worst_nf_db, nominal.min_gain_db, spec.max_nf_db, spec.min_gain_db
    );

    let mut rows = Vec::new();
    for (grade, tol) in [
        ("E24 +-10 %", 0.10),
        ("E24 +-5 %", 0.05),
        ("E96 +-1 %", 0.01),
    ] {
        let report = yield_analysis(
            &device,
            &design.snapped,
            &spec,
            &band,
            200,
            &BuildConfig {
                tolerance: tol,
                ..Default::default()
            },
            0,
        );
        rows.push(vec![
            grade.to_string(),
            format!("{:.1} %", 100.0 * report.yield_fraction()),
            format!("{:.3}", stats::median(&report.nf_db)),
            format!("{:.2}", stats::median(&report.gain_db)),
            report.dominant_failure().unwrap_or("none").to_string(),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "parts",
                "yield (200 units)",
                "median NF (dB)",
                "median gain (dB)",
                "dominant failure",
            ],
            &rows,
        )
    );
}
