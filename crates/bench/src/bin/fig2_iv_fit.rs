//! **F2 — DC I-V fit overlay.**
//!
//! Prints measured vs extracted-model drain current along three gate-bias
//! curves. Expected shape: the Angelov fit overlays the noisy measurement
//! within the noise; the Curtice-quadratic fit visibly misses the knee and
//! the gm compression.

use lna_bench::{golden_dataset, header, print_series};
use rfkit_device::dc::{Angelov, CurticeQuadratic, DcModel as _};
use rfkit_device::MeasurementNoise;
use rfkit_extract::{three_step, ThreeStepConfig};
use rfkit_num::linspace;

fn main() {
    header("Figure 2", "DC I-V curves: measured vs extracted models");
    let data = golden_dataset(MeasurementNoise::default());
    let cfg = ThreeStepConfig {
        step1_evals: 20_000,
        step2_evals: 8_000,
        step3_evals: 1_000,
        seed: 2,
    };
    let angelov = three_step(&Angelov, &data, &cfg);
    let curtice = three_step(&CurticeQuadratic, &data, &cfg);
    let golden = rfkit_device::GoldenDevice::default();

    for vgs in [-0.5, -0.3, 0.0] {
        println!("\nVgs = {vgs} V  (Ids in mA)");
        let vds_grid = linspace(0.0, 4.0, 9);
        let measured: Vec<f64> = vds_grid
            .iter()
            .map(|&v| 1e3 * golden.device.dc_model.ids(&golden.device.dc_params, vgs, v))
            .collect();
        let fit_a: Vec<f64> = vds_grid
            .iter()
            .map(|&v| 1e3 * Angelov.ids(&angelov.dc_params, vgs, v))
            .collect();
        let fit_c: Vec<f64> = vds_grid
            .iter()
            .map(|&v| 1e3 * CurticeQuadratic.ids(&curtice.dc_params, vgs, v))
            .collect();
        print_series(
            "Vds (V)",
            &["golden", "Angelov fit", "CurticeQ fit"],
            &vds_grid,
            &[measured, fit_a, fit_c],
        );
    }
    println!(
        "\nfit quality: Angelov DC RMSE = {:.4}, Curtice quadratic DC RMSE = {:.4}",
        angelov.dc_rmse, curtice.dc_rmse
    );
}
