//! **T7 (extension) — pre-filter placement in the GNSS front end.**
//!
//! Compares three receive chains at GPS L1 with an 800 MHz cellular
//! blocker: LNA alone, filter→LNA (blocker protection first) and
//! LNA→filter (noise first). Expected shape: the filter-first chain pays
//! its insertion loss directly in system NF but kills the blocker before
//! the LNA; the LNA-first chain keeps the NF near the amplifier's own
//! value while the blocker hits the transistor unattenuated — the classic
//! architecture trade. The filter is evaluated with tuned finite-Q
//! resonators (Q_L = 40, Q_C = 400).

use lna::report::format_table;
use lna::Amplifier;
use lna_bench::{header, reference_design};
use rfkit_device::Phemt;
use rfkit_num::units::{db_from_amplitude_ratio, T0_KELVIN};
use rfkit_num::Complex;
use rfkit_passive::{BandpassFilter, FilterFamily};

const L1: f64 = 1.57542e9;
const BLOCKER: f64 = 0.8e9;

fn main() {
    header(
        "Table 7 (extension)",
        "pre-filter placement: NF vs blocker protection",
    );
    let device = Phemt::atf54143_like();
    let design = reference_design(&device);
    let amp = Amplifier::new(&device, design.snapped);
    let filter = BandpassFilter::synthesize(FilterFamily::Butterworth, 3, 1.1e9, 1.7e9, 50.0);

    let chain_of = |filter_first: bool, f: f64| {
        let amp_tp = amp.noisy_two_port(f).expect("feasible");
        let filt_tp = filter.noisy_two_port_q(f, 40.0, 400.0, T0_KELVIN);
        if filter_first {
            filt_tp.cascade(&amp_tp)
        } else {
            amp_tp.cascade(&filt_tp)
        }
    };

    let mut rows = Vec::new();
    // LNA alone.
    {
        let tp = amp.noisy_two_port(L1).unwrap();
        let nf = 10.0
            * tp.noise_params(50.0)
                .unwrap()
                .noise_factor(Complex::ZERO)
                .log10();
        let blocker_gain = db_from_amplitude_ratio(
            amp.noisy_two_port(BLOCKER)
                .unwrap()
                .abcd
                .to_s(50.0)
                .unwrap()
                .s21()
                .abs(),
        );
        rows.push(vec![
            "LNA only".to_string(),
            format!("{nf:.3}"),
            format!("{blocker_gain:+.1}"),
            "none".to_string(),
        ]);
    }
    for (name, filter_first) in [("filter -> LNA", true), ("LNA -> filter", false)] {
        let tp = chain_of(filter_first, L1);
        let nf = 10.0
            * tp.noise_params(50.0)
                .unwrap()
                .noise_factor(Complex::ZERO)
                .log10();
        let blocker_gain = db_from_amplitude_ratio(
            chain_of(filter_first, BLOCKER)
                .abcd
                .to_s(50.0)
                .unwrap()
                .s21()
                .abs(),
        );
        let device_protection = if filter_first {
            format!("{:.1} dB before the FET", -filter.s21_db_ideal(BLOCKER))
        } else {
            "none (blocker hits the FET)".to_string()
        };
        rows.push(vec![
            name.to_string(),
            format!("{nf:.3}"),
            format!("{blocker_gain:+.1}"),
            device_protection,
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "chain",
                "system NF at L1 (dB)",
                "blocker gain (dB)",
                "blocker rejection at the device",
            ],
            &rows,
        )
    );
    println!("Both filtered chains suppress the blocker at the OUTPUT equally;");
    println!("only filter-first protects the transistor's own linearity — at the");
    println!("price of the filter loss appearing dB-for-dB in the noise figure.");
}
