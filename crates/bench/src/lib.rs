//! Shared helpers for the experiment binaries that regenerate every table
//! and figure of the paper (see DESIGN.md for the experiment index).

#![forbid(unsafe_code)]

use lna::{BandSpec, DesignConfig, DesignGoals, LnaDesign};
use rfkit_device::{GoldenDevice, MeasurementNoise, Phemt};
use rfkit_extract::ExtractionData;

/// Builds the standard characterization data set of the golden device.
pub fn golden_dataset(noise: MeasurementNoise) -> ExtractionData {
    let _span = rfkit_obs::span("bench.golden_dataset");
    let g = GoldenDevice::default();
    let (vgs_grid, vds_grid) = GoldenDevice::standard_iv_grid();
    let bias_vgs = g
        .device
        .bias_for_current(3.0, 0.06)
        .expect("characterization bias");
    ExtractionData {
        dc: g.measure_dc(&vgs_grid, &vds_grid, &noise),
        sparams: g.measure_sparams(bias_vgs, 3.0, &GoldenDevice::standard_freq_grid(), &noise),
        bias_vgs,
        bias_vds: 3.0,
    }
}

/// Runs the paper's reference design flow (used by several figures so they
/// all describe the same amplifier).
pub fn reference_design(device: &Phemt) -> LnaDesign {
    let _span = rfkit_obs::span("bench.reference_design");
    lna::design_lna(
        device,
        &DesignGoals::default(),
        &DesignConfig {
            max_evals: 12_000,
            seed: 0xd0be5,
            band: BandSpec::gnss(),
            improved: true,
        },
    )
}

/// Prints an experiment header.
pub fn header(id: &str, title: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("(reproduction of Dobes et al., SOCC 2015 — see EXPERIMENTS.md)");
    println!("================================================================");
}

/// Prints a named data series as aligned columns, one row per point.
pub fn print_series(x_label: &str, y_labels: &[&str], xs: &[f64], ys: &[Vec<f64>]) {
    assert!(ys.iter().all(|col| col.len() == xs.len()), "ragged series");
    print!("{x_label:>14}");
    for label in y_labels {
        print!(" {label:>14}");
    }
    println!();
    for (i, x) in xs.iter().enumerate() {
        print!("{x:>14.6}");
        for col in ys {
            print!(" {:>14.6}", col[i]);
        }
        println!();
    }
}

pub mod timing {
    //! Minimal wall-clock benchmarking and JSON reporting for the parallel
    //! engine — hand-rolled because the offline build environment cannot
    //! fetch criterion. Timings are best-of-`reps` to suppress scheduler
    //! noise, and every record carries the machine's core count so the
    //! perf trajectory across PRs compares like with like.

    use std::time::Instant;

    /// Per-repetition wall-time statistics on the same mergeable
    /// [`QuantileSketch`](rfkit_num::QuantileSketch) the aggregate
    /// profiler streams histogram samples into — one summary type for
    /// bench reports and profiles, and sketches from separate runs (or
    /// threads) merge deterministically for trend tracking.
    #[derive(Debug, Clone, Default)]
    pub struct RepStats {
        sketch: rfkit_num::QuantileSketch,
    }

    impl RepStats {
        /// Empty statistics.
        pub fn new() -> Self {
            Self::default()
        }

        /// Record one repetition's wall time in seconds.
        pub fn record_s(&mut self, seconds: f64) {
            self.sketch.record(seconds * 1e6);
        }

        /// Repetitions recorded.
        pub fn count(&self) -> u64 {
            self.sketch.count()
        }

        /// Median repetition time in microseconds.
        pub fn p50_us(&self) -> f64 {
            self.sketch.quantile(0.50)
        }

        /// 95th-percentile repetition time in microseconds.
        pub fn p95_us(&self) -> f64 {
            self.sketch.quantile(0.95)
        }

        /// Fold another run's repetitions into this summary.
        pub fn merge(&mut self, other: &RepStats) {
            self.sketch.merge(&other.sketch);
        }
    }

    /// Best-of-`reps` wall-clock seconds for `f` (after one warmup
    /// call), plus the per-repetition distribution. The minimum is the
    /// headline (noise only adds time); the [`RepStats`] spread shows
    /// how noisy the run was.
    pub fn time_best_of_stats<F: FnMut()>(reps: usize, mut f: F) -> (f64, RepStats) {
        assert!(reps > 0, "need at least one repetition");
        f(); // warmup: populates caches and the thread pool
        let mut best = f64::INFINITY;
        let mut stats = RepStats::new();
        for _ in 0..reps {
            let t = Instant::now();
            f();
            let dt = t.elapsed().as_secs_f64();
            stats.record_s(dt);
            best = best.min(dt);
        }
        (best, stats)
    }

    /// Best-of-`reps` wall-clock seconds for `f` (after one warmup call).
    ///
    /// # Panics
    ///
    /// Panics if `reps == 0`.
    pub fn time_best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
        assert!(reps > 0, "need at least one repetition");
        f(); // warmup: JIT-free in Rust, but populates caches and the pool
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t = Instant::now();
            f();
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    }

    /// Adaptive best-of timing: repeats `f` (after one warmup call) until
    /// the best observed time stops improving by more than `tol`
    /// (relative) over a window of `min_reps` consecutive repetitions, or
    /// `max_reps` is reached. Returns `(best_s, reps_used, stable)`,
    /// where `stable` is false only when the budget ran out before the
    /// minimum settled — the caller should report that run as noisy
    /// rather than silently trusting it.
    ///
    /// Min-of-reps is the right estimator for a deterministic workload:
    /// every source of error (scheduler preemption, cache cold-start,
    /// frequency ramp) only ever *adds* time, so the minimum converges to
    /// the true cost from above and the stopping rule just needs the
    /// minimum to stop moving.
    ///
    /// # Panics
    ///
    /// Panics if `min_reps == 0`, `max_reps < min_reps`, or `tol` is not
    /// positive.
    pub fn time_until_stable<F: FnMut()>(
        min_reps: usize,
        max_reps: usize,
        tol: f64,
        mut f: F,
    ) -> (f64, usize, bool) {
        assert!(min_reps > 0, "need at least one repetition");
        assert!(max_reps >= min_reps, "max_reps must cover min_reps");
        assert!(tol > 0.0, "tolerance must be positive");
        f(); // warmup: populates caches and the thread pool
        let mut best = f64::INFINITY;
        let mut since_improved = 0usize;
        for rep in 1..=max_reps {
            let t = Instant::now();
            f();
            let dt = t.elapsed().as_secs_f64();
            if dt < best * (1.0 - tol) {
                best = best.min(dt);
                since_improved = 0;
            } else {
                best = best.min(dt);
                since_improved += 1;
            }
            if rep >= min_reps && since_improved >= min_reps {
                return (best, rep, true);
            }
        }
        (best, max_reps, false)
    }

    /// One benchmark case: a workload timed serially and at several thread
    /// counts.
    #[derive(Debug, Clone, PartialEq)]
    pub struct BenchRecord {
        /// Workload name, e.g. `"de_population_eval"`.
        pub name: String,
        /// Serial (RFKIT_THREADS=1) wall-clock seconds.
        pub serial_s: f64,
        /// `(threads, wall-clock seconds)` pairs.
        pub parallel_s: Vec<(usize, f64)>,
    }

    impl BenchRecord {
        /// Speedup of the `threads` entry over serial (`None` if absent).
        pub fn speedup(&self, threads: usize) -> Option<f64> {
            self.parallel_s
                .iter()
                .find(|(t, _)| *t == threads)
                .map(|(_, s)| self.serial_s / s)
        }
    }

    /// Renders the records as the `results/BENCH_parallel.json` document.
    /// Hand-rolled JSON (no serde offline): numbers via `{:e}` so the
    /// round-trip is lossless enough for trend tracking. `cores` is the
    /// machine's `available_parallelism` at bench time; it appears under
    /// both keys so older trend-tracking scripts keep working.
    pub fn to_json(records: &[BenchRecord], cores: usize) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"cores\": {cores},\n"));
        out.push_str(&format!("  \"available_parallelism\": {cores},\n"));
        out.push_str("  \"benches\": [\n");
        for (i, r) in records.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
            out.push_str(&format!("      \"serial_s\": {:e},\n", r.serial_s));
            out.push_str("      \"parallel\": [");
            for (j, (t, s)) in r.parallel_s.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"threads\": {t}, \"wall_s\": {s:e}, \"speedup\": {:.3}}}",
                    r.serial_s / s
                ));
            }
            out.push_str("]\n");
            out.push_str(if i + 1 == records.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_dataset_has_standard_shape() {
        let d = golden_dataset(MeasurementNoise::none());
        assert_eq!(d.dc.len(), 121);
        assert_eq!(d.sparams.len(), 23);
        assert!(d.bias_vgs < 0.0, "depletion-mode bias");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_series_panics() {
        print_series("x", &["y"], &[1.0, 2.0], &[vec![1.0]]);
    }

    #[test]
    fn time_until_stable_settles_on_constant_workload() {
        // A near-constant workload should settle quickly and report
        // stable=true well before the budget runs out.
        let (best, reps, stable) = timing::time_until_stable(3, 200, 0.10, || {
            std::hint::black_box((0..20_000).fold(0u64, |a, b| a.wrapping_add(b)));
        });
        assert!(stable, "constant workload should stabilize");
        assert!(best > 0.0);
        assert!((3..=200).contains(&reps));
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn time_until_stable_rejects_zero_min_reps() {
        timing::time_until_stable(0, 10, 0.1, || {});
    }

    #[test]
    fn rep_stats_track_and_merge_like_the_profiler_sketch() {
        let (best, stats) = timing::time_best_of_stats(5, || {
            std::hint::black_box((0..10_000).fold(0u64, |a, b| a.wrapping_add(b)));
        });
        assert_eq!(stats.count(), 5);
        assert!(best > 0.0);
        // The minimum bounds the distribution from below.
        assert!(stats.p50_us() >= best * 1e6 * 0.9);
        assert!(stats.p95_us() >= stats.p50_us());
        let mut merged = timing::RepStats::new();
        merged.merge(&stats);
        merged.merge(&stats);
        assert_eq!(merged.count(), 10);
    }
}
