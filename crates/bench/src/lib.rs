//! Shared helpers for the experiment binaries that regenerate every table
//! and figure of the paper (see DESIGN.md for the experiment index).

use lna::{BandSpec, DesignConfig, DesignGoals, LnaDesign};
use rfkit_device::{GoldenDevice, MeasurementNoise, Phemt};
use rfkit_extract::ExtractionData;

/// Builds the standard characterization data set of the golden device.
pub fn golden_dataset(noise: MeasurementNoise) -> ExtractionData {
    let g = GoldenDevice::default();
    let (vgs_grid, vds_grid) = GoldenDevice::standard_iv_grid();
    let bias_vgs = g
        .device
        .bias_for_current(3.0, 0.06)
        .expect("characterization bias");
    ExtractionData {
        dc: g.measure_dc(&vgs_grid, &vds_grid, &noise),
        sparams: g.measure_sparams(bias_vgs, 3.0, &GoldenDevice::standard_freq_grid(), &noise),
        bias_vgs,
        bias_vds: 3.0,
    }
}

/// Runs the paper's reference design flow (used by several figures so they
/// all describe the same amplifier).
pub fn reference_design(device: &Phemt) -> LnaDesign {
    lna::design_lna(
        device,
        &DesignGoals::default(),
        &DesignConfig {
            max_evals: 12_000,
            seed: 0xd0be5,
            band: BandSpec::gnss(),
            improved: true,
        },
    )
}

/// Prints an experiment header.
pub fn header(id: &str, title: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("(reproduction of Dobes et al., SOCC 2015 — see EXPERIMENTS.md)");
    println!("================================================================");
}

/// Prints a named data series as aligned columns, one row per point.
pub fn print_series(x_label: &str, y_labels: &[&str], xs: &[f64], ys: &[Vec<f64>]) {
    assert!(ys.iter().all(|col| col.len() == xs.len()), "ragged series");
    print!("{x_label:>14}");
    for label in y_labels {
        print!(" {label:>14}");
    }
    println!();
    for (i, x) in xs.iter().enumerate() {
        print!("{x:>14.6}");
        for col in ys {
            print!(" {:>14.6}", col[i]);
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_dataset_has_standard_shape() {
        let d = golden_dataset(MeasurementNoise::none());
        assert_eq!(d.dc.len(), 121);
        assert_eq!(d.sparams.len(), 23);
        assert!(d.bias_vgs < 0.0, "depletion-mode bias");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_series_panics() {
        print_series("x", &["y"], &[1.0, 2.0], &[vec![1.0]]);
    }
}
