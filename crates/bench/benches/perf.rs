//! Criterion performance benches for the computational kernels behind the
//! experiments: network algebra, FFT, MNA, DC Newton, the optimizers and
//! one full design-objective evaluation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lna::{band_objectives, Amplifier, BandSpec, DesignVariables};
use rfkit_circuit::{solve_dc, two_port_s, AcStamps, Circuit};
use rfkit_device::dc::{Angelov, DcModel as _};
use rfkit_device::Phemt;
use rfkit_net::{Abcd, NoisyAbcd};
use rfkit_num::{fft, Complex};
use rfkit_opt::{differential_evolution, nelder_mead, Bounds, DeConfig, NelderMeadConfig};

fn bench_network(c: &mut Criterion) {
    let line = Abcd::transmission_line(Complex::new(0.1, 30.0), Complex::real(50.0), 0.01);
    let l = Abcd::series_impedance(Complex::imag(45.0));
    let sh = Abcd::shunt_admittance(Complex::imag(0.01));
    c.bench_function("abcd_cascade_3stage_to_s", |b| {
        b.iter(|| {
            black_box(
                l.cascade(&sh)
                    .cascade(&line)
                    .to_s(50.0)
                    .expect("convertible"),
            )
        })
    });
    let noisy = NoisyAbcd::passive_series(Complex::new(5.0, 45.0), 290.0);
    c.bench_function("noisy_cascade_and_noise_params", |b| {
        b.iter(|| {
            black_box(
                noisy
                    .cascade(&noisy)
                    .cascade(&noisy)
                    .noise_params(50.0)
                    .expect("valid"),
            )
        })
    });
}

fn bench_fft(c: &mut Criterion) {
    let signal: Vec<f64> = (0..1024).map(|i| (i as f64 * 0.1).sin()).collect();
    c.bench_function("fft_1024_amplitude_spectrum", |b| {
        b.iter(|| black_box(fft::amplitude_spectrum(black_box(&signal))))
    });
}

fn bench_circuit(c: &mut Criterion) {
    let mut ladder = Circuit::new();
    ladder
        .inductor("in", "a", 5e-9)
        .capacitor("a", "gnd", 1e-12)
        .inductor("a", "b", 3e-9)
        .capacitor("b", "gnd", 2e-12)
        .capacitor("b", "out", 2e-12)
        .port("in", 50.0)
        .port("out", 50.0);
    c.bench_function("mna_ladder_two_port_s", |b| {
        b.iter(|| black_box(two_port_s(&ladder, 1.5e9, &AcStamps::none()).expect("solves")))
    });

    c.bench_function("dc_newton_biased_fet", |b| {
        b.iter(|| {
            let mut net = Circuit::new();
            net.vsource("vdd", "gnd", 5.0)
                .vsource("vg", "gnd", -0.3)
                .resistor("vdd", "drain", 33.0)
                .fet("vg", "drain", "gnd", Box::new(Angelov), Angelov.default_params());
            black_box(solve_dc(&net).expect("converges"))
        })
    });
}

fn bench_device(c: &mut Criterion) {
    let device = Phemt::atf54143_like();
    let op = device.operating_point(device.bias_for_current(3.0, 0.05).unwrap(), 3.0);
    c.bench_function("device_noisy_two_port", |b| {
        b.iter(|| black_box(device.noisy_two_port(black_box(1.575e9), &op)))
    });
    c.bench_function("device_bias_solve", |b| {
        b.iter(|| black_box(device.bias_for_current(3.0, black_box(0.05))))
    });
}

fn bench_optimizers(c: &mut Criterion) {
    let sphere = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
    let bounds = Bounds::uniform(6, -5.0, 5.0);
    c.bench_function("de_1000_evals_sphere6", |b| {
        b.iter(|| {
            black_box(differential_evolution(
                sphere,
                &bounds,
                &DeConfig {
                    max_evals: 1000,
                    ..Default::default()
                },
            ))
        })
    });
    c.bench_function("nelder_mead_sphere6", |b| {
        b.iter(|| {
            black_box(nelder_mead(
                sphere,
                &[3.0; 6],
                &bounds,
                &NelderMeadConfig::default(),
            ))
        })
    });
}

fn bench_design_objective(c: &mut Criterion) {
    let device = Phemt::atf54143_like();
    let band = BandSpec::gnss();
    let objective = band_objectives(&device, &band);
    let vars = DesignVariables {
        vds: 3.0,
        ids: 0.05,
        l1: 6.8e-9,
        ls_deg: 0.4e-9,
        l2: 10e-9,
        c2: 2.2e-12,
        r_bias: 30.0,
    };
    let x = vars.to_vec();
    c.bench_function("band_objective_evaluation", |b| {
        b.iter(|| black_box(objective(black_box(&x))))
    });
    let amp = Amplifier::new(&device, vars);
    c.bench_function("amplifier_point_metrics", |b| {
        b.iter(|| black_box(amp.metrics(black_box(1.4e9))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_network, bench_fft, bench_circuit, bench_device,
              bench_optimizers, bench_design_objective
}
criterion_main!(benches);
