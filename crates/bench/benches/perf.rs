//! Performance benches for the computational kernels behind the
//! experiments: network algebra, FFT, MNA, DC Newton, the optimizers and
//! one full design-objective evaluation.
//!
//! Hand-rolled `harness = false` timing (criterion is unavailable in the
//! offline build environment): each kernel is timed over enough
//! iterations to dominate clock granularity and reported as ns/iter,
//! best of three batches. Run with `cargo bench -p lna-bench`.

use lna::{band_objectives, Amplifier, BandSpec, DesignVariables};
use rfkit_circuit::{solve_dc, two_port_s, AcStamps, AcWorkspace, Circuit, StampPlan};
use rfkit_device::dc::{Angelov, DcModel as _};
use rfkit_device::Phemt;
use rfkit_net::{Abcd, NoisyAbcd};
use rfkit_num::{fft, Complex};
use rfkit_opt::{differential_evolution, nelder_mead, Bounds, DeConfig, NelderMeadConfig};
use std::hint::black_box;
use std::time::Instant;

/// Times `f` over `iters` iterations, best of 3 batches, printing ns/iter.
fn bench_kernel<F: FnMut()>(name: &str, iters: usize, mut f: F) {
    f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() / iters as f64);
    }
    println!("{name:>34}: {:>12.0} ns/iter", best * 1e9);
}

fn main() {
    println!("kernel microbenches (best of 3 batches)\n");

    // Network algebra.
    let line = Abcd::transmission_line(Complex::new(0.1, 30.0), Complex::real(50.0), 0.01);
    let l = Abcd::series_impedance(Complex::imag(45.0));
    let sh = Abcd::shunt_admittance(Complex::imag(0.01));
    bench_kernel("abcd_cascade_3stage_to_s", 100_000, || {
        black_box(
            l.cascade(&sh)
                .cascade(&line)
                .to_s(50.0)
                .expect("convertible"),
        );
    });
    let noisy = NoisyAbcd::passive_series(Complex::new(5.0, 45.0), 290.0);
    bench_kernel("noisy_cascade_and_noise_params", 50_000, || {
        black_box(
            noisy
                .cascade(&noisy)
                .cascade(&noisy)
                .noise_params(50.0)
                .expect("valid"),
        );
    });

    // FFT.
    let signal: Vec<f64> = (0..1024).map(|i| (i as f64 * 0.1).sin()).collect();
    bench_kernel("fft_1024_amplitude_spectrum", 5_000, || {
        black_box(fft::amplitude_spectrum(black_box(&signal)));
    });

    // Circuit solves.
    let mut ladder = Circuit::new();
    ladder
        .inductor("in", "a", 5e-9)
        .capacitor("a", "gnd", 1e-12)
        .inductor("a", "b", 3e-9)
        .capacitor("b", "gnd", 2e-12)
        .capacitor("b", "out", 2e-12)
        .port("in", 50.0)
        .port("out", 50.0);
    bench_kernel("mna_ladder_two_port_s", 20_000, || {
        black_box(two_port_s(&ladder, 1.5e9, &AcStamps::none()).expect("solves"));
    });
    let ladder_plan = StampPlan::compile(&ladder).expect("ladder compiles");
    let mut ladder_ws = AcWorkspace::new();
    bench_kernel("mna_ladder_plan_two_port_s", 20_000, || {
        black_box(
            ladder_plan
                .two_port_s(1.5e9, &AcStamps::none(), &mut ladder_ws)
                .expect("solves"),
        );
    });
    bench_kernel("dc_newton_biased_fet", 2_000, || {
        let mut net = Circuit::new();
        net.vsource("vdd", "gnd", 5.0)
            .vsource("vg", "gnd", -0.3)
            .resistor("vdd", "drain", 33.0)
            .fet(
                "vg",
                "drain",
                "gnd",
                Box::new(Angelov),
                Angelov.default_params(),
            );
        black_box(solve_dc(&net).expect("converges"));
    });

    // Device model.
    let device = Phemt::atf54143_like();
    let op = device.operating_point(device.bias_for_current(3.0, 0.05).unwrap(), 3.0);
    bench_kernel("device_noisy_two_port", 50_000, || {
        black_box(device.noisy_two_port(black_box(1.575e9), &op));
    });
    bench_kernel("device_bias_solve", 10_000, || {
        black_box(device.bias_for_current(3.0, black_box(0.05)));
    });

    // Optimizers.
    let sphere = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
    let bounds = Bounds::uniform(6, -5.0, 5.0);
    bench_kernel("de_1000_evals_sphere6", 50, || {
        black_box(differential_evolution(
            sphere,
            &bounds,
            &DeConfig {
                max_evals: 1000,
                ..Default::default()
            },
        ));
    });
    bench_kernel("nelder_mead_sphere6", 500, || {
        black_box(nelder_mead(
            sphere,
            &[3.0; 6],
            &bounds,
            &NelderMeadConfig::default(),
        ));
    });

    // Full design objective.
    let band = BandSpec::gnss();
    let objective = band_objectives(&device, &band);
    let vars = DesignVariables {
        vds: 3.0,
        ids: 0.05,
        l1: 6.8e-9,
        ls_deg: 0.4e-9,
        l2: 10e-9,
        c2: 2.2e-12,
        r_bias: 30.0,
    };
    let x = vars.to_vec();
    bench_kernel("band_objective_evaluation", 2_000, || {
        black_box(objective(black_box(&x)));
    });
    let amp = Amplifier::new(&device, vars);
    bench_kernel("amplifier_point_metrics", 20_000, || {
        black_box(amp.metrics(black_box(1.4e9)));
    });
}
