//! Property-based tests on the circuit simulator: conservation laws and
//! solver agreement for randomly drawn circuits. Cases come from a
//! fixed-seed `Rng64` stream (the workspace builds offline, so no
//! proptest), which keeps every run reproducible.

use rfkit_circuit::{ip3_sweep, solve_dc, time_domain, two_port_s, AcStamps, Circuit, TwoToneSpec};
use rfkit_device::dc::{Angelov, DcModel as _};
use rfkit_device::Phemt;
use rfkit_net::Abcd;
use rfkit_num::rng::Rng64;
use rfkit_num::units::angular;
use rfkit_num::Complex;

#[test]
fn divider_chain_obeys_kirchhoff() {
    let mut rng = Rng64::new(0xc1c0_0001);
    for case in 0..32 {
        let r1 = rng.uniform(10.0, 10_000.0);
        let r2 = rng.uniform(10.0, 10_000.0);
        let r3 = rng.uniform(10.0, 10_000.0);
        let v = rng.uniform(0.5, 24.0);
        let mut c = Circuit::new();
        c.vsource("vin", "gnd", v)
            .resistor("vin", "a", r1)
            .resistor("a", "b", r2)
            .resistor("b", "gnd", r3);
        let a = c.node("a").unwrap();
        let b = c.node("b").unwrap();
        let sol = solve_dc(&c).unwrap();
        let i = v / (r1 + r2 + r3);
        assert!(
            (sol.voltages[a] - (v - i * r1)).abs() < 1e-6 * v,
            "case {case}"
        );
        assert!((sol.voltages[b] - i * r3).abs() < 1e-6 * v, "case {case}");
    }
}

#[test]
fn fet_bias_respects_load_line() {
    let mut rng = Rng64::new(0xc1c0_0002);
    for case in 0..32 {
        let vdd = rng.uniform(2.0, 8.0);
        let rd = rng.uniform(10.0, 200.0);
        let vgs = rng.uniform(-0.6, 0.2);
        let mut c = Circuit::new();
        c.vsource("vdd", "gnd", vdd)
            .vsource("vg", "gnd", vgs)
            .resistor("vdd", "d", rd)
            .fet(
                "vg",
                "d",
                "gnd",
                Box::new(Angelov),
                Angelov.default_params(),
            );
        let d = c.node("d").unwrap();
        let sol = solve_dc(&c).unwrap();
        let vds = sol.voltages[d];
        let ids = sol.fet_currents[0];
        // Load line: Vdd = Vds + Ids·Rd, and the device equation holds.
        assert!(
            (vdd - vds - ids * rd).abs() < 1e-6,
            "case {case}: load line violated"
        );
        assert!(
            (Angelov.ids(&Angelov.default_params(), vgs, vds.max(0.0)) - ids).abs() < 1e-9,
            "case {case}"
        );
        assert!(vds >= -1e-9 && vds <= vdd + 1e-9, "case {case}");
    }
}

#[test]
fn mna_matches_cascade_for_random_ladder() {
    let mut rng = Rng64::new(0xc1c0_0003);
    for case in 0..32 {
        let l = rng.uniform(0.5, 20.0) * 1e-9;
        let cp = rng.uniform(0.2, 10.0) * 1e-12;
        let f = rng.uniform(0.3, 5.0) * 1e9;
        let w = angular(f);
        let mut net = Circuit::new();
        net.inductor("in", "out", l)
            .capacitor("out", "gnd", cp)
            .port("in", 50.0)
            .port("out", 50.0);
        let mna = two_port_s(&net, f, &AcStamps::none()).unwrap();
        let reference = Abcd::series_impedance(Complex::imag(w * l))
            .cascade(&Abcd::shunt_admittance(Complex::imag(w * cp)))
            .to_s(50.0)
            .unwrap();
        assert!((mna.s11() - reference.s11()).abs() < 1e-8, "case {case}");
        assert!((mna.s21() - reference.s21()).abs() < 1e-8, "case {case}");
    }
}

#[test]
fn passive_mna_networks_are_passive_and_reciprocal() {
    let mut rng = Rng64::new(0xc1c0_0004);
    for case in 0..32 {
        let r = rng.uniform(5.0, 500.0);
        let l = rng.uniform(0.5, 20.0) * 1e-9;
        let cp = rng.uniform(0.2, 10.0) * 1e-12;
        let f = rng.uniform(0.3, 5.0) * 1e9;
        let mut net = Circuit::new();
        net.resistor("in", "mid", r)
            .inductor("mid", "out", l)
            .capacitor("mid", "gnd", cp)
            .port("in", 50.0)
            .port("out", 50.0);
        let s = two_port_s(&net, f, &AcStamps::none()).unwrap();
        assert!(s.is_passive(1e-6), "case {case}");
        assert!(s.is_reciprocal(1e-9), "case {case}");
    }
}

#[test]
fn im3_slope_three_for_any_bias() {
    let device = Phemt::atf54143_like();
    let mut rng = Rng64::new(0xc1c0_0005);
    for case in 0..8 {
        let ids_ma = rng.uniform(15.0, 75.0);
        let vgs = device.bias_for_current(3.0, ids_ma * 1e-3).unwrap();
        let op = device.operating_point(vgs, 3.0);
        let eval = |p: f64| {
            time_domain(
                &device,
                &op,
                &TwoToneSpec {
                    pin_dbm: p,
                    ..Default::default()
                },
            )
        };
        let lo = eval(-48.0);
        let hi = eval(-40.0);
        let slope = (hi.p_im3_dbm - lo.p_im3_dbm) / 8.0;
        // Near a gm3 null the leading-order slope can deviate; everywhere
        // else it must be 3:1 within tolerance.
        if hi.p_im3_dbm > -140.0 {
            assert!(
                (slope - 3.0).abs() < 0.3,
                "case {case}: IM3 slope {slope} at {ids_ma} mA"
            );
        }
    }
}

#[test]
fn oip3_extrapolation_exceeds_measured_output() {
    let device = Phemt::atf54143_like();
    let mut rng = Rng64::new(0xc1c0_0006);
    for case in 0..8 {
        let ids_ma = rng.uniform(20.0, 75.0);
        let vgs = device.bias_for_current(3.0, ids_ma * 1e-3).unwrap();
        let op = device.operating_point(vgs, 3.0);
        let pins: Vec<f64> = (0..7).map(|k| -45.0 + 3.0 * k as f64).collect();
        let sweep = ip3_sweep(&pins, |p| {
            time_domain(
                &device,
                &op,
                &TwoToneSpec {
                    pin_dbm: p,
                    ..Default::default()
                },
            )
        });
        if let Some(oip3) = sweep.oip3_dbm {
            // The intercept is an extrapolation beyond the small-signal data.
            let max_fund = sweep
                .rows
                .iter()
                .map(|r| r.p_fund_dbm)
                .fold(f64::MIN, f64::max);
            assert!(
                oip3 > max_fund,
                "case {case}: OIP3 {oip3} <= measured {max_fund}"
            );
        }
    }
}
