//! Equivalence suite for the compiled AC fast path: [`StampPlan`] +
//! [`AcWorkspace`] must return **bit-identical** results to the legacy
//! per-call path — same S-parameters, same errors — across the reference
//! design topology, the linearized-pHEMT stamp case and seeded random RLC
//! netlists. `assert_eq!` on [`SParams`]/[`NPort`] compares exact floating
//! bits, not tolerances.

use rfkit_circuit::{
    s_matrix, two_port_s, AcError, AcStamps, AcWorkspace, Circuit, StampPlan, SWEEP_TOL,
};
use rfkit_device::smallsignal::NoiseTemperatures;
use rfkit_device::Phemt;
use rfkit_num::linspace;
use rfkit_num::rng::Rng64;

/// The reference-design schematic as a netlist: input match, linearized
/// device position (stamped separately where used), bias feed and output
/// match — the same element mix `design_lna` candidates get built from.
fn reference_design_circuit() -> Circuit {
    let mut c = Circuit::new();
    c.inductor("in", "gate", 6.8e-9)
        .resistor("gate", "gnd", 10_000.0)
        .resistor("drain", "nb", 30.0)
        .inductor("nb", "gnd", 10e-9)
        .vsource("vdd", "gnd", 3.0)
        .resistor("vdd", "nb", 15.0)
        .capacitor("drain", "out", 2.2e-12)
        .inductor("out", "gnd", 10e-9)
        .capacitor("out", "gnd", 1.0e-12)
        .port("in", 50.0)
        .port("out", 50.0);
    c
}

#[test]
fn reference_design_sweep_is_bit_identical() {
    let c = reference_design_circuit();
    let plan = StampPlan::compile(&c).unwrap();
    let mut ws = AcWorkspace::new();
    for &f in linspace(1.1e9, 1.7e9, 31).iter() {
        let legacy = two_port_s(&c, f, &AcStamps::none()).unwrap();
        let fast = plan.two_port_s(f, &AcStamps::none(), &mut ws).unwrap();
        assert_eq!(legacy, fast, "bit mismatch at {f} Hz");
    }
    // One topology, one warm-up: the remaining 30 points reused buffers,
    // i.e. the sweep performed no per-frequency matrix allocations.
    assert_eq!(ws.warmup_count(), 1);
    assert_eq!(ws.reuse_count(), 30);
}

#[test]
fn phemt_stamp_case_is_bit_identical() {
    let d = Phemt::atf54143_like();
    let op = d.operating_point(d.bias_for_current(3.0, 0.06).unwrap(), 3.0);
    let ss = d.small_signal(&op);
    let y_of = move |f: f64| {
        ss.noisy_two_port(f, &NoiseTemperatures::default())
            .abcd
            .to_y()
            .expect("device Y form")
    };
    let mut c = Circuit::new();
    c.inductor("in", "gate", 5.6e-9)
        .capacitor("drain", "out", 2.2e-12)
        .inductor("out", "gnd", 10e-9)
        .port("in", 50.0)
        .port("out", 50.0);
    let (g, dn) = (c.node("gate"), c.node("drain"));
    let stamps = AcStamps::none().two_port(g, dn, &y_of);
    let plan = StampPlan::compile(&c).unwrap();
    let mut ws = AcWorkspace::new();
    for &f in linspace(0.9e9, 2.1e9, 13).iter() {
        let legacy = two_port_s(&c, f, &stamps).unwrap();
        let fast = plan.two_port_s(f, &stamps, &mut ws).unwrap();
        assert_eq!(legacy, fast, "bit mismatch at {f} Hz");
    }
}

/// Builds a random RLC netlist over up to 6 named nodes (plus ground),
/// two ports, from a seeded deterministic RNG.
fn random_rlc(rng: &mut Rng64) -> Circuit {
    let names = ["n0", "n1", "n2", "n3", "n4", "n5"];
    let n_nodes = 3 + rng.index(4); // 3..=6 non-ground nodes in play
    let n_elements = 4 + rng.index(8);
    let mut c = Circuit::new();
    for _ in 0..n_elements {
        // One extra slot beyond the live nodes selects ground.
        let ka = rng.index(n_nodes + 1);
        let kb = rng.index(n_nodes + 1);
        let a = if ka == n_nodes { "gnd" } else { names[ka] };
        let mut b = if kb == n_nodes { "gnd" } else { names[kb] };
        if a == b {
            b = "gnd";
        }
        if a == b {
            continue;
        }
        match rng.index(3) {
            0 => {
                c.resistor(a, b, rng.uniform(5.0, 5_000.0));
            }
            1 => {
                c.capacitor(a, b, rng.uniform(0.2e-12, 20e-12));
            }
            _ => {
                c.inductor(a, b, rng.uniform(0.5e-9, 50e-9));
            }
        }
    }
    // Ports on the first two nodes; tie each to the network so the port
    // rows are never all-zero (an all-zero row is a legitimate Singular
    // case, also checked for parity below, but rarer is better here).
    c.resistor("n0", "n1", rng.uniform(10.0, 1_000.0));
    c.port("n0", 50.0).port("n1", 50.0);
    c
}

#[test]
fn random_rlc_netlists_are_bit_identical_including_errors() {
    let mut rng = Rng64::new(0xfa57_9a7b);
    let mut solved = 0u32;
    for case in 0..120 {
        let c = random_rlc(&mut rng);
        let plan = StampPlan::compile(&c).unwrap();
        let mut ws = AcWorkspace::new();
        for &f in &[0.35e9, 1.3e9, 2.8e9] {
            let legacy = s_matrix(&c, f, &AcStamps::none());
            let fast = plan.s_matrix(f, &AcStamps::none(), &mut ws);
            match (legacy, fast) {
                (Ok(l), Ok(r)) => {
                    assert_eq!(l, r, "case {case}: bit mismatch at {f} Hz");
                    solved += 1;
                }
                (l, r) => assert_eq!(l, r, "case {case}: error parity at {f} Hz"),
            }
        }
    }
    assert!(
        solved > 200,
        "suite degenerated: only {solved} solvable cases"
    );
}

#[test]
fn singular_and_degenerate_inputs_match_legacy() {
    // A floating internal node makes the Schur block singular.
    let mut c = Circuit::new();
    c.resistor("in", "out", 75.0)
        .capacitor("float_a", "float_b", 1e-12)
        .port("in", 50.0)
        .port("out", 50.0);
    let plan = StampPlan::compile(&c).unwrap();
    let mut ws = AcWorkspace::new();
    let f = 1.575e9;
    let legacy = s_matrix(&c, f, &AcStamps::none());
    let fast = plan.s_matrix(f, &AcStamps::none(), &mut ws);
    assert_eq!(legacy, fast);
    assert_eq!(legacy.unwrap_err(), AcError::Singular(f));

    // Non-positive frequency: the fast path reports the same error the
    // legacy path does (regression for the old assert!-panic).
    let good = reference_design_circuit();
    let good_plan = StampPlan::compile(&good).unwrap();
    for bad_f in [0.0, -2.4e9] {
        assert_eq!(
            good_plan
                .two_port_s(bad_f, &AcStamps::none(), &mut ws)
                .unwrap_err(),
            AcError::NonPositiveFrequency(bad_f)
        );
        assert_eq!(
            two_port_s(&good, bad_f, &AcStamps::none()).unwrap_err(),
            AcError::NonPositiveFrequency(bad_f)
        );
    }
}

/// Seeded random structured netlist: a chain of `sections` series/shunt
/// RLC cells between the two ports (long tridiagonal internal block →
/// the banded path), optionally tied into a shared supply rail through
/// `hub_taps` resistors (one high-degree hub → the bordered path).
/// Every chain node keeps a resistive shunt so pivots stay away from
/// pure-LC resonance zeros.
fn random_structured(rng: &mut Rng64, sections: usize, hub_taps: usize) -> Circuit {
    assert!(sections >= 10, "need a chain long enough to classify");
    let mut c = Circuit::new();
    let name = |i: usize| format!("c{i}");
    for i in 0..sections {
        let (a, b) = (name(i), name(i + 1));
        if rng.index(2) == 0 {
            c.inductor(&a, &b, rng.uniform(1e-9, 8e-9));
        } else {
            c.resistor(&a, &b, rng.uniform(5.0, 80.0));
        }
        c.capacitor(&b, "gnd", rng.uniform(0.3e-12, 3e-12));
        c.resistor(&b, "gnd", rng.uniform(500.0, 5_000.0));
    }
    if hub_taps > 0 {
        // Taps spread evenly across the chain: clustered taps would let
        // RCM absorb the rail into a small bandwidth (still correct, but
        // classified banded); spread taps make the rail a genuine hub
        // that only the bordered path handles efficiently.
        c.vsource("rail", "gnd", 1.0);
        for t in 0..hub_taps {
            let k = 1 + t * (sections - 1) / hub_taps;
            c.resistor(&name(k), "rail", rng.uniform(50.0, 500.0));
        }
    }
    c.port("c0", 50.0).port(&name(sections), 50.0);
    c
}

#[test]
fn random_structured_netlists_match_dense_within_tol() {
    // Cross-check the three solve paths on seeded random netlists: the
    // legacy dense solve is the oracle; the classifier must pick the
    // banded kernel for plain ladders and the bordered kernel for
    // rail-tied ladders; every grid point must stay inside the
    // documented `SWEEP_TOL` envelope with point-for-point Ok parity.
    let mut rng = Rng64::new(0x5eed_0b0b);
    let freqs = linspace(0.8e9, 2.2e9, 9);
    for case in 0..12 {
        let sections = 10 + rng.index(8);
        let hub_taps = if case % 2 == 1 { 4 + rng.index(3) } else { 0 };
        let expected = if hub_taps == 0 { "banded" } else { "bordered" };
        let c = random_structured(&mut rng, sections, hub_taps);
        let plan = StampPlan::compile(&c).unwrap();
        assert_eq!(plan.solve_path_name(), expected, "case {case}");
        let mut ws = AcWorkspace::new();
        let batch = plan.sweep_batch(&freqs, &AcStamps::none(), &mut ws);
        assert_eq!(batch.stats().path, expected, "case {case}");
        for (p, &f) in freqs.iter().enumerate() {
            match s_matrix(&c, f, &AcStamps::none()) {
                Ok(l) => {
                    assert!(batch.is_ok(p), "case {case}: spurious failure at {f} Hz");
                    for i in 0..2 {
                        for j in 0..2 {
                            let d = (batch.s(p, i, j) - l.s(i, j).unwrap()).abs();
                            assert!(d <= SWEEP_TOL, "case {case}: |ΔS{i}{j}| = {d:e} at {f} Hz");
                        }
                    }
                }
                Err(e) => {
                    assert!(!batch.is_ok(p), "case {case}: missed failure at {f} Hz");
                    assert!(
                        batch.failures().iter().any(|(q, be)| *q == p && *be == e),
                        "case {case}: error parity at {f} Hz"
                    );
                }
            }
        }
    }
}

#[test]
fn structured_paths_report_errors_point_for_point() {
    // A floating capacitor pair makes the Schur block singular at every
    // frequency. The banded kernel hits a zero pivot, falls back to the
    // dense solve, and must surface the *same* error the legacy path
    // reports — while healthy points of a mixed grid still solve.
    let mut rng = Rng64::new(0xe44_0f0f);
    let mut c = random_structured(&mut rng, 12, 0);
    c.capacitor("float_a", "float_b", 1e-12);
    let plan = StampPlan::compile(&c).unwrap();
    let freqs = [1.1e9, 1.5e9];
    let mut ws = AcWorkspace::new();
    let batch = plan.sweep_batch(&freqs, &AcStamps::none(), &mut ws);
    assert_eq!(batch.failures().len(), freqs.len());
    for (p, &f) in freqs.iter().enumerate() {
        let legacy = s_matrix(&c, f, &AcStamps::none()).unwrap_err();
        assert_eq!(legacy, AcError::Singular(f));
        assert!(batch
            .failures()
            .iter()
            .any(|(q, e)| *q == p && *e == legacy));
    }
}

#[cfg(feature = "rfkit-faults")]
#[test]
fn fault_injection_parity_across_solve_paths() {
    // One injection site per solve path: dense, banded and bordered
    // sweeps share the `ac.solve` site and frequency-bits key with the
    // legacy path, so a targeted fault fails the same grid point on both
    // sides while neighbours sail through.
    use rfkit_robust::faults::{self, FaultKind, FaultPlan};
    let mut rng = Rng64::new(0xfa017);
    let cases = [
        (reference_design_circuit(), "dense"),
        (random_structured(&mut rng, 12, 0), "banded"),
        (random_structured(&mut rng, 12, 4), "bordered"),
    ];
    let freqs = [1.1e9, 1.4e9, 1.7e9];
    let f_bad: f64 = freqs[1];
    for (c, path) in &cases {
        let plan = StampPlan::compile(c).unwrap();
        assert_eq!(plan.solve_path_name(), *path);
        let mut ws = AcWorkspace::new();
        let _g = faults::scoped(FaultPlan::new().fail_keys(
            "ac.solve",
            FaultKind::SingularLu,
            &[f_bad.to_bits()],
        ));
        let batch = plan.sweep_batch(&freqs, &AcStamps::none(), &mut ws);
        for (p, &f) in freqs.iter().enumerate() {
            let legacy = s_matrix(c, f, &AcStamps::none());
            if f == f_bad {
                assert_eq!(legacy.unwrap_err(), AcError::Singular(f), "{path}");
                assert!(
                    batch
                        .failures()
                        .iter()
                        .any(|(q, e)| *q == p && *e == AcError::Singular(f)),
                    "{path}: batch missed the injected fault"
                );
            } else {
                assert!(legacy.is_ok(), "{path}: healthy legacy point failed");
                assert!(batch.is_ok(p), "{path}: healthy batch point failed");
            }
        }
    }
}

#[test]
fn workspace_survives_topology_changes() {
    // Sharing one workspace across plans of different sizes re-warms but
    // stays bit-identical.
    let small = {
        let mut c = Circuit::new();
        c.resistor("in", "out", 50.0)
            .port("in", 50.0)
            .port("out", 50.0);
        c
    };
    let big = reference_design_circuit();
    let plan_small = StampPlan::compile(&small).unwrap();
    let plan_big = StampPlan::compile(&big).unwrap();
    let mut ws = AcWorkspace::new();
    for _ in 0..3 {
        // One two-point sweep per plan before switching topology.
        for f in [1.2e9, 1.5e9] {
            assert_eq!(
                plan_small
                    .two_port_s(f, &AcStamps::none(), &mut ws)
                    .unwrap(),
                two_port_s(&small, f, &AcStamps::none()).unwrap()
            );
        }
        for f in [1.2e9, 1.5e9] {
            assert_eq!(
                plan_big.two_port_s(f, &AcStamps::none(), &mut ws).unwrap(),
                two_port_s(&big, f, &AcStamps::none()).unwrap()
            );
        }
    }
    // Each small->big or big->small switch re-warms; the second point of
    // every two-point sweep reuses.
    assert_eq!(ws.warmup_count() + ws.reuse_count(), 12);
    assert_eq!(ws.warmup_count(), 6);
}
