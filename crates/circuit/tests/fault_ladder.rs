//! Fault-injection blitz on the DC fallback ladder and the AC/HB solver
//! hooks. Every test arms a deterministic [`FaultPlan`] through
//! `faults::scoped`, which serializes fault tests against each other and
//! disarms on drop — so the assertions at the end of each test that the
//! world is healthy again are real recovery checks, not wishful ordering.
//!
//! Compiled only with `--features rfkit-faults`; without the feature the
//! hooks are `#[inline(always)] None` and this file is empty.
#![cfg(feature = "rfkit-faults")]

use rfkit_circuit::dc::{RetryPolicy, SolveError, SolveStage};
use rfkit_circuit::{s_matrix, solve_dc, solve_dc_robust, AcError, AcStamps, Circuit, StampPlan};
use rfkit_robust::faults::{self, FaultKind, FaultPlan};

/// A bias network that needs real Newton work: self-biased FET with a
/// source resistor (the dc.rs unit suite's nonlinear fixture).
fn bias_network() -> Circuit {
    let model = rfkit_device::dc::Angelov;
    let params = rfkit_device::dc::DcModel::default_params(&model);
    let mut c = Circuit::new();
    c.vsource("vdd", "gnd", 5.0)
        .resistor("vdd", "drain", 50.0)
        .resistor("g", "gnd", 10_000.0)
        .resistor("src", "gnd", 10.0)
        .fet(
            "g",
            "drain",
            "src",
            Box::new(rfkit_device::dc::Angelov),
            params,
        );
    c
}

/// A two-port RLC netlist for the AC hooks.
fn rlc_two_port() -> Circuit {
    let mut c = Circuit::new();
    c.inductor("in", "gate", 6.8e-9)
        .resistor("gate", "gnd", 10_000.0)
        .capacitor("gate", "out", 2.2e-12)
        .inductor("out", "gnd", 10e-9)
        .port("in", 50.0)
        .port("out", 50.0);
    c
}

const ALL_DC_SITES: [&str; 4] = [
    "dc.newton.plain",
    "dc.newton.damped",
    "dc.gmin",
    "dc.source",
];

fn fail_everywhere(kind: FaultKind) -> FaultPlan {
    ALL_DC_SITES
        .iter()
        .fold(FaultPlan::new(), |p, site| p.fail_all(site, kind))
}

#[test]
fn every_ladder_rung_is_reachable_by_failing_the_rungs_below_it() {
    let c = bias_network();
    let policy = RetryPolicy::default();
    // No faults: the easy path.
    let baseline = solve_dc_robust(&c, &policy).expect("healthy solve");
    assert_eq!(baseline.stage, SolveStage::PlainNewton);
    assert_eq!(baseline.attempts, 1);
    // Knock out rung after rung; the ladder must land exactly one higher
    // each time. The recovered voltages agree with the baseline to
    // Newton-convergence precision; the homotopy rungs walk a different
    // iteration path to the same root, so cross-rung agreement is
    // numerical, not bitwise (replay bit-identity is asserted separately
    // in `seeded_fault_subsets_replay_bit_identically`).
    let expect = [
        (1, SolveStage::DampedNewton),
        (2, SolveStage::GminStepping),
        (3, SolveStage::SourceStepping),
    ];
    for (n_dead, stage) in expect {
        let plan = ALL_DC_SITES[..n_dead]
            .iter()
            .fold(FaultPlan::new(), |p, site| {
                p.fail_all(site, FaultKind::Stagnate)
            });
        let _g = faults::scoped(plan);
        let sol = solve_dc_robust(&c, &policy)
            .unwrap_or_else(|e| panic!("rung {stage} should recover: {e}"));
        assert_eq!(sol.stage, stage);
        assert_eq!(sol.attempts, n_dead + 1);
        for (v, b) in sol.voltages.iter().zip(&baseline.voltages) {
            assert!(
                (v - b).abs() < 1e-9,
                "recovery at {stage} drifted: {v} vs {b}"
            );
        }
        for (i, b) in sol.fet_currents.iter().zip(&baseline.fet_currents) {
            assert!((i - b).abs() < 1e-9, "fet current at {stage} drifted");
        }
        assert!(faults::fired(ALL_DC_SITES[0]) > 0, "plain hook never fired");
    }
}

#[test]
fn every_solve_error_variant_is_reachable() {
    let c = bias_network();
    let policy = RetryPolicy::default();
    // SingularSystem: every rung's linear solve reports a singular matrix.
    {
        let _g = faults::scoped(fail_everywhere(FaultKind::SingularLu));
        match solve_dc_robust(&c, &policy) {
            Err(SolveError::SingularSystem { stage, iterations }) => {
                assert_eq!(stage, SolveStage::SourceStepping, "last rung reports");
                assert!(iterations >= 1);
            }
            other => panic!("expected SingularSystem, got {other:?}"),
        }
    }
    // NonConvergence via stagnation: every rung stalls.
    {
        let _g = faults::scoped(fail_everywhere(FaultKind::Stagnate));
        match solve_dc_robust(&c, &policy) {
            Err(SolveError::NonConvergence {
                stage, residual, ..
            }) => {
                assert_eq!(stage, SolveStage::SourceStepping);
                assert!(residual.is_finite(), "stagnation keeps a real residual");
            }
            other => panic!("expected NonConvergence, got {other:?}"),
        }
    }
    // NonConvergence via NaN residual: the norm goes non-finite.
    {
        let _g = faults::scoped(fail_everywhere(FaultKind::NanResidual));
        match solve_dc_robust(&c, &policy) {
            Err(SolveError::NonConvergence { residual, .. }) => {
                assert!(residual.is_nan(), "NaN fault must surface as NaN residual");
            }
            other => panic!("expected NaN NonConvergence, got {other:?}"),
        }
    }
    // BudgetExhausted: the cross-stage ceiling expires while faults force
    // retries. The injected stagnation burns one plain iteration, so the
    // second (and last) budgeted iteration lands in the damped rung —
    // proving the ceiling is counted across stages, not per rung.
    {
        let _g = faults::scoped(FaultPlan::new().fail_all("dc.newton.plain", FaultKind::Stagnate));
        let tiny = RetryPolicy {
            max_total_iters: 2,
            ..RetryPolicy::default()
        };
        match solve_dc_robust(&c, &tiny) {
            Err(SolveError::BudgetExhausted {
                stage, iterations, ..
            }) => {
                assert_eq!(stage, SolveStage::DampedNewton);
                assert_eq!(iterations, 2);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }
    // Fault cleared: the solver is healthy again, first rung, one attempt.
    let sol = solve_dc_robust(&c, &policy).expect("recovered after disarm");
    assert_eq!(sol.stage, SolveStage::PlainNewton);
    assert_eq!(sol.attempts, 1);
}

#[test]
fn legacy_wrapper_maps_the_structured_taxonomy() {
    let c = bias_network();
    {
        let _g = faults::scoped(fail_everywhere(FaultKind::SingularLu));
        assert_eq!(solve_dc(&c), Err(rfkit_circuit::DcError::Singular));
    }
    {
        let _g = faults::scoped(fail_everywhere(FaultKind::Stagnate));
        match solve_dc(&c) {
            Err(rfkit_circuit::DcError::NoConvergence { residual }) => {
                assert!(residual.is_finite());
            }
            other => panic!("expected NoConvergence, got {other:?}"),
        }
    }
    assert!(solve_dc(&c).is_ok(), "healthy after disarm");
}

#[test]
fn restricted_ladder_cannot_recover_past_its_last_rung() {
    let c = bias_network();
    // Only plain Newton allowed, and it is dead: the error must carry the
    // plain stage, proving no hidden rung ran.
    let _g = faults::scoped(FaultPlan::new().fail_all("dc.newton.plain", FaultKind::Stagnate));
    match solve_dc_robust(&c, &RetryPolicy::first_stages(1)) {
        Err(SolveError::NonConvergence { stage, .. }) => {
            assert_eq!(stage, SolveStage::PlainNewton);
        }
        other => panic!("expected plain-stage NonConvergence, got {other:?}"),
    }
    // Two rungs: the damped rung rescues it.
    let sol = solve_dc_robust(&c, &RetryPolicy::first_stages(2)).expect("damped rescues");
    assert_eq!(sol.stage, SolveStage::DampedNewton);
    assert_eq!(sol.attempts, 2);
}

#[test]
fn seeded_fault_subsets_replay_bit_identically() {
    // Property test: for every seed, a seeded plan produces the same
    // firings and the same solver outcome when replayed — and once the
    // fault clears, the solution is bit-identical to the unfaulted run.
    let c = bias_network();
    let policy = RetryPolicy::default();
    let baseline = solve_dc_robust(&c, &policy).expect("healthy");
    // Keys are plain-Newton iteration numbers; iteration 1 always runs,
    // so a subset containing 1 forces a retry and one without it doesn't.
    let domain: Vec<u64> = (1..=50).collect();
    for seed in 0..8u64 {
        let outcome_of = || {
            let _g = faults::scoped(FaultPlan::new().fail_seeded(
                "dc.newton.plain",
                FaultKind::Stagnate,
                seed,
                &domain,
                6,
            ));
            let r = solve_dc_robust(&c, &policy);
            (r, faults::fired("dc.newton.plain"))
        };
        let (first, fired_a) = outcome_of();
        let (second, fired_b) = outcome_of();
        assert_eq!(first, second, "seed {seed} did not replay");
        assert_eq!(fired_a, fired_b, "seed {seed} fired differently");
        // Whatever the injected subset did, recovery after disarm is exact.
        assert_eq!(solve_dc_robust(&c, &policy).unwrap(), baseline);
    }
}

#[test]
fn ac_hook_fails_legacy_and_compiled_paths_identically() {
    let c = rlc_two_port();
    let plan = StampPlan::compile(&c).expect("compilable");
    let mut ws = rfkit_circuit::AcWorkspace::new();
    let f_bad: f64 = 1.4e9;
    let f_good: f64 = 1.2e9;
    {
        let _g = faults::scoped(FaultPlan::new().fail_keys(
            "ac.solve",
            FaultKind::SingularLu,
            &[f_bad.to_bits()],
        ));
        // Both paths share the site and the frequency-bits key, so the
        // fast-path equivalence contract holds under fault injection too.
        assert_eq!(
            s_matrix(&c, f_bad, &AcStamps::none()).unwrap_err(),
            AcError::Singular(f_bad)
        );
        assert_eq!(
            plan.two_port_s(f_bad, &AcStamps::none(), &mut ws)
                .unwrap_err(),
            AcError::Singular(f_bad)
        );
        // Untargeted frequencies sail through with identical bits.
        let legacy = rfkit_circuit::two_port_s(&c, f_good, &AcStamps::none()).unwrap();
        let fast = plan.two_port_s(f_good, &AcStamps::none(), &mut ws).unwrap();
        assert_eq!(legacy, fast);
        assert_eq!(faults::fired("ac.solve"), 2);
    }
    // Cleared: the poisoned frequency works again.
    assert!(s_matrix(&c, f_bad, &AcStamps::none()).is_ok());
}

#[test]
fn hb_newton_hook_forces_both_hb_errors() {
    use rfkit_circuit::hb::{solve, HbConfig, HbError, HbTestbench};
    use rfkit_num::Complex;
    let device = rfkit_device::Phemt::atf54143_like();
    let op = device.operating_point(device.bias_for_current(3.0, 0.06).unwrap(), 3.0);
    let bench = HbTestbench {
        device: &device,
        op,
        vdd: op.vds + op.ids * 20.0,
        r_dc_feed: 20.0,
        load: Box::new(|_k| Complex::real(50.0)),
    };
    let cfg = HbConfig::default();
    let drive = 0.05;
    let baseline = solve(&bench, drive, &cfg).expect("healthy HB solve");
    {
        let _g = faults::scoped(FaultPlan::new().fail_all("hb.newton", FaultKind::SingularLu));
        assert_eq!(solve(&bench, drive, &cfg).unwrap_err(), HbError::Singular);
    }
    {
        let _g = faults::scoped(FaultPlan::new().fail_all("hb.newton", FaultKind::NanResidual));
        match solve(&bench, drive, &cfg) {
            Err(HbError::NoConvergence { residual }) => assert!(residual.is_nan()),
            other => panic!("expected NoConvergence, got {other:?}"),
        }
    }
    // Recovery is bit-identical once the fault clears.
    assert_eq!(solve(&bench, drive, &cfg).unwrap(), baseline);
}

#[test]
fn twotone_point_faults_void_the_ip3_extrapolation() {
    use rfkit_circuit::{ip3_sweep, time_domain, TwoToneSpec};
    let device = rfkit_device::Phemt::atf54143_like();
    let op = device.operating_point(device.bias_for_current(3.0, 0.06).unwrap(), 3.0);
    let pins: Vec<f64> = (0..9).map(|i| -40.0 + 3.0 * i as f64).collect();
    let eval = |p: f64| {
        let spec = TwoToneSpec {
            pin_dbm: p,
            ..TwoToneSpec::default()
        };
        time_domain(&device, &op, &spec)
    };
    let healthy = ip3_sweep(&pins, eval);
    assert!(healthy.oip3_dbm.is_some(), "healthy sweep extrapolates");
    {
        // Kill a point inside the low-power fit window: the NaN row must
        // keep its slot and poison the fit into refusing to extrapolate.
        let _g = faults::scoped(FaultPlan::new().fail_keys(
            "twotone.point",
            FaultKind::PointFailure,
            &[pins[1].to_bits()],
        ));
        let faulted = ip3_sweep(&pins, eval);
        assert_eq!(
            faulted.rows.len(),
            pins.len(),
            "failed point keeps its slot"
        );
        assert!(faulted.rows[1].p_fund_dbm.is_nan());
        assert_eq!(faulted.oip3_dbm, None, "poisoned fit must not extrapolate");
        assert_eq!(faulted.iip3_dbm, None);
    }
    // Cleared: bit-identical to the healthy sweep.
    let again = ip3_sweep(&pins, eval);
    assert_eq!(again.rows, healthy.rows);
    assert_eq!(again.oip3_dbm, healthy.oip3_dbm);
}
