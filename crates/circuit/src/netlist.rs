//! Netlist representation: named nodes, lumped elements, sources, a
//! nonlinear FET and external ports.
//!
//! The paper's authors analysed their amplifier in their own circuit
//! simulator; this crate is that substrate. A [`Circuit`] is built
//! element-by-element against named nodes (`"ground"`/`"gnd"`/`"0"` are the
//! reference), then handed to the DC Newton solver ([`crate::dc`]) or the
//! AC analyzer ([`crate::ac`]).

use rfkit_device::DcModel;
use std::collections::BTreeMap;

/// Index of a circuit node; ground is `None` throughout the stamps.
pub type NodeId = usize;

/// A two-terminal or multi-terminal circuit element.
pub enum Element {
    /// Linear resistor (Ω).
    Resistor {
        /// First terminal.
        a: Option<NodeId>,
        /// Second terminal.
        b: Option<NodeId>,
        /// Resistance in ohms (> 0).
        ohms: f64,
    },
    /// Linear capacitor (F): open at DC, admittance `jωC` at AC.
    Capacitor {
        /// First terminal.
        a: Option<NodeId>,
        /// Second terminal.
        b: Option<NodeId>,
        /// Capacitance in farads (> 0).
        farads: f64,
    },
    /// Linear inductor (H): short at DC, impedance `jωL` at AC.
    Inductor {
        /// First terminal.
        a: Option<NodeId>,
        /// Second terminal.
        b: Option<NodeId>,
        /// Inductance in henries (> 0).
        henries: f64,
    },
    /// Ideal DC voltage source.
    VSource {
        /// Positive terminal.
        plus: Option<NodeId>,
        /// Negative terminal.
        minus: Option<NodeId>,
        /// EMF in volts.
        volts: f64,
    },
    /// Ideal DC current source (current flows from `from` to `to` through
    /// the source, i.e. it is injected into `to`).
    ISource {
        /// Current leaves this node.
        from: Option<NodeId>,
        /// Current enters this node.
        to: Option<NodeId>,
        /// Current in amperes.
        amps: f64,
    },
    /// A nonlinear FET described by a [`DcModel`] (DC analysis only; for
    /// AC the caller linearizes at the solved operating point).
    Fet {
        /// Gate node.
        gate: Option<NodeId>,
        /// Drain node.
        drain: Option<NodeId>,
        /// Source node.
        source: Option<NodeId>,
        /// The drain-current equation.
        model: Box<dyn DcModel>,
        /// Its parameter vector.
        params: Vec<f64>,
    },
}

/// An external RF port for AC analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Port {
    /// The port node (referenced to ground).
    pub node: NodeId,
    /// Reference impedance (Ω).
    pub z0: f64,
}

/// A circuit under construction / analysis.
#[derive(Default)]
pub struct Circuit {
    // BTreeMap, not HashMap: node ids are assigned in insertion order
    // regardless, but a sorted map keeps every traversal deterministic so
    // matrix stamping order can never depend on a hasher seed.
    node_names: BTreeMap<String, NodeId>,
    n_nodes: usize,
    /// Elements in insertion order.
    pub(crate) elements: Vec<Element>,
    /// External ports in declaration order.
    pub(crate) ports: Vec<Port>,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new() -> Self {
        Circuit::default()
    }

    /// Resolves a node name to an id, creating it on first use.
    /// The names `"0"`, `"gnd"` and `"ground"` resolve to the reference
    /// (returned as `None`).
    pub fn node(&mut self, name: &str) -> Option<NodeId> {
        match name {
            "0" | "gnd" | "ground" => None,
            _ => Some(*self.node_names.entry(name.to_string()).or_insert_with(|| {
                let id = self.n_nodes;
                self.n_nodes += 1;
                id
            })),
        }
    }

    /// Number of non-ground nodes created so far.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of elements.
    pub fn n_elements(&self) -> usize {
        self.elements.len()
    }

    /// Adds a resistor between nodes `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive resistance.
    pub fn resistor(&mut self, a: &str, b: &str, ohms: f64) -> &mut Self {
        assert!(ohms > 0.0, "resistance must be positive, got {ohms}");
        let (a, b) = (self.node(a), self.node(b));
        self.elements.push(Element::Resistor { a, b, ohms });
        self
    }

    /// Adds a capacitor between nodes `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive capacitance.
    pub fn capacitor(&mut self, a: &str, b: &str, farads: f64) -> &mut Self {
        assert!(farads > 0.0, "capacitance must be positive, got {farads}");
        let (a, b) = (self.node(a), self.node(b));
        self.elements.push(Element::Capacitor { a, b, farads });
        self
    }

    /// Adds an inductor between nodes `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive inductance.
    pub fn inductor(&mut self, a: &str, b: &str, henries: f64) -> &mut Self {
        assert!(henries > 0.0, "inductance must be positive, got {henries}");
        let (a, b) = (self.node(a), self.node(b));
        self.elements.push(Element::Inductor { a, b, henries });
        self
    }

    /// Adds an ideal DC voltage source (`plus` − `minus` = `volts`).
    pub fn vsource(&mut self, plus: &str, minus: &str, volts: f64) -> &mut Self {
        let (plus, minus) = (self.node(plus), self.node(minus));
        self.elements.push(Element::VSource { plus, minus, volts });
        self
    }

    /// Adds an ideal DC current source injecting `amps` into node `to`.
    pub fn isource(&mut self, from: &str, to: &str, amps: f64) -> &mut Self {
        let (from, to) = (self.node(from), self.node(to));
        self.elements.push(Element::ISource { from, to, amps });
        self
    }

    /// Adds a nonlinear FET.
    pub fn fet(
        &mut self,
        gate: &str,
        drain: &str,
        source: &str,
        model: Box<dyn DcModel>,
        params: Vec<f64>,
    ) -> &mut Self {
        assert_eq!(
            params.len(),
            model.param_names().len(),
            "FET parameter count mismatch"
        );
        let (gate, drain, source) = (self.node(gate), self.node(drain), self.node(source));
        self.elements.push(Element::Fet {
            gate,
            drain,
            source,
            model,
            params,
        });
        self
    }

    /// Declares an external RF port at a node.
    ///
    /// # Panics
    ///
    /// Panics if the node is ground or `z0 <= 0`.
    pub fn port(&mut self, node: &str, z0: f64) -> &mut Self {
        assert!(z0 > 0.0, "port impedance must be positive");
        let node = self.node(node).expect("port cannot be at ground");
        self.ports.push(Port { node, z0 });
        self
    }

    /// The declared ports.
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }
}

impl std::fmt::Debug for Circuit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Circuit")
            .field("nodes", &self.n_nodes)
            .field("elements", &self.elements.len())
            .field("ports", &self.ports.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfkit_device::dc::Angelov;

    #[test]
    fn node_interning_and_ground_aliases() {
        let mut c = Circuit::new();
        let a = c.node("in");
        let b = c.node("in");
        assert_eq!(a, b);
        assert_eq!(c.node("gnd"), None);
        assert_eq!(c.node("0"), None);
        assert_eq!(c.node("ground"), None);
        assert_eq!(c.n_nodes(), 1);
    }

    #[test]
    fn builder_chains() {
        let mut c = Circuit::new();
        c.resistor("in", "out", 50.0)
            .capacitor("out", "gnd", 1e-12)
            .inductor("in", "gnd", 1e-9)
            .vsource("vdd", "gnd", 3.0)
            .isource("gnd", "out", 1e-3)
            .port("in", 50.0);
        assert_eq!(c.n_elements(), 5);
        assert_eq!(c.ports().len(), 1);
        assert_eq!(c.n_nodes(), 3);
    }

    #[test]
    fn fet_addition() {
        let mut c = Circuit::new();
        let model = Angelov;
        use rfkit_device::DcModel as _;
        c.fet("g", "d", "s", Box::new(Angelov), model.default_params());
        assert_eq!(c.n_elements(), 1);
        assert_eq!(c.n_nodes(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_resistance() {
        Circuit::new().resistor("a", "b", 0.0);
    }

    #[test]
    #[should_panic(expected = "ground")]
    fn rejects_grounded_port() {
        Circuit::new().port("gnd", 50.0);
    }
}
