//! Compiled AC fast path: per-topology stamp plans and reusable solve
//! workspaces.
//!
//! [`s_matrix`](crate::ac::s_matrix) re-walks the netlist, recomputes the
//! port/internal index partition and allocates every intermediate matrix at
//! *every* frequency point. For a band sweep over one topology that work is
//! identical at each point except for the frequency-scaled stamps, so this
//! module compiles the netlist once into a [`StampPlan`]:
//!
//! * node count, port nodes and the internal-node partition are resolved at
//!   compile time;
//! * the frequency-independent part **G** (resistors, V-source AC shorts)
//!   is pre-stamped into a matrix that is *copied* per frequency;
//! * the frequency-scaled part **B(ω)** (capacitors, inductors) is kept as
//!   a compact slot list applied in place on top of the copy.
//!
//! Per frequency the plan copies G, applies B(ω) and the external device
//! stamps, and solves entirely inside an [`AcWorkspace`] — in-place LU via
//! [`LuWorkspace`], multi-RHS solves for both the Schur complement and the
//! S conversion, zero matrix allocations after the first (warm-up) point.
//!
//! The fast path is **bit-identical** to the legacy path. Two facts make
//! that possible: the stamp kernels, LU/substitution kernels and
//! elementwise/matmul kernels are literally shared code (see
//! [`ac`](crate::ac) and `rfkit_num::matrix`), and splitting assembly into
//! G then B(ω) cannot change any sum because resistor/V-source admittances
//! are purely real while capacitor/inductor admittances are purely
//! imaginary — complex addition is componentwise, so each matrix entry's
//! real and imaginary parts still accumulate in element order within their
//! component. The equivalence suite in `tests/fastpath_equivalence.rs`
//! asserts `assert_eq!` (exact bits) between both paths.

use crate::ac::{apply_two_port_stamps, stamp_admittance, AcError, AcStamps};
use crate::ac::{OBS_AC_SOLVE_US, SHORT_SIEMENS};
use crate::netlist::{Circuit, Element};
use rfkit_net::{NPort, SParams};
use rfkit_num::units::angular;
use rfkit_num::{CMatrix, Complex, LuWorkspace};

// Per-frequency assembly timing for the fast path (G copy + B(ω) + device
// stamps), a sub-phase of `circuit.ac.solve_us`.
static OBS_AC_ASSEMBLE_US: rfkit_obs::Hist = rfkit_obs::Hist::new("circuit.ac.assemble_us");

/// One frequency-scaled stamp slot: the element value with its admittance
/// law, `jωC` or `-j/(ωL)`.
#[derive(Debug, Clone, Copy)]
pub(crate) enum BLaw {
    /// Capacitance in farads: admittance `jωC`.
    Cap(f64),
    /// Inductance in henries: admittance `-j/(ωL)`.
    Ind(f64),
}

/// A compiled reactive stamp: resolved node pair plus admittance law.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BStamp {
    pub(crate) a: Option<usize>,
    pub(crate) b: Option<usize>,
    pub(crate) law: BLaw,
}

/// A netlist compiled for repeated AC solves over one topology.
///
/// Compile once with [`StampPlan::compile`], then call
/// [`StampPlan::s_matrix`] / [`StampPlan::two_port_s`] per frequency with a
/// reusable [`AcWorkspace`]. Results are bit-identical to
/// [`crate::ac::s_matrix`] / [`crate::ac::two_port_s`].
#[derive(Debug, Clone)]
pub struct StampPlan {
    /// Total node count (matrix dimension before reduction).
    pub(crate) n: usize,
    /// Port node indices in declaration order.
    pub(crate) port_nodes: Vec<usize>,
    /// Non-port node indices, ascending (eliminated by Schur complement).
    pub(crate) internal: Vec<usize>,
    /// Reference impedance shared by all ports.
    pub(crate) z0: f64,
    /// Frequency-independent admittance part (R stamps, V-source shorts),
    /// pre-accumulated in element order.
    pub(crate) g: CMatrix,
    /// Frequency-scaled stamp slots (C and L interleaved in element order,
    /// preserving the legacy accumulation order within the imaginary
    /// component).
    pub(crate) b_stamps: Vec<BStamp>,
    /// Structural classification of the internal block, computed once at
    /// compile time and consumed by [`StampPlan::sweep_batch`].
    pub(crate) structure: crate::sweep::PlanStructure,
}

impl StampPlan {
    /// Compiles the netlist: resolves the port/internal partition, stamps G
    /// and collects the reactive slot list.
    ///
    /// # Errors
    ///
    /// [`AcError::NoPorts`] when the circuit declares no ports.
    pub fn compile(circuit: &Circuit) -> Result<StampPlan, AcError> {
        if circuit.ports().is_empty() {
            return Err(AcError::NoPorts);
        }
        let n = circuit.n_nodes();
        let port_nodes: Vec<usize> = circuit.ports().iter().map(|p| p.node).collect();
        let z0 = circuit.ports()[0].z0;
        let internal: Vec<usize> = (0..n).filter(|i| !port_nodes.contains(i)).collect();
        let mut g = CMatrix::zeros(n, n);
        let mut b_stamps = Vec::new();
        for e in &circuit.elements {
            match e {
                Element::Resistor { a, b, ohms } => {
                    stamp_admittance(&mut g, *a, *b, Complex::real(1.0 / ohms));
                }
                Element::Capacitor { a, b, farads } => {
                    b_stamps.push(BStamp {
                        a: *a,
                        b: *b,
                        law: BLaw::Cap(*farads),
                    });
                }
                Element::Inductor { a, b, henries } => {
                    b_stamps.push(BStamp {
                        a: *a,
                        b: *b,
                        law: BLaw::Ind(*henries),
                    });
                }
                Element::VSource { plus, minus, .. } => {
                    // AC ground between its terminals.
                    stamp_admittance(&mut g, *plus, *minus, Complex::real(SHORT_SIEMENS));
                }
                Element::ISource { .. } => {
                    // AC open.
                }
                Element::Fet { .. } => {
                    // Linearization supplied externally via `stamps`.
                }
            }
        }
        let structure = crate::sweep::classify(&g, &b_stamps, &internal);
        Ok(StampPlan {
            n,
            port_nodes,
            internal,
            z0,
            g,
            b_stamps,
            structure,
        })
    }

    /// Name of the structure-aware solve path the compile-time classifier
    /// selected for the internal block: `"dense"`, `"banded"` or
    /// `"bordered"`. [`StampPlan::sweep_batch`] may still downgrade to
    /// dense at sweep time when external device stamps add coupling the
    /// classified structure cannot hold.
    pub fn solve_path_name(&self) -> &'static str {
        self.structure.path_name()
    }

    /// Number of declared ports.
    pub fn n_ports(&self) -> usize {
        self.port_nodes.len()
    }

    /// Shared port reference impedance.
    pub fn z0(&self) -> f64 {
        self.z0
    }

    /// Computes the N-port S-matrix at `freq_hz` through the compiled plan.
    ///
    /// Allocates only the returned [`NPort`]; every intermediate lives in
    /// `ws`. Bit-identical to [`crate::ac::s_matrix`].
    ///
    /// # Errors
    ///
    /// See [`AcError`].
    pub fn s_matrix(
        &self,
        freq_hz: f64,
        stamps: &AcStamps<'_>,
        ws: &mut AcWorkspace,
    ) -> Result<NPort, AcError> {
        self.solve_into(freq_hz, stamps, ws)?;
        Ok(NPort::new(ws.smat.clone(), self.z0))
    }

    /// Computes 2-port S-parameters at `freq_hz` through the compiled plan,
    /// with **zero** heap allocations after workspace warm-up ([`SParams`]
    /// is `Copy`). Bit-identical to [`crate::ac::two_port_s`].
    ///
    /// # Errors
    ///
    /// [`AcError::NoPorts`] also covers the wrong port count here.
    pub fn two_port_s(
        &self,
        freq_hz: f64,
        stamps: &AcStamps<'_>,
        ws: &mut AcWorkspace,
    ) -> Result<SParams, AcError> {
        if self.port_nodes.len() != 2 {
            return Err(AcError::NoPorts);
        }
        self.solve_into(freq_hz, stamps, ws)?;
        Ok(SParams::new(
            ws.smat[(0, 0)],
            ws.smat[(0, 1)],
            ws.smat[(1, 0)],
            ws.smat[(1, 1)],
            self.z0,
        ))
    }

    /// Assembles and solves at `freq_hz`, leaving the S-matrix in
    /// `ws.smat`.
    fn solve_into(
        &self,
        freq_hz: f64,
        stamps: &AcStamps<'_>,
        ws: &mut AcWorkspace,
    ) -> Result<(), AcError> {
        if freq_hz <= 0.0 {
            return Err(AcError::NonPositiveFrequency(freq_hz));
        }
        // Same fault hook (site and key) as the legacy `s_matrix` path:
        // an armed plan must fail both paths at the same grid points or
        // the fast-path equivalence contract would appear broken.
        if rfkit_robust::faults::inject("ac.solve", freq_hz.to_bits()).is_some() {
            return Err(AcError::Singular(freq_hz));
        }
        let watch = rfkit_obs::stopwatch();
        ws.track_dims(self.n, self.port_nodes.len());
        self.assemble_into(freq_hz, stamps, ws);

        // Schur-complement reduction to the port nodes.
        if self.internal.is_empty() {
            ws.yred
                .gather_from(&ws.y, &self.port_nodes, &self.port_nodes);
        } else {
            ws.ypp
                .gather_from(&ws.y, &self.port_nodes, &self.port_nodes);
            ws.ypi.gather_from(&ws.y, &self.port_nodes, &self.internal);
            ws.yip.gather_from(&ws.y, &self.internal, &self.port_nodes);
            ws.yii.gather_from(&ws.y, &self.internal, &self.internal);
            ws.yii
                .lu_into(&mut ws.lu)
                .map_err(|_| AcError::Singular(freq_hz))?;
            ws.lu
                .solve_matrix_into(&ws.yip, &mut ws.solved, &mut ws.x)
                .map_err(|_| AcError::Singular(freq_hz))?;
            ws.ypi
                .matmul_into(&ws.solved, &mut ws.prod)
                .expect("dimensions chain");
            ws.ypp.sub_into(&ws.prod, &mut ws.yred);
        }

        self.s_convert(freq_hz, ws)?;
        if let Some(us) = watch.elapsed_us() {
            OBS_AC_SOLVE_US.record(us);
        }
        Ok(())
    }

    /// Assembles the full Y matrix at `freq_hz` into `ws.y`: copy G, apply
    /// B(ω) in place, then the external device stamps. Shared between the
    /// per-point path and the batched sweep so both produce identical
    /// matrices.
    pub(crate) fn assemble_into(&self, freq_hz: f64, stamps: &AcStamps<'_>, ws: &mut AcWorkspace) {
        let assemble_watch = rfkit_obs::stopwatch();
        let w = angular(freq_hz);
        ws.y.copy_from(&self.g);
        for s in &self.b_stamps {
            let adm = match s.law {
                BLaw::Cap(farads) => Complex::imag(w * farads),
                BLaw::Ind(henries) => Complex::imag(-1.0 / (w * henries)),
            };
            stamp_admittance(&mut ws.y, s.a, s.b, adm);
        }
        apply_two_port_stamps(&mut ws.y, stamps, freq_hz);
        if let Some(us) = assemble_watch.elapsed_us() {
            OBS_AC_ASSEMBLE_US.record(us);
        }
    }

    /// S conversion from `ws.yred`: S = (I - z0·Y)(I + z0·Y)⁻¹, inverse
    /// realized as a multi-RHS solve against the identity in workspace
    /// storage (same column-by-column arithmetic as `Matrix::inverse`).
    /// Leaves the result in `ws.smat`.
    pub(crate) fn s_convert(&self, freq_hz: f64, ws: &mut AcWorkspace) -> Result<(), AcError> {
        let m = self.port_nodes.len();
        if ws.id.rows() != m {
            // The identity RHS is constant per dimension; rebuild only on
            // a warm-up, not per frequency.
            ws.id.reset_identity(m);
        }
        ws.yred.scaled_into(Complex::real(self.z0), &mut ws.yz);
        ws.id.add_into(&ws.yz, &mut ws.apb);
        ws.apb
            .lu_into(&mut ws.lu)
            .map_err(|_| AcError::Singular(freq_hz))?;
        ws.lu
            .solve_matrix_into(&ws.id, &mut ws.den, &mut ws.x)
            .map_err(|_| AcError::Singular(freq_hz))?;
        ws.id.sub_into(&ws.yz, &mut ws.amb);
        ws.amb
            .matmul_into(&ws.den, &mut ws.smat)
            .expect("dimensions chain");
        Ok(())
    }
}

/// Reusable scratch storage for [`StampPlan`] solves.
///
/// All intermediate matrices, the LU workspace and the column scratch
/// buffers live here, so a band sweep re-solving one plan performs zero
/// matrix allocations after the first frequency point. The warm-up/reuse
/// counters act as an allocation proxy: a sweep of `k` points over one
/// topology must report `warmup_count() == 1` and `reuse_count() == k - 1`.
///
/// A workspace may be shared across plans of different sizes; changing
/// dimensions just triggers another warm-up.
#[derive(Debug, Clone, Default)]
pub struct AcWorkspace {
    pub(crate) y: CMatrix,
    pub(crate) ypp: CMatrix,
    pub(crate) ypi: CMatrix,
    pub(crate) yip: CMatrix,
    pub(crate) yii: CMatrix,
    pub(crate) solved: CMatrix,
    pub(crate) prod: CMatrix,
    pub(crate) yred: CMatrix,
    pub(crate) id: CMatrix,
    pub(crate) yz: CMatrix,
    pub(crate) apb: CMatrix,
    pub(crate) amb: CMatrix,
    pub(crate) den: CMatrix,
    pub(crate) smat: CMatrix,
    pub(crate) lu: LuWorkspace<Complex>,
    pub(crate) x: Vec<Complex>,
    // Batched-sweep state: the dense pivot-reuse factorization persists
    // across grid points (`lu` is clobbered by the S conversion every
    // point), and the structure-aware kernels keep their band/border
    // storage here so a whole sweep allocates nothing after warm-up.
    pub(crate) sweep_lu: LuWorkspace<Complex>,
    pub(crate) banded: rfkit_num::BandedLu<Complex>,
    pub(crate) bordered: rfkit_num::BorderedLu<Complex>,
    pub(crate) col: Vec<Complex>,
    dims: (usize, usize),
    warmups: u64,
    reuses: u64,
}

impl AcWorkspace {
    /// Creates an empty workspace; buffers grow on the first solve.
    pub fn new() -> Self {
        AcWorkspace::default()
    }

    /// Number of solves that had to size buffers (first use or a dimension
    /// change). A single-topology sweep warms up exactly once.
    pub fn warmup_count(&self) -> u64 {
        self.warmups
    }

    /// Number of solves that reused existing buffer sizes (the
    /// allocation-free fast case).
    pub fn reuse_count(&self) -> u64 {
        self.reuses
    }

    pub(crate) fn track_dims(&mut self, n: usize, m: usize) {
        if self.dims == (n, m) {
            self.reuses += 1;
        } else {
            self.dims = (n, m);
            self.warmups += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ac::{s_matrix, two_port_s};

    fn ladder() -> Circuit {
        let mut c = Circuit::new();
        c.inductor("in", "mid", 6.8e-9)
            .capacitor("mid", "gnd", 1.2e-12)
            .resistor("mid", "out", 12.0)
            .inductor("out", "gnd", 10e-9)
            .port("in", 50.0)
            .port("out", 50.0);
        c
    }

    #[test]
    fn plan_matches_legacy_bitwise_on_ladder() {
        let c = ladder();
        let plan = StampPlan::compile(&c).unwrap();
        let mut ws = AcWorkspace::new();
        for f in [0.3e9, 1.1e9, 1.575e9, 1.7e9, 4.2e9] {
            let legacy = two_port_s(&c, f, &AcStamps::none()).unwrap();
            let fast = plan.two_port_s(f, &AcStamps::none(), &mut ws).unwrap();
            assert_eq!(legacy, fast);
            let legacy_np = s_matrix(&c, f, &AcStamps::none()).unwrap();
            let fast_np = plan.s_matrix(f, &AcStamps::none(), &mut ws).unwrap();
            assert_eq!(legacy_np, fast_np);
        }
    }

    #[test]
    fn workspace_counts_one_warmup_per_topology() {
        let c = ladder();
        let plan = StampPlan::compile(&c).unwrap();
        let mut ws = AcWorkspace::new();
        for i in 1..=32 {
            let f = 1.0e9 + 0.025e9 * i as f64;
            plan.two_port_s(f, &AcStamps::none(), &mut ws).unwrap();
        }
        assert_eq!(ws.warmup_count(), 1);
        assert_eq!(ws.reuse_count(), 31);
    }

    #[test]
    fn plan_error_parity_with_legacy() {
        let mut no_ports = Circuit::new();
        no_ports.resistor("a", "b", 10.0);
        assert_eq!(
            StampPlan::compile(&no_ports).unwrap_err(),
            s_matrix(&no_ports, 1e9, &AcStamps::none()).unwrap_err()
        );
        let c = ladder();
        let plan = StampPlan::compile(&c).unwrap();
        let mut ws = AcWorkspace::new();
        assert_eq!(
            plan.two_port_s(0.0, &AcStamps::none(), &mut ws)
                .unwrap_err(),
            two_port_s(&c, 0.0, &AcStamps::none()).unwrap_err()
        );
    }
}
