//! # rfkit-circuit
//!
//! Netlist-level circuit simulation for the GNSS LNA reproduction:
//!
//! * a named-node netlist with R/L/C, DC sources and a nonlinear FET
//!   ([`netlist`](crate::Circuit));
//! * DC operating-point analysis by damped Newton–Raphson on the MNA
//!   equations ([`dc`]);
//! * AC S-parameter analysis with internal-node elimination and external
//!   linearized-device stamps ([`ac`]);
//! * two-tone third-order intermodulation analysis, by power series and by
//!   full nonlinear time-domain simulation + FFT ([`twotone`]);
//! * single-tone harmonic balance with arbitrary per-harmonic loads —
//!   compression, harmonic distortion and bias shift of the *loaded*
//!   stage ([`hb`]).
//!
//! ## Example: bias network plus device
//!
//! ```
//! use rfkit_circuit::{solve_dc, Circuit};
//! use rfkit_device::dc::{Angelov, DcModel as _};
//!
//! let mut c = Circuit::new();
//! c.vsource("vdd", "gnd", 5.0)
//!     .resistor("vdd", "drain", 33.0)
//!     .vsource("vg", "gnd", -0.3)
//!     .fet("vg", "drain", "gnd", Box::new(Angelov), Angelov.default_params());
//! let sol = solve_dc(&c)?;
//! assert!(sol.fet_currents[0] > 0.0);
//! # Ok::<(), rfkit_circuit::DcError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ac;
pub mod dc;
pub mod hb;
mod netlist;
pub mod plan;
pub mod sweep;
pub mod twotone;

pub use ac::{s_matrix, two_port_s, AcError, AcStamps};
pub use dc::{solve_dc, solve_dc_robust, DcError, DcSolution};
pub use hb::{compression_sweep, HbConfig, HbError, HbSolution, HbTestbench};
pub use netlist::{Circuit, Element, NodeId, Port};
pub use plan::{AcWorkspace, StampPlan};
pub use sweep::{
    shared_plan, shared_plan_cache, PlanCache, SweepBatch, SweepStats, DEFAULT_PLAN_CACHE_CAPACITY,
    SWEEP_TOL,
};
pub use twotone::{
    ip3_sweep, p1db, power_series, single_tone, time_domain, Ip3Sweep, TwoToneResult, TwoToneSpec,
};
