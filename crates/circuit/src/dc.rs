//! DC operating-point analysis by Newton–Raphson on the MNA equations,
//! hardened by a deterministic fallback ladder.
//!
//! Unknowns are the node voltages plus one branch current per voltage
//! source and per inductor (inductors are DC shorts). The nonlinear FET is
//! handled with the usual companion model: at each iteration it is replaced
//! by `gm`, `gds` conductances plus an equivalent current source, which is
//! exactly a Newton step on the nodal equations.
//!
//! ## Fallback ladder
//!
//! [`solve_dc_robust`] escalates through four independent rungs until one
//! converges (see `rfkit-robust` and DESIGN.md § Robustness):
//!
//! 1. **plain Newton** — full steps; cheapest, converges on mildly
//!    nonlinear bias networks;
//! 2. **damped Newton** — backtracking line search, the workhorse;
//! 3. **gmin-stepping** — an artificial conductance from every node to
//!    ground starts at 1e-2 S and relaxes in decades, dragging the
//!    solution along a continuation path (SPICE2 lineage);
//! 4. **source-stepping** — every independent source ramps from a small
//!    fraction to 100 %, again continuing from level to level.
//!
//! Every rung restarts from the zero iterate, so the reported solution is
//! a pure function of (circuit, policy, first rung that succeeds) and the
//! whole ladder is bit-reproducible. Budgets are iteration-denominated
//! ([`RetryPolicy`]); failures carry provenance ([`SolveError`]).

use crate::netlist::{Circuit, Element};
use rfkit_device::dc::{gds as fet_gds, gm as fet_gm};
use rfkit_num::RMatrix;
use rfkit_robust::faults::{self, FaultKind};
pub use rfkit_robust::{RetryPolicy, SolveError, SolveStage};
use std::collections::BTreeMap;

// Solver telemetry (runtime-gated, write-only; see rfkit-obs).
static OBS_DC_SOLVES: rfkit_obs::Counter = rfkit_obs::Counter::new("circuit.dc.solves");
static OBS_DC_ITERS: rfkit_obs::Hist = rfkit_obs::Hist::new("circuit.dc.iters");
static OBS_DC_RETRIES: rfkit_obs::Counter = rfkit_obs::Counter::new("dc.retry.attempts");
static OBS_DC_STAGE: rfkit_obs::Hist = rfkit_obs::Hist::new("dc.fallback.stage");

/// Residual norm at which the iteration is converged.
const CONVERGED_NORM: f64 = 1e-12;
/// Looser acceptance when a rung exhausts its budget close to a root
/// (matches the historical solver's behavior on stiff FET bias points).
const NEAR_CONVERGED_NORM: f64 = 1e-6;
/// Step size below which the iteration has stopped moving.
const STAGNATION_STEP: f64 = 1e-14;
/// A stalled iterate only counts as converged below this residual;
/// stalling far from a root is reported as stagnation, not success.
const STAGNATION_NORM: f64 = 1e-9;

/// Result of a DC solve.
#[derive(Debug, Clone, PartialEq)]
pub struct DcSolution {
    /// Node voltages indexed by [`crate::netlist::NodeId`].
    pub voltages: Vec<f64>,
    /// Drain current of each FET, in element order.
    pub fet_currents: Vec<f64>,
    /// Newton iterations used, summed over every ladder rung attempted.
    pub iterations: usize,
    /// The fallback-ladder rung that produced the solution.
    pub stage: SolveStage,
    /// Ladder rungs attempted (1 = first try succeeded).
    pub attempts: usize,
}

impl DcSolution {
    /// Voltage of a node id (0 V for ground/`None`).
    pub fn voltage(&self, node: Option<usize>) -> f64 {
        node.map_or(0.0, |n| self.voltages[n])
    }
}

/// Error from the DC solver (legacy coarse taxonomy; [`solve_dc_robust`]
/// reports the structured [`SolveError`] instead).
#[derive(Debug, Clone, PartialEq)]
pub enum DcError {
    /// Newton iteration failed to converge.
    NoConvergence {
        /// Residual norm at the last iterate.
        residual: f64,
    },
    /// The MNA matrix is singular (floating node or short loop).
    Singular,
}

impl std::fmt::Display for DcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DcError::NoConvergence { residual } => {
                write!(
                    f,
                    "newton iteration did not converge (residual {residual:.3e})"
                )
            }
            DcError::Singular => write!(f, "singular MNA matrix (floating node or source loop)"),
        }
    }
}

impl std::error::Error for DcError {}

/// Solves the DC operating point of `circuit` with the default
/// [`RetryPolicy`] (full fallback ladder).
///
/// # Errors
///
/// Returns [`DcError::Singular`] for ill-formed topologies and
/// [`DcError::NoConvergence`] when every ladder rung fails. Callers who
/// need stage/iteration/residual provenance should use
/// [`solve_dc_robust`].
pub fn solve_dc(circuit: &Circuit) -> Result<DcSolution, DcError> {
    solve_dc_robust(circuit, &RetryPolicy::default()).map_err(|e| match e {
        SolveError::SingularSystem { .. } => DcError::Singular,
        SolveError::NonConvergence { residual, .. }
        | SolveError::BudgetExhausted { residual, .. } => DcError::NoConvergence { residual },
    })
}

/// Solves the DC operating point, escalating through the fallback ladder
/// under `policy` and reporting structured provenance on failure.
///
/// # Errors
///
/// * [`SolveError::SingularSystem`] — the linearized MNA matrix was
///   singular in every rung attempted;
/// * [`SolveError::NonConvergence`] — budgets ran out or the residual
///   went non-finite in every rung attempted;
/// * [`SolveError::BudgetExhausted`] — the cross-stage iteration ceiling
///   ([`RetryPolicy::max_total_iters`]) expired mid-ladder (reported
///   immediately; remaining rungs are not attempted).
pub fn solve_dc_robust(circuit: &Circuit, policy: &RetryPolicy) -> Result<DcSolution, SolveError> {
    let n = circuit.n_nodes();
    // Assign extra unknowns (branch currents) to V sources and inductors.
    // Keyed by element index in a sorted map so any future traversal is
    // element-ordered; MNA stamping must never depend on a hasher seed.
    let mut branch_of: BTreeMap<usize, usize> = BTreeMap::new();
    let mut n_branches = 0;
    for (k, e) in circuit.elements.iter().enumerate() {
        if matches!(e, Element::VSource { .. } | Element::Inductor { .. }) {
            branch_of.insert(k, n + n_branches);
            n_branches += 1;
        }
    }
    let dim = n + n_branches;
    if dim == 0 {
        return Ok(DcSolution {
            voltages: Vec::new(),
            fet_currents: Vec::new(),
            iterations: 0,
            stage: SolveStage::PlainNewton,
            attempts: 1,
        });
    }

    let sys = System {
        circuit,
        n,
        branch_of: &branch_of,
        dim,
    };
    let rungs = &SolveStage::LADDER[..policy.max_attempts.clamp(1, SolveStage::LADDER.len())];
    let mut used = 0usize;
    let mut last_err: Option<SolveError> = None;
    for (attempt, &stage) in rungs.iter().enumerate() {
        if attempt > 0 {
            OBS_DC_RETRIES.add(1);
        }
        match run_stage(&sys, stage, policy, &mut used) {
            Ok(x) => {
                if rfkit_obs::enabled() {
                    OBS_DC_STAGE.record(stage.index() as u64);
                }
                return Ok(finish(circuit, x, used, stage, attempt + 1));
            }
            // The iteration ceiling is cross-stage: once it expires there
            // is no budget left for later rungs either.
            Err(e @ SolveError::BudgetExhausted { .. }) => {
                emit_failure(&e);
                return Err(e);
            }
            Err(e) => last_err = Some(e),
        }
    }
    let err = last_err.expect("ladder has at least one rung");
    emit_failure(&err);
    Err(err)
}

fn emit_failure(err: &SolveError) {
    if rfkit_obs::enabled() {
        rfkit_obs::event(
            "circuit.dc.no_convergence",
            &[
                ("residual", err.residual().unwrap_or(f64::NAN)),
                ("stage", err.stage().index() as f64),
                ("iterations", err.iterations() as f64),
            ],
        );
    }
}

/// The MNA system being solved: circuit plus unknown layout.
struct System<'a> {
    circuit: &'a Circuit,
    n: usize,
    branch_of: &'a BTreeMap<usize, usize>,
    dim: usize,
}

/// Runs one ladder rung from the zero iterate; returns the solved
/// unknown vector.
fn run_stage(
    sys: &System<'_>,
    stage: SolveStage,
    policy: &RetryPolicy,
    used: &mut usize,
) -> Result<Vec<f64>, SolveError> {
    let mut x = vec![0.0; sys.dim];
    match stage {
        SolveStage::PlainNewton => {
            newton_run(
                sys,
                &mut x,
                stage,
                "dc.newton.plain",
                false,
                0.0,
                1.0,
                policy.plain_iters,
                used,
                policy,
            )?;
        }
        SolveStage::DampedNewton => {
            newton_run(
                sys,
                &mut x,
                stage,
                "dc.newton.damped",
                true,
                0.0,
                1.0,
                policy.damped_iters,
                used,
                policy,
            )?;
        }
        SolveStage::GminStepping => {
            // Continuation in the artificial node conductance: 1e-2 S down
            // in double decades, then one exact solve with the extra gmin
            // removed (the baseline 1e-15 S of `assemble` always remains,
            // so the final system is identical to the direct rungs').
            let mut gmin = 1e-2;
            for _ in 0..policy.gmin_steps {
                newton_run(
                    sys,
                    &mut x,
                    stage,
                    "dc.gmin",
                    true,
                    gmin,
                    1.0,
                    policy.homotopy_iters,
                    used,
                    policy,
                )?;
                gmin *= 1e-2;
            }
            newton_run(
                sys,
                &mut x,
                stage,
                "dc.gmin",
                true,
                0.0,
                1.0,
                policy.homotopy_iters,
                used,
                policy,
            )?;
        }
        SolveStage::SourceStepping => {
            // Continuation in the source scale: ramp every V/I source to
            // 100 % in equal fractions; the final level is exactly 1.0.
            let levels = policy.source_steps.max(1);
            for s in 1..=levels {
                let alpha = s as f64 / levels as f64;
                newton_run(
                    sys,
                    &mut x,
                    stage,
                    "dc.source",
                    true,
                    0.0,
                    alpha,
                    policy.homotopy_iters,
                    used,
                    policy,
                )?;
            }
        }
    }
    Ok(x)
}

/// The Newton iteration shared by every rung. Iterates `x` in place until
/// the residual converges; `damped` enables the backtracking line search.
/// `gmin_extra` and `src_scale` are the homotopy knobs (0.0 / 1.0 for the
/// direct rungs). Returns `Ok(())` with `x` at the solution.
#[allow(clippy::too_many_arguments)]
fn newton_run(
    sys: &System<'_>,
    x: &mut Vec<f64>,
    stage: SolveStage,
    site: &'static str,
    damped: bool,
    gmin_extra: f64,
    src_scale: f64,
    max_iters: usize,
    used: &mut usize,
    policy: &RetryPolicy,
) -> Result<(), SolveError> {
    let norm_of = |r: &[f64]| -> f64 { r.iter().map(|v| v * v).sum::<f64>().sqrt() };
    for iteration in 1..=max_iters {
        *used += 1;
        let (jac, residual) = assemble(sys, x, gmin_extra, src_scale);
        let mut norm = norm_of(&residual);
        // Deterministic fault hook: keyed by the in-rung iteration number,
        // so an armed plan fires at the same logical place at any thread
        // count. Compiles to nothing without `rfkit-faults`.
        match faults::inject(site, iteration as u64) {
            Some(FaultKind::SingularLu) => {
                return Err(SolveError::SingularSystem {
                    stage,
                    iterations: *used,
                });
            }
            Some(FaultKind::NanResidual) => norm = f64::NAN,
            Some(FaultKind::Stagnate) | Some(FaultKind::PointFailure) => {
                return Err(SolveError::NonConvergence {
                    stage,
                    iterations: *used,
                    residual: norm,
                });
            }
            None => {}
        }
        if !norm.is_finite() {
            return Err(SolveError::NonConvergence {
                stage,
                iterations: *used,
                residual: norm,
            });
        }
        if norm < CONVERGED_NORM {
            return Ok(());
        }
        if *used >= policy.max_total_iters {
            return Err(SolveError::BudgetExhausted {
                stage,
                iterations: *used,
                residual: norm,
            });
        }
        let rhs: Vec<f64> = residual.iter().map(|r| -r).collect();
        let delta = jac.solve(&rhs).map_err(|_| SolveError::SingularSystem {
            stage,
            iterations: *used,
        })?;
        let max_step = delta.iter().fold(0.0f64, |m, d| m.max(d.abs()));
        if max_step < STAGNATION_STEP {
            // The step collapsed. Near a root that is convergence; far
            // from one it is stagnation and the rung must report it
            // rather than hand back a bogus "solution".
            if norm < STAGNATION_NORM {
                return Ok(());
            }
            return Err(SolveError::NonConvergence {
                stage,
                iterations: *used,
                residual: norm,
            });
        }
        if damped {
            // Backtracking line search: take the full Newton step when it
            // reduces the residual (always, for linear circuits); halve it
            // otherwise so the FET equations cannot overshoot.
            let mut damp = 1.0;
            for _ in 0..30 {
                let trial: Vec<f64> = x
                    .iter()
                    .zip(&delta)
                    .map(|(xi, di)| xi + damp * di)
                    .collect();
                let (_, r_trial) = assemble(sys, &trial, gmin_extra, src_scale);
                if norm_of(&r_trial) < norm || damp < 1e-6 {
                    *x = trial;
                    break;
                }
                damp *= 0.5;
            }
        } else {
            for (xi, di) in x.iter_mut().zip(&delta) {
                *xi += di;
            }
        }
    }
    // Budget spent: accept a near-converged iterate, else report.
    let (_, residual) = assemble(sys, x, gmin_extra, src_scale);
    let norm = norm_of(&residual);
    if norm < NEAR_CONVERGED_NORM {
        return Ok(());
    }
    Err(SolveError::NonConvergence {
        stage,
        iterations: *used,
        residual: norm,
    })
}

/// Builds the Jacobian and residual of the MNA system at iterate `x`.
/// `gmin_extra` adds an artificial conductance from every node to ground
/// (gmin-stepping); `src_scale` scales every independent source
/// (source-stepping). The direct rungs use `0.0` / `1.0`, which makes the
/// system identical to the historical single-loop solver's.
fn assemble(sys: &System<'_>, x: &[f64], gmin_extra: f64, src_scale: f64) -> (RMatrix, Vec<f64>) {
    let System {
        circuit,
        n,
        branch_of,
        dim,
    } = *sys;
    let v = |node: Option<usize>| -> f64 { node.map_or(0.0, |k| x[k]) };
    let mut jac = RMatrix::zeros(dim, dim);
    let mut res = vec![0.0; dim];
    let stamp_j = |row: Option<usize>, col: Option<usize>, val: f64, jac: &mut RMatrix| {
        if let (Some(r), Some(c)) = (row, col) {
            jac[(r, c)] += val;
        }
    };
    let add_res = |row: Option<usize>, val: f64, res: &mut Vec<f64>| {
        if let Some(r) = row {
            res[r] += val;
        }
    };

    for (k, e) in circuit.elements.iter().enumerate() {
        match e {
            Element::Resistor { a, b, ohms } => {
                let g = 1.0 / ohms;
                let i = g * (v(*a) - v(*b));
                add_res(*a, i, &mut res);
                add_res(*b, -i, &mut res);
                stamp_j(*a, *a, g, &mut jac);
                stamp_j(*b, *b, g, &mut jac);
                stamp_j(*a, *b, -g, &mut jac);
                stamp_j(*b, *a, -g, &mut jac);
            }
            Element::Capacitor { .. } => {
                // Open at DC.
            }
            Element::Inductor { a, b, .. } => {
                // DC short: v(a) − v(b) = 0, current is an unknown.
                let br = branch_of[&k];
                let i_l = x[br];
                add_res(*a, i_l, &mut res);
                add_res(*b, -i_l, &mut res);
                stamp_j(*a, Some(br), 1.0, &mut jac);
                stamp_j(*b, Some(br), -1.0, &mut jac);
                res[br] += v(*a) - v(*b);
                stamp_j(Some(br), *a, 1.0, &mut jac);
                stamp_j(Some(br), *b, -1.0, &mut jac);
            }
            Element::VSource { plus, minus, volts } => {
                let br = branch_of[&k];
                let i_v = x[br];
                add_res(*plus, i_v, &mut res);
                add_res(*minus, -i_v, &mut res);
                stamp_j(*plus, Some(br), 1.0, &mut jac);
                stamp_j(*minus, Some(br), -1.0, &mut jac);
                res[br] += v(*plus) - v(*minus) - volts * src_scale;
                stamp_j(Some(br), *plus, 1.0, &mut jac);
                stamp_j(Some(br), *minus, -1.0, &mut jac);
            }
            Element::ISource { from, to, amps } => {
                add_res(*from, *amps * src_scale, &mut res);
                add_res(*to, -*amps * src_scale, &mut res);
            }
            Element::Fet {
                gate,
                drain,
                source,
                model,
                params,
            } => {
                let vgs = v(*gate) - v(*source);
                let vds = v(*drain) - v(*source);
                let ids = model.ids(params, vgs, vds.max(0.0));
                let g_m = fet_gm(model.as_ref(), params, vgs, vds.max(0.0));
                let g_ds = fet_gds(model.as_ref(), params, vgs, vds.max(0.0));
                // Drain current flows drain → source.
                add_res(*drain, ids, &mut res);
                add_res(*source, -ids, &mut res);
                // ∂Ids/∂Vg = gm, ∂Ids/∂Vd = gds, ∂Ids/∂Vs = −(gm + gds).
                stamp_j(*drain, *gate, g_m, &mut jac);
                stamp_j(*drain, *drain, g_ds, &mut jac);
                stamp_j(*drain, *source, -(g_m + g_ds), &mut jac);
                stamp_j(*source, *gate, -g_m, &mut jac);
                stamp_j(*source, *drain, -g_ds, &mut jac);
                stamp_j(*source, *source, g_m + g_ds, &mut jac);
            }
        }
    }
    // A tiny conductance from every node to ground keeps purely capacitive
    // nodes from floating at DC (small enough not to disturb mA-level
    // solutions beyond double precision). Gmin-stepping piles its
    // artificial conductance on top and relaxes it back to exactly this
    // baseline.
    let gmin = 1e-15 + gmin_extra;
    for k in 0..n {
        jac[(k, k)] += gmin;
        res[k] += gmin * x[k];
    }
    (jac, res)
}

fn finish(
    circuit: &Circuit,
    x: Vec<f64>,
    iterations: usize,
    stage: SolveStage,
    attempts: usize,
) -> DcSolution {
    if rfkit_obs::enabled() {
        OBS_DC_SOLVES.add(1);
        OBS_DC_ITERS.record(iterations as u64);
    }
    let v = |node: Option<usize>| -> f64 { node.map_or(0.0, |k| x[k]) };
    let fet_currents = circuit
        .elements
        .iter()
        .filter_map(|e| match e {
            Element::Fet {
                gate,
                drain,
                source,
                model,
                params,
            } => Some(model.ids(
                params,
                v(*gate) - v(*source),
                (v(*drain) - v(*source)).max(0.0),
            )),
            _ => None,
        })
        .collect();
    DcSolution {
        voltages: x[..circuit.n_nodes()].to_vec(),
        fet_currents,
        iterations,
        stage,
        attempts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfkit_device::dc::{Angelov, DcModel};
    use rfkit_device::Phemt;

    #[test]
    fn voltage_divider() {
        let mut c = Circuit::new();
        c.vsource("vin", "gnd", 10.0)
            .resistor("vin", "mid", 1000.0)
            .resistor("mid", "gnd", 1000.0);
        let mid = c.node("mid").unwrap();
        let sol = solve_dc(&c).unwrap();
        assert!((sol.voltages[mid] - 5.0).abs() < 1e-9);
        // A linear circuit is plain-Newton territory: first rung, done.
        assert_eq!(sol.stage, SolveStage::PlainNewton);
        assert_eq!(sol.attempts, 1);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut c = Circuit::new();
        c.isource("gnd", "out", 2e-3).resistor("out", "gnd", 1000.0);
        let out = c.node("out").unwrap();
        let sol = solve_dc(&c).unwrap();
        assert!((sol.voltages[out] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn inductor_is_dc_short() {
        let mut c = Circuit::new();
        c.vsource("vin", "gnd", 5.0)
            .inductor("vin", "out", 10e-9)
            .resistor("out", "gnd", 100.0);
        let out = c.node("out").unwrap();
        let sol = solve_dc(&c).unwrap();
        assert!((sol.voltages[out] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn capacitor_is_dc_open() {
        let mut c = Circuit::new();
        c.vsource("vin", "gnd", 5.0)
            .resistor("vin", "out", 1000.0)
            .capacitor("out", "gnd", 1e-9);
        let out = c.node("out").unwrap();
        let sol = solve_dc(&c).unwrap();
        // No DC path: the node floats to the source voltage through R.
        assert!((sol.voltages[out] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn fet_with_drain_resistor_biases_correctly() {
        // Vdd = 5 V through 33 Ω into the drain; gate driven at a fixed Vgs.
        let model = Angelov;
        let params = model.default_params();
        let vgs_set = -0.3;
        let mut c = Circuit::new();
        c.vsource("vdd", "gnd", 5.0)
            .vsource("vg", "gnd", vgs_set)
            .resistor("vdd", "drain", 33.0)
            .fet("vg", "drain", "gnd", Box::new(Angelov), params.clone());
        let drain = c.node("drain").unwrap();
        let sol = solve_dc(&c).unwrap();
        let vds = sol.voltages[drain];
        let ids = sol.fet_currents[0];
        // KVL: Vdd − Ids·RD = Vds, and Ids = model(vgs, vds).
        assert!((5.0 - ids * 33.0 - vds).abs() < 1e-6, "KVL violated");
        let expect = model.ids(&params, vgs_set, vds);
        assert!((ids - expect).abs() < 1e-9, "device equation violated");
        assert!(ids > 0.01 && ids < 0.2, "Ids = {ids}");
    }

    #[test]
    fn self_biased_fet_with_source_resistor() {
        // Classic self-bias: gate grounded through a resistor (no current →
        // Vg = 0), source resistor raises Vs, so Vgs = −Ids·Rs < 0.
        let mut c = Circuit::new();
        c.vsource("vdd", "gnd", 5.0)
            .resistor("vdd", "drain", 50.0)
            .resistor("g", "gnd", 10000.0)
            .resistor("s", "gnd", 10.0)
            .fet(
                "g",
                "drain",
                "s",
                Box::new(Angelov),
                Angelov.default_params(),
            );
        let g_id = c.node("g").unwrap();
        let s_id = c.node("s").unwrap();
        let sol = solve_dc(&c).unwrap();
        let ids = sol.fet_currents[0];
        assert!(sol.voltages[g_id].abs() < 1e-6, "no gate current");
        assert!((sol.voltages[s_id] - ids * 10.0).abs() < 1e-8);
        assert!(ids > 1e-3, "device conducts: Ids = {ids}");
    }

    #[test]
    fn matches_phemt_bias_helper() {
        // The netlist solve and the analytic bias helper must agree on Vgs
        // for a given drain current.
        let d = Phemt::atf54143_like();
        let target = 0.040;
        let vgs = d.bias_for_current(3.0, target).unwrap();
        let mut c = Circuit::new();
        c.vsource("vd", "gnd", 3.0).vsource("vg", "gnd", vgs).fet(
            "vg",
            "vd",
            "gnd",
            Box::new(Angelov),
            d.dc_params.clone(),
        );
        let sol = solve_dc(&c).unwrap();
        assert!((sol.fet_currents[0] - target).abs() < 1e-6);
    }

    #[test]
    fn empty_circuit_solves_trivially() {
        let c = Circuit::new();
        let sol = solve_dc(&c).unwrap();
        assert!(sol.voltages.is_empty());
        assert_eq!(sol.iterations, 0);
    }

    #[test]
    fn source_loop_is_singular() {
        // Two parallel voltage sources with different EMFs: no solution.
        let mut c = Circuit::new();
        c.vsource("a", "gnd", 1.0).vsource("a", "gnd", 2.0);
        assert!(matches!(solve_dc(&c), Err(DcError::Singular)));
        // The structured error shows the whole ladder was exhausted: the
        // source loop is inconsistent at every gmin and source scale.
        let err = solve_dc_robust(&c, &RetryPolicy::default()).unwrap_err();
        assert_eq!(err.stage(), SolveStage::SourceStepping);
        assert!(matches!(err, SolveError::SingularSystem { .. }));
        assert!(err.iterations() >= 4, "every rung touched the system");
    }

    #[test]
    fn restricted_ladder_still_solves_easy_circuits() {
        let mut c = Circuit::new();
        c.vsource("vin", "gnd", 10.0)
            .resistor("vin", "mid", 1000.0)
            .resistor("mid", "gnd", 1000.0);
        let sol = solve_dc_robust(&c, &RetryPolicy::first_stages(1)).unwrap();
        let mid = c.node("mid").unwrap();
        assert!((sol.voltages[mid] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn robust_and_legacy_agree_on_a_bias_network() {
        let mut c = Circuit::new();
        c.vsource("vdd", "gnd", 5.0)
            .resistor("vdd", "drain", 50.0)
            .resistor("g", "gnd", 10000.0)
            .resistor("s", "gnd", 10.0)
            .fet(
                "g",
                "drain",
                "s",
                Box::new(Angelov),
                Angelov.default_params(),
            );
        let a = solve_dc(&c).unwrap();
        let b = solve_dc_robust(&c, &RetryPolicy::default()).unwrap();
        // `solve_dc` is a thin wrapper: bit-identical, not just close.
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_total_budget_reports_exhaustion() {
        // A FET bias network needs a handful of Newton iterations; a
        // 2-iteration global ceiling must trip BudgetExhausted (with
        // provenance), not mislabel it as plain non-convergence.
        let mut c = Circuit::new();
        c.vsource("vdd", "gnd", 5.0)
            .resistor("vdd", "drain", 50.0)
            .resistor("g", "gnd", 10000.0)
            .resistor("s", "gnd", 10.0)
            .fet(
                "g",
                "drain",
                "s",
                Box::new(Angelov),
                Angelov.default_params(),
            );
        let policy = RetryPolicy {
            max_total_iters: 2,
            ..Default::default()
        };
        let err = solve_dc_robust(&c, &policy).unwrap_err();
        match err {
            SolveError::BudgetExhausted {
                stage,
                iterations,
                residual,
            } => {
                assert_eq!(stage, SolveStage::PlainNewton);
                assert_eq!(iterations, 2);
                assert!(residual.is_finite() && residual > 0.0);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }
}
