//! DC operating-point analysis by Newton–Raphson on the MNA equations.
//!
//! Unknowns are the node voltages plus one branch current per voltage
//! source and per inductor (inductors are DC shorts). The nonlinear FET is
//! handled with the usual companion model: at each iteration it is replaced
//! by `gm`, `gds` conductances plus an equivalent current source, which is
//! exactly a Newton step on the nodal equations.

use crate::netlist::{Circuit, Element};
use rfkit_device::dc::{gds as fet_gds, gm as fet_gm};
use rfkit_num::RMatrix;
use std::collections::BTreeMap;

// Solver telemetry (runtime-gated, write-only; see rfkit-obs).
static OBS_DC_SOLVES: rfkit_obs::Counter = rfkit_obs::Counter::new("circuit.dc.solves");
static OBS_DC_ITERS: rfkit_obs::Hist = rfkit_obs::Hist::new("circuit.dc.iters");

/// Result of a DC solve.
#[derive(Debug, Clone, PartialEq)]
pub struct DcSolution {
    /// Node voltages indexed by [`crate::netlist::NodeId`].
    pub voltages: Vec<f64>,
    /// Drain current of each FET, in element order.
    pub fet_currents: Vec<f64>,
    /// Newton iterations used.
    pub iterations: usize,
}

impl DcSolution {
    /// Voltage of a node id (0 V for ground/`None`).
    pub fn voltage(&self, node: Option<usize>) -> f64 {
        node.map_or(0.0, |n| self.voltages[n])
    }
}

/// Error from the DC solver.
#[derive(Debug, Clone, PartialEq)]
pub enum DcError {
    /// Newton iteration failed to converge.
    NoConvergence {
        /// Residual norm at the last iterate.
        residual: f64,
    },
    /// The MNA matrix is singular (floating node or short loop).
    Singular,
}

impl std::fmt::Display for DcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DcError::NoConvergence { residual } => {
                write!(
                    f,
                    "newton iteration did not converge (residual {residual:.3e})"
                )
            }
            DcError::Singular => write!(f, "singular MNA matrix (floating node or source loop)"),
        }
    }
}

impl std::error::Error for DcError {}

/// Solves the DC operating point of `circuit`.
///
/// # Errors
///
/// Returns [`DcError::Singular`] for ill-formed topologies and
/// [`DcError::NoConvergence`] when Newton fails within 200 iterations.
pub fn solve_dc(circuit: &Circuit) -> Result<DcSolution, DcError> {
    let n = circuit.n_nodes();
    // Assign extra unknowns (branch currents) to V sources and inductors.
    // Keyed by element index in a sorted map so any future traversal is
    // element-ordered; MNA stamping must never depend on a hasher seed.
    let mut branch_of: BTreeMap<usize, usize> = BTreeMap::new();
    let mut n_branches = 0;
    for (k, e) in circuit.elements.iter().enumerate() {
        if matches!(e, Element::VSource { .. } | Element::Inductor { .. }) {
            branch_of.insert(k, n + n_branches);
            n_branches += 1;
        }
    }
    let dim = n + n_branches;
    if dim == 0 {
        return Ok(DcSolution {
            voltages: Vec::new(),
            fet_currents: Vec::new(),
            iterations: 0,
        });
    }

    let mut x = vec![0.0; dim];
    // Damped Newton iteration.
    for iteration in 1..=200 {
        let (jac, residual) = assemble(circuit, &x, n, &branch_of, dim);
        let norm: f64 = residual.iter().map(|r| r * r).sum::<f64>().sqrt();
        if norm < 1e-12 {
            return Ok(finish(circuit, x, iteration));
        }
        let rhs: Vec<f64> = residual.iter().map(|r| -r).collect();
        let delta = jac.solve(&rhs).map_err(|_| DcError::Singular)?;
        let max_step = delta.iter().fold(0.0f64, |m, d| m.max(d.abs()));
        if max_step < 1e-14 {
            return Ok(finish(circuit, x, iteration));
        }
        // Backtracking line search: take the full Newton step when it
        // reduces the residual (always, for linear circuits); halve it
        // otherwise so the FET equations cannot overshoot.
        let mut damp = 1.0;
        for _ in 0..30 {
            let trial: Vec<f64> = x
                .iter()
                .zip(&delta)
                .map(|(xi, di)| xi + damp * di)
                .collect();
            let (_, r_trial) = assemble(circuit, &trial, n, &branch_of, dim);
            let norm_trial: f64 = r_trial.iter().map(|r| r * r).sum::<f64>().sqrt();
            if norm_trial < norm || damp < 1e-6 {
                x = trial;
                break;
            }
            damp *= 0.5;
        }
    }
    let (_, residual) = assemble(circuit, &x, n, &branch_of, dim);
    let norm: f64 = residual.iter().map(|r| r * r).sum::<f64>().sqrt();
    if norm < 1e-6 {
        return Ok(finish(circuit, x, 200));
    }
    rfkit_obs::event("circuit.dc.no_convergence", &[("residual", norm)]);
    Err(DcError::NoConvergence { residual: norm })
}

/// Builds the Jacobian and residual of the MNA system at iterate `x`.
fn assemble(
    circuit: &Circuit,
    x: &[f64],
    n: usize,
    branch_of: &BTreeMap<usize, usize>,
    dim: usize,
) -> (RMatrix, Vec<f64>) {
    let v = |node: Option<usize>| -> f64 { node.map_or(0.0, |k| x[k]) };
    let mut jac = RMatrix::zeros(dim, dim);
    let mut res = vec![0.0; dim];
    let stamp_j = |row: Option<usize>, col: Option<usize>, val: f64, jac: &mut RMatrix| {
        if let (Some(r), Some(c)) = (row, col) {
            jac[(r, c)] += val;
        }
    };
    let add_res = |row: Option<usize>, val: f64, res: &mut Vec<f64>| {
        if let Some(r) = row {
            res[r] += val;
        }
    };

    for (k, e) in circuit.elements.iter().enumerate() {
        match e {
            Element::Resistor { a, b, ohms } => {
                let g = 1.0 / ohms;
                let i = g * (v(*a) - v(*b));
                add_res(*a, i, &mut res);
                add_res(*b, -i, &mut res);
                stamp_j(*a, *a, g, &mut jac);
                stamp_j(*b, *b, g, &mut jac);
                stamp_j(*a, *b, -g, &mut jac);
                stamp_j(*b, *a, -g, &mut jac);
            }
            Element::Capacitor { .. } => {
                // Open at DC.
            }
            Element::Inductor { a, b, .. } => {
                // DC short: v(a) − v(b) = 0, current is an unknown.
                let br = branch_of[&k];
                let i_l = x[br];
                add_res(*a, i_l, &mut res);
                add_res(*b, -i_l, &mut res);
                stamp_j(*a, Some(br), 1.0, &mut jac);
                stamp_j(*b, Some(br), -1.0, &mut jac);
                res[br] += v(*a) - v(*b);
                stamp_j(Some(br), *a, 1.0, &mut jac);
                stamp_j(Some(br), *b, -1.0, &mut jac);
            }
            Element::VSource { plus, minus, volts } => {
                let br = branch_of[&k];
                let i_v = x[br];
                add_res(*plus, i_v, &mut res);
                add_res(*minus, -i_v, &mut res);
                stamp_j(*plus, Some(br), 1.0, &mut jac);
                stamp_j(*minus, Some(br), -1.0, &mut jac);
                res[br] += v(*plus) - v(*minus) - volts;
                stamp_j(Some(br), *plus, 1.0, &mut jac);
                stamp_j(Some(br), *minus, -1.0, &mut jac);
            }
            Element::ISource { from, to, amps } => {
                add_res(*from, *amps, &mut res);
                add_res(*to, -*amps, &mut res);
            }
            Element::Fet {
                gate,
                drain,
                source,
                model,
                params,
            } => {
                let vgs = v(*gate) - v(*source);
                let vds = v(*drain) - v(*source);
                let ids = model.ids(params, vgs, vds.max(0.0));
                let g_m = fet_gm(model.as_ref(), params, vgs, vds.max(0.0));
                let g_ds = fet_gds(model.as_ref(), params, vgs, vds.max(0.0));
                // Drain current flows drain → source.
                add_res(*drain, ids, &mut res);
                add_res(*source, -ids, &mut res);
                // ∂Ids/∂Vg = gm, ∂Ids/∂Vd = gds, ∂Ids/∂Vs = −(gm + gds).
                stamp_j(*drain, *gate, g_m, &mut jac);
                stamp_j(*drain, *drain, g_ds, &mut jac);
                stamp_j(*drain, *source, -(g_m + g_ds), &mut jac);
                stamp_j(*source, *gate, -g_m, &mut jac);
                stamp_j(*source, *drain, -g_ds, &mut jac);
                stamp_j(*source, *source, g_m + g_ds, &mut jac);
            }
        }
    }
    // A tiny conductance from every node to ground keeps purely capacitive
    // nodes from floating at DC (small enough not to disturb mA-level
    // solutions beyond double precision).
    for k in 0..n {
        jac[(k, k)] += 1e-15;
        res[k] += 1e-15 * x[k];
    }
    (jac, res)
}

fn finish(circuit: &Circuit, x: Vec<f64>, iterations: usize) -> DcSolution {
    if rfkit_obs::enabled() {
        OBS_DC_SOLVES.add(1);
        OBS_DC_ITERS.record(iterations as u64);
    }
    let v = |node: Option<usize>| -> f64 { node.map_or(0.0, |k| x[k]) };
    let fet_currents = circuit
        .elements
        .iter()
        .filter_map(|e| match e {
            Element::Fet {
                gate,
                drain,
                source,
                model,
                params,
            } => Some(model.ids(
                params,
                v(*gate) - v(*source),
                (v(*drain) - v(*source)).max(0.0),
            )),
            _ => None,
        })
        .collect();
    DcSolution {
        voltages: x[..circuit.n_nodes()].to_vec(),
        fet_currents,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfkit_device::dc::{Angelov, DcModel};
    use rfkit_device::Phemt;

    #[test]
    fn voltage_divider() {
        let mut c = Circuit::new();
        c.vsource("vin", "gnd", 10.0)
            .resistor("vin", "mid", 1000.0)
            .resistor("mid", "gnd", 1000.0);
        let mid = c.node("mid").unwrap();
        let sol = solve_dc(&c).unwrap();
        assert!((sol.voltages[mid] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut c = Circuit::new();
        c.isource("gnd", "out", 2e-3).resistor("out", "gnd", 1000.0);
        let out = c.node("out").unwrap();
        let sol = solve_dc(&c).unwrap();
        assert!((sol.voltages[out] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn inductor_is_dc_short() {
        let mut c = Circuit::new();
        c.vsource("vin", "gnd", 5.0)
            .inductor("vin", "out", 10e-9)
            .resistor("out", "gnd", 100.0);
        let out = c.node("out").unwrap();
        let sol = solve_dc(&c).unwrap();
        assert!((sol.voltages[out] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn capacitor_is_dc_open() {
        let mut c = Circuit::new();
        c.vsource("vin", "gnd", 5.0)
            .resistor("vin", "out", 1000.0)
            .capacitor("out", "gnd", 1e-9);
        let out = c.node("out").unwrap();
        let sol = solve_dc(&c).unwrap();
        // No DC path: the node floats to the source voltage through R.
        assert!((sol.voltages[out] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn fet_with_drain_resistor_biases_correctly() {
        // Vdd = 5 V through 33 Ω into the drain; gate driven at a fixed Vgs.
        let model = Angelov;
        let params = model.default_params();
        let vgs_set = -0.3;
        let mut c = Circuit::new();
        c.vsource("vdd", "gnd", 5.0)
            .vsource("vg", "gnd", vgs_set)
            .resistor("vdd", "drain", 33.0)
            .fet("vg", "drain", "gnd", Box::new(Angelov), params.clone());
        let drain = c.node("drain").unwrap();
        let sol = solve_dc(&c).unwrap();
        let vds = sol.voltages[drain];
        let ids = sol.fet_currents[0];
        // KVL: Vdd − Ids·RD = Vds, and Ids = model(vgs, vds).
        assert!((5.0 - ids * 33.0 - vds).abs() < 1e-6, "KVL violated");
        let expect = model.ids(&params, vgs_set, vds);
        assert!((ids - expect).abs() < 1e-9, "device equation violated");
        assert!(ids > 0.01 && ids < 0.2, "Ids = {ids}");
    }

    #[test]
    fn self_biased_fet_with_source_resistor() {
        // Classic self-bias: gate grounded through a resistor (no current →
        // Vg = 0), source resistor raises Vs, so Vgs = −Ids·Rs < 0.
        let mut c = Circuit::new();
        c.vsource("vdd", "gnd", 5.0)
            .resistor("vdd", "drain", 50.0)
            .resistor("g", "gnd", 10000.0)
            .resistor("s", "gnd", 10.0)
            .fet(
                "g",
                "drain",
                "s",
                Box::new(Angelov),
                Angelov.default_params(),
            );
        let g_id = c.node("g").unwrap();
        let s_id = c.node("s").unwrap();
        let sol = solve_dc(&c).unwrap();
        let ids = sol.fet_currents[0];
        assert!(sol.voltages[g_id].abs() < 1e-6, "no gate current");
        assert!((sol.voltages[s_id] - ids * 10.0).abs() < 1e-8);
        assert!(ids > 1e-3, "device conducts: Ids = {ids}");
    }

    #[test]
    fn matches_phemt_bias_helper() {
        // The netlist solve and the analytic bias helper must agree on Vgs
        // for a given drain current.
        let d = Phemt::atf54143_like();
        let target = 0.040;
        let vgs = d.bias_for_current(3.0, target).unwrap();
        let mut c = Circuit::new();
        c.vsource("vd", "gnd", 3.0).vsource("vg", "gnd", vgs).fet(
            "vg",
            "vd",
            "gnd",
            Box::new(Angelov),
            d.dc_params.clone(),
        );
        let sol = solve_dc(&c).unwrap();
        assert!((sol.fet_currents[0] - target).abs() < 1e-6);
    }

    #[test]
    fn empty_circuit_solves_trivially() {
        let c = Circuit::new();
        let sol = solve_dc(&c).unwrap();
        assert!(sol.voltages.is_empty());
    }

    #[test]
    fn source_loop_is_singular() {
        // Two parallel voltage sources with different EMFs: no solution.
        let mut c = Circuit::new();
        c.vsource("a", "gnd", 1.0).vsource("a", "gnd", 2.0);
        assert!(matches!(solve_dc(&c), Err(DcError::Singular)));
    }
}
