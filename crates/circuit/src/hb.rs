//! Single-tone harmonic balance for the loaded pHEMT stage.
//!
//! The time-domain paths in [`crate::twotone`] hold `V_ds` fixed — valid
//! at small signal where the load swing is negligible. At large signal the
//! drain voltage swings along the load line, the waveform clips against
//! the knee and pinch-off, and compression/harmonics depend on the
//! *embedding network*. That is the regime harmonic balance handles: the
//! drain-node voltage is represented by its Fourier coefficients, the
//! nonlinear current is evaluated in the time domain, and Newton iteration
//! enforces KCL at every harmonic simultaneously.
//!
//! Scope: one nonlinear element (the drain current source `I_d(v_gs,
//! v_ds)`), a sinusoidal gate drive, a DC feed resistance and an arbitrary
//! per-harmonic complex load `Z_L(k·f0)`. That covers the classic loaded
//! single-stage analyses: compression, harmonic distortion, bias shift.

use rfkit_device::{OperatingPoint, Phemt};
use rfkit_num::fft::fft;
use rfkit_num::units::dbm_from_watts;
use rfkit_num::{CMatrix, Complex};

// Per-solve timing (runtime-gated, write-only; see rfkit-obs).
static OBS_HB_SOLVE_US: rfkit_obs::Hist = rfkit_obs::Hist::new("circuit.hb.solve_us");

/// The harmonic-balance testbench.
pub struct HbTestbench<'a> {
    /// The device under test.
    pub device: &'a Phemt,
    /// Quiescent operating point (sets bias and the gate drive center).
    pub op: OperatingPoint,
    /// Supply voltage at the top of the DC feed (V); choose
    /// `vdd = vds + ids·r_dc_feed` to reproduce the quiescent point.
    pub vdd: f64,
    /// DC feed resistance from the supply to the drain (Ω).
    pub r_dc_feed: f64,
    /// Complex AC load at each harmonic `k ≥ 1` of the fundamental.
    pub load: Box<dyn Fn(usize) -> Complex + 'a>,
}

/// Configuration of the solve.
#[derive(Debug, Clone, PartialEq)]
pub struct HbConfig {
    /// Number of harmonics kept (excluding DC); time grid is
    /// `4 × next_power_of_two(harmonics + 1)` samples.
    pub harmonics: usize,
    /// Newton tolerance on the KCL residual (A).
    pub tol: f64,
    /// Maximum Newton iterations.
    pub max_iter: usize,
}

impl Default for HbConfig {
    fn default() -> Self {
        HbConfig {
            harmonics: 7,
            tol: 1e-9,
            max_iter: 60,
        }
    }
}

/// Result of a harmonic-balance solve.
#[derive(Debug, Clone, PartialEq)]
pub struct HbSolution {
    /// Drain-source voltage Fourier coefficients `V[k]`, `k = 0..=H`
    /// (peak-amplitude convention for `k ≥ 1`).
    pub v_ds: Vec<Complex>,
    /// Drain-current Fourier coefficients `I[k]` with the same convention.
    pub i_d: Vec<Complex>,
    /// Final KCL residual norm (A).
    pub residual: f64,
    /// Newton iterations used.
    pub iterations: usize,
}

impl HbSolution {
    /// Power delivered to the load at harmonic `k ≥ 1`, in dBm.
    ///
    /// # Panics
    ///
    /// Panics for `k == 0` or `k` beyond the solved harmonics.
    pub fn harmonic_power_dbm(&self, k: usize, load: Complex) -> f64 {
        assert!(k >= 1 && k < self.i_d.len(), "harmonic {k} out of range");
        // P = ½·|I_k|²·Re(Z_L).
        dbm_from_watts(0.5 * self.i_d[k].norm_sqr() * load.re.max(0.0))
    }

    /// The DC component of the drain current (A) — shifts under drive
    /// (self-biasing), a distinctive large-signal effect.
    pub fn dc_current(&self) -> f64 {
        self.i_d[0].re
    }
}

/// Error from the harmonic-balance solver.
#[derive(Debug, Clone, PartialEq)]
pub enum HbError {
    /// Newton failed to reach the tolerance.
    NoConvergence {
        /// Residual at the last iterate.
        residual: f64,
    },
    /// The Jacobian became singular.
    Singular,
}

impl std::fmt::Display for HbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HbError::NoConvergence { residual } => {
                write!(
                    f,
                    "harmonic balance did not converge (residual {residual:.3e} A)"
                )
            }
            HbError::Singular => write!(f, "singular harmonic-balance Jacobian"),
        }
    }
}

impl std::error::Error for HbError {}

/// Solves the testbench at gate-drive amplitude `a_gate` volts (peak).
///
/// Hard-clipping cases are handled by source stepping: when the direct
/// Newton solve stalls, the amplitude is ramped in stages and each stage
/// warm-starts the next.
///
/// # Errors
///
/// See [`HbError`].
pub fn solve(
    bench: &HbTestbench<'_>,
    a_gate: f64,
    config: &HbConfig,
) -> Result<HbSolution, HbError> {
    let watch = rfkit_obs::stopwatch();
    let result = solve_inner(bench, a_gate, config);
    if let Some(us) = watch.elapsed_us() {
        OBS_HB_SOLVE_US.record(us);
    }
    result
}

fn solve_inner(
    bench: &HbTestbench<'_>,
    a_gate: f64,
    config: &HbConfig,
) -> Result<HbSolution, HbError> {
    let h = config.harmonics.max(1);
    let dim = 1 + 2 * h;
    let mut x0 = vec![0.0; dim];
    x0[0] = bench.op.vds;
    match solve_from(bench, a_gate, config, x0.clone()) {
        Ok(sol) => Ok(sol),
        Err(_) => {
            // Continuation: ramp the drive, warm-starting each stage.
            let mut x = x0;
            let stages = 8;
            let mut last = Err(HbError::NoConvergence { residual: f64::NAN });
            for s in 1..=stages {
                let a = a_gate * s as f64 / stages as f64;
                match solve_from(bench, a, config, x.clone()) {
                    Ok(sol) => {
                        x = pack(&sol);
                        last = Ok(sol);
                    }
                    Err(e) => return Err(e),
                }
            }
            last
        }
    }
}

/// Packs a solution back into the real unknown vector (warm start).
fn pack(sol: &HbSolution) -> Vec<f64> {
    let h = sol.v_ds.len() - 1;
    let mut x = vec![0.0; 1 + 2 * h];
    x[0] = sol.v_ds[0].re;
    for k in 1..=h {
        x[2 * k - 1] = sol.v_ds[k].re;
        x[2 * k] = sol.v_ds[k].im;
    }
    x
}

fn solve_from(
    bench: &HbTestbench<'_>,
    a_gate: f64,
    config: &HbConfig,
    mut x: Vec<f64>,
) -> Result<HbSolution, HbError> {
    let h = config.harmonics.max(1);
    let n_time = (4 * (h + 1)).next_power_of_two();
    let model = bench.device.dc_model.as_ref();
    let dim = 1 + 2 * h;

    // Precompute the gate waveform.
    let vgs: Vec<f64> = (0..n_time)
        .map(|t| {
            let phase = 2.0 * std::f64::consts::PI * t as f64 / n_time as f64;
            bench.op.vgs + a_gate * phase.cos()
        })
        .collect();

    // KCL residual per harmonic:
    //   k = 0: (V0 − Vdd)/R_feed + I0 = 0
    //   k ≥ 1: V_k/Z_L(k) + I_k = 0
    let residual_of = |x: &[f64]| -> Vec<f64> {
        let i = device_harmonics(model, &bench.device.dc_params, &vgs, x, h, n_time);
        let mut r = vec![0.0; dim];
        r[0] = (x[0] - bench.vdd) / bench.r_dc_feed + i[0].re;
        for k in 1..=h {
            let v_k = Complex::new(x[2 * k - 1], x[2 * k]);
            let y_l = (bench.load)(k).recip();
            let kcl = v_k * y_l + i[k];
            r[2 * k - 1] = kcl.re;
            r[2 * k] = kcl.im;
        }
        r
    };

    let norm = |r: &[f64]| r.iter().map(|v| v * v).sum::<f64>().sqrt();
    let mut r = residual_of(&x);
    let mut iterations = 0;
    while norm(&r) > config.tol && iterations < config.max_iter {
        iterations += 1;
        // Fault hook, keyed by iteration number so armed plans fire at the
        // same logical step regardless of thread count or call order.
        match rfkit_robust::faults::inject("hb.newton", iterations as u64) {
            Some(rfkit_robust::faults::FaultKind::SingularLu) => return Err(HbError::Singular),
            Some(_) => return Err(HbError::NoConvergence { residual: f64::NAN }),
            None => {}
        }
        // Numeric Jacobian (dim is small: ~15 for 7 harmonics).
        let mut jac = CMatrix::zeros(dim, dim);
        for j in 0..dim {
            let step = 1e-6 * x[j].abs().max(1e-3);
            let mut xp = x.clone();
            xp[j] += step;
            let rp = residual_of(&xp);
            for i in 0..dim {
                jac[(i, j)] = Complex::real((rp[i] - r[i]) / step);
            }
        }
        let rhs: Vec<Complex> = r.iter().map(|&v| Complex::real(-v)).collect();
        let delta = jac.solve(&rhs).map_err(|_| HbError::Singular)?;
        // Damped update keeps the knee clipping from overshooting.
        let max_step = delta.iter().map(|d| d.re.abs()).fold(0.0f64, f64::max);
        let damp = if max_step > 1.0 { 1.0 / max_step } else { 1.0 };
        for (xi, d) in x.iter_mut().zip(&delta) {
            *xi += damp * d.re;
        }
        r = residual_of(&x);
    }
    let res = norm(&r);
    if res > config.tol.max(1e-6) {
        return Err(HbError::NoConvergence { residual: res });
    }

    let i = device_harmonics(model, &bench.device.dc_params, &vgs, &x, h, n_time);
    let mut v_ds = vec![Complex::ZERO; h + 1];
    v_ds[0] = Complex::real(x[0]);
    for k in 1..=h {
        v_ds[k] = Complex::new(x[2 * k - 1], x[2 * k]);
    }
    Ok(HbSolution {
        v_ds,
        i_d: i,
        residual: res,
        iterations,
    })
}

/// Evaluates the device current harmonics for the drain-voltage spectrum
/// packed in `x` (peak-amplitude convention).
fn device_harmonics(
    model: &dyn rfkit_device::DcModel,
    params: &[f64],
    vgs: &[f64],
    x: &[f64],
    h: usize,
    n_time: usize,
) -> Vec<Complex> {
    // Synthesize vds(t).
    let mut vds = vec![x[0]; n_time];
    for k in 1..=h {
        let v_k = Complex::new(x[2 * k - 1], x[2 * k]);
        for (t, v) in vds.iter_mut().enumerate() {
            let phase = 2.0 * std::f64::consts::PI * (k * t % n_time) as f64 / n_time as f64;
            *v += v_k.re * phase.cos() - v_k.im * phase.sin();
        }
    }
    // Nonlinearity in the time domain.
    let mut current: Vec<Complex> = vgs
        .iter()
        .zip(&vds)
        .map(|(&g, &d)| Complex::real(model.ids(params, g, d.max(0.0))))
        .collect();
    // Back to the frequency domain (peak convention: X_k = 2·FFT_k/N).
    fft(&mut current);
    let mut out = Vec::with_capacity(h + 1);
    out.push(current[0].scale(1.0 / n_time as f64));
    for harmonic in current.iter().take(h + 1).skip(1) {
        out.push(harmonic.scale(2.0 / n_time as f64));
    }
    out
}

/// Gain-compression sweep: returns `(a_gate, fundamental output dBm)` rows
/// and the input-referred 1 dB compression amplitude when reached.
pub fn compression_sweep(
    bench: &HbTestbench<'_>,
    amplitudes: &[f64],
    config: &HbConfig,
) -> (Vec<(f64, f64)>, Option<f64>) {
    let mut rows = Vec::new();
    let mut small_signal_gain: Option<f64> = None;
    let mut p1db = None;
    for &a in amplitudes {
        let Ok(sol) = solve(bench, a, config) else {
            continue;
        };
        let p_fund = sol.harmonic_power_dbm(1, (bench.load)(1));
        let gain = p_fund - dbm_from_watts(a * a / (8.0 * 50.0));
        rows.push((a, p_fund));
        match small_signal_gain {
            None => small_signal_gain = Some(gain),
            Some(g0) => {
                if p1db.is_none() && gain < g0 - 1.0 {
                    p1db = Some(a);
                }
            }
        }
    }
    (rows, p1db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfkit_num::units::watts_from_dbm;

    fn bench_with_load(device: &Phemt, r_load: f64) -> HbTestbench<'_> {
        let op = device.operating_point(device.bias_for_current(3.0, 0.06).unwrap(), 3.0);
        HbTestbench {
            device,
            op,
            vdd: op.vds + op.ids * 20.0,
            r_dc_feed: 20.0,
            load: Box::new(move |_k| Complex::real(r_load)),
        }
    }

    #[test]
    fn zero_drive_reproduces_quiescent_point() {
        let device = Phemt::atf54143_like();
        let bench = bench_with_load(&device, 50.0);
        let sol = solve(&bench, 0.0, &HbConfig::default()).unwrap();
        assert!(
            (sol.v_ds[0].re - bench.op.vds).abs() < 1e-6,
            "V0 = {}",
            sol.v_ds[0].re
        );
        assert!((sol.dc_current() - bench.op.ids).abs() < 1e-6);
        for k in 1..sol.v_ds.len() {
            assert!(sol.v_ds[k].abs() < 1e-9, "harmonic {k} must vanish");
        }
    }

    #[test]
    fn small_signal_matches_linear_theory() {
        // At tiny drive: I1 ≈ gm·A / (1 + gds·R_L-ish)… exactly:
        // i1 = gm·a + gds·v1, v1 = −Z_L·i1 → i1 = gm·a/(1 + gds·Z_L).
        let device = Phemt::atf54143_like();
        let r_load = 50.0;
        let bench = bench_with_load(&device, r_load);
        let a = 1e-3;
        let sol = solve(&bench, a, &HbConfig::default()).unwrap();
        let expect = bench.op.gm * a / (1.0 + bench.op.gds * r_load);
        assert!(
            (sol.i_d[1].abs() - expect).abs() / expect < 1e-3,
            "I1 = {} vs {}",
            sol.i_d[1].abs(),
            expect
        );
        // Load line: V1 = −Z_L·I1.
        let v_expected = -Complex::real(r_load) * sol.i_d[1];
        assert!((sol.v_ds[1] - v_expected).abs() < 1e-9);
    }

    #[test]
    fn harmonics_grow_with_drive() {
        let device = Phemt::atf54143_like();
        let bench = bench_with_load(&device, 50.0);
        let cfg = HbConfig::default();
        let small = solve(&bench, 0.02, &cfg).unwrap();
        let large = solve(&bench, 0.30, &cfg).unwrap();
        let hd2 = |s: &HbSolution| s.i_d[2].abs() / s.i_d[1].abs();
        let hd3 = |s: &HbSolution| s.i_d[3].abs() / s.i_d[1].abs();
        assert!(hd2(&large) > 5.0 * hd2(&small), "HD2 must grow with drive");
        assert!(hd3(&large) > 5.0 * hd3(&small), "HD3 must grow with drive");
        assert!(hd2(&large) < 1.0, "still an amplifier, not a multiplier");
    }

    #[test]
    fn dc_current_shifts_under_large_drive() {
        // Even-order nonlinearity rectifies: the DC drain current moves
        // when driven hard — invisible to the fixed-Vds analysis.
        let device = Phemt::atf54143_like();
        let bench = bench_with_load(&device, 50.0);
        let cfg = HbConfig::default();
        let quiescent = bench.op.ids;
        let driven = solve(&bench, 0.35, &cfg).unwrap();
        assert!(
            (driven.dc_current() - quiescent).abs() > 1e-3,
            "self-bias shift: {} vs {}",
            driven.dc_current(),
            quiescent
        );
    }

    #[test]
    fn loaded_stage_compresses() {
        let device = Phemt::atf54143_like();
        let bench = bench_with_load(&device, 100.0);
        let amplitudes: Vec<f64> = (1..25).map(|k| 0.02 * k as f64).collect();
        let (rows, p1db) = compression_sweep(&bench, &amplitudes, &HbConfig::default());
        assert!(rows.len() > 15, "most drive levels must converge");
        let a1db = p1db.expect("the stage must compress within ±0.5 V drive");
        assert!(a1db > 0.05 && a1db < 0.5, "A(1 dB) = {a1db} V");
        // Output power saturates: last step adds < 1 dB per amplitude step.
        let n = rows.len();
        let final_slope = rows[n - 1].1 - rows[n - 2].1;
        let early_slope = rows[2].1 - rows[1].1;
        assert!(
            final_slope < 0.6 * early_slope,
            "{final_slope} vs {early_slope}"
        );
    }

    #[test]
    fn heavier_load_compresses_more() {
        // A larger load resistance swings the drain harder per mA, so at
        // the same gate drive the knee clips deeper: embedding matters,
        // which is the whole point of harmonic balance.
        let device = Phemt::atf54143_like();
        let cfg = HbConfig::default();
        let compression_at = |r_load: f64, a: f64| {
            let bench = bench_with_load(&device, r_load);
            let small = solve(&bench, 1e-3, &cfg).unwrap();
            let large = solve(&bench, a, &cfg).unwrap();
            // Gain drop in dB relative to small signal (currents scale
            // linearly absent compression).
            20.0 * (small.i_d[1].abs() / 1e-3).log10() - 20.0 * (large.i_d[1].abs() / a).log10()
        };
        let light = compression_at(25.0, 0.3);
        let heavy = compression_at(150.0, 0.3);
        assert!(
            heavy > light + 0.2,
            "150 Ω load must compress more at equal drive: {heavy} vs {light} dB"
        );
    }

    #[test]
    fn harmonic_power_accounting() {
        let device = Phemt::atf54143_like();
        let bench = bench_with_load(&device, 50.0);
        let sol = solve(&bench, 0.1, &HbConfig::default()).unwrap();
        let p1 = sol.harmonic_power_dbm(1, Complex::real(50.0));
        // ½|I1|²·R in dBm must match the helper.
        let direct = dbm_from_watts(0.5 * sol.i_d[1].norm_sqr() * 50.0);
        assert!((p1 - direct).abs() < 1e-12);
        assert!(watts_from_dbm(p1) > 0.0);
    }

    #[test]
    fn reactive_harmonic_terminations_accepted() {
        // Short the harmonics (class-ish operation): loads may differ per k.
        let device = Phemt::atf54143_like();
        let op = device.operating_point(device.bias_for_current(3.0, 0.06).unwrap(), 3.0);
        let bench = HbTestbench {
            device: &device,
            op,
            vdd: op.vds + op.ids * 20.0,
            r_dc_feed: 20.0,
            load: Box::new(|k| {
                if k == 1 {
                    Complex::real(50.0)
                } else {
                    Complex::new(0.5, 2.0) // near-short above the fundamental
                }
            }),
        };
        let sol = solve(&bench, 0.25, &HbConfig::default()).unwrap();
        // Harmonic voltages are suppressed by the short even though the
        // harmonic currents are not.
        assert!(sol.v_ds[2].abs() < 0.1 * sol.v_ds[1].abs());
    }
}
