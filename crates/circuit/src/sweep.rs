//! Batched, structure-aware AC sweep engine.
//!
//! [`StampPlan`](crate::StampPlan) solves one frequency point per call;
//! every caller in the suite (band verification, yield Monte-Carlo,
//! benchmark sweeps) actually wants a whole *grid*. This module adds the
//! grid-level entry point [`StampPlan::sweep_batch`] plus the two pieces
//! of machinery that make it fast:
//!
//! * **Structure classification.** At compile time the plan's internal
//!   (non-port) block is classified from its stamp adjacency. Ladder
//!   networks reorder (reverse Cuthill–McKee) to a narrow band and take a
//!   banded-LU kernel; multi-stage networks with a few high-degree hub
//!   nodes (shared bias rails, splitter junctions) peel the hubs into a
//!   bordered block and take a banded-plus-Schur kernel; everything else
//!   stays dense. The per-point factorization cost drops from `O(n³)` to
//!   `O(n·b²)` on the structured paths.
//! * **Pivot reuse.** On the dense path the MNA matrix changes smoothly
//!   along the grid, so the pivot sequence chosen at one point is reused
//!   at the next via
//!   [`LuWorkspace::try_refactor_with_current_perm`](rfkit_num::LuWorkspace::try_refactor_with_current_perm)
//!   — no pivot search, no row swaps — with a growth guard that forces a
//!   full refactorization only when the reused order turns unstable.
//!
//! Results are stored in split re/im (SoA) buffers
//! ([`rfkit_num::soa::SoaComplex`]).
//!
//! ## Equivalence contract
//!
//! The per-point plan path stays bit-identical to the legacy path (see
//! [`plan`](crate::plan)). `sweep_batch` trades that for speed under a
//! **documented tolerance contract**: every S-matrix entry it produces
//! agrees with the legacy per-point result to within `1e-8` absolute
//! error (see [`SWEEP_TOL`]), and `Err` outcomes (singular systems,
//! non-positive frequencies, injected faults) are point-for-point
//! identical. The banded/bordered kernels and the pivot-reuse dense path
//! all refuse numerically risky factorizations (growth guard) and fall
//! back to fully pivoted dense LU, so the bound holds on pathological
//! grids too — at dense-path cost. `tests/fastpath_equivalence.rs` pins
//! the contract with seeded random netlists.
//!
//! ## Plan sharing
//!
//! [`PlanCache`] memoizes compiled plans per netlist fingerprint behind
//! `Arc`, and [`shared_plan`] exposes a process-wide cache so band
//! sweeps, yield Monte-Carlo units and parallel workers all reuse one
//! immutable compiled plan per topology with zero re-stamping.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::ac::{AcError, AcStamps};
use crate::netlist::{Circuit, Element};
use crate::plan::{AcWorkspace, BStamp, StampPlan};
use rfkit_net::SParams;
use rfkit_num::soa::SoaComplex;
use rfkit_num::{CMatrix, Complex};

static OBS_SWEEP_POINTS: rfkit_obs::Counter = rfkit_obs::Counter::new("circuit.ac.sweep.points");
static OBS_SWEEP_REFACTORS: rfkit_obs::Counter =
    rfkit_obs::Counter::new("circuit.ac.sweep.refactors");
static OBS_PATH_DENSE: rfkit_obs::Counter = rfkit_obs::Counter::new("circuit.ac.sweep.path.dense");
static OBS_PATH_BANDED: rfkit_obs::Counter =
    rfkit_obs::Counter::new("circuit.ac.sweep.path.banded");
static OBS_PATH_BORDERED: rfkit_obs::Counter =
    rfkit_obs::Counter::new("circuit.ac.sweep.path.bordered");
static OBS_SWEEP_US: rfkit_obs::Hist = rfkit_obs::Hist::new("circuit.ac.sweep_us");
static OBS_PLAN_HIT: rfkit_obs::Counter = rfkit_obs::Counter::new("plan.cache.hit");
static OBS_PLAN_MISS: rfkit_obs::Counter = rfkit_obs::Counter::new("plan.cache.miss");

/// Absolute per-entry tolerance of the batched sweep against the legacy
/// per-point path. S-parameters are bounded by ~1 in magnitude for
/// passive networks and stay O(1) for the amplifier stamps the suite
/// uses, so an absolute bound is meaningful; the structured kernels'
/// growth guards keep element growth (and therefore backward error) far
/// inside this margin.
pub const SWEEP_TOL: f64 = 1e-8;

/// Minimum internal-block size before a structured path is worth the
/// bookkeeping; below this, dense LU on a cache-resident matrix wins.
const MIN_STRUCTURED: usize = 8;

/// Maximum number of hub rows the bordered path will peel off.
const MAX_BORDER: usize = 4;

/// Classifier-selected solve path for a plan's internal block. Orders are
/// permutations of internal *slots* (positions in `StampPlan::internal`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum SolvePath {
    /// Fully pivoted dense LU with cross-point pivot reuse.
    Dense,
    /// Banded LU over the RCM-permuted internal block.
    Banded {
        /// Permuted position → internal slot.
        order: Vec<usize>,
        /// Half-bandwidth under `order`.
        bw: usize,
    },
    /// Banded-plus-Schur: band rows first, then `k` peeled hub rows.
    Bordered {
        /// Permuted position → internal slot; last `k` entries are hubs.
        order: Vec<usize>,
        /// Band dimension (`order.len() - k`).
        nb: usize,
        /// Border rank.
        k: usize,
        /// Half-bandwidth of the band part.
        bw: usize,
    },
}

impl SolvePath {
    fn name(&self) -> &'static str {
        match self {
            SolvePath::Dense => "dense",
            SolvePath::Banded { .. } => "banded",
            SolvePath::Bordered { .. } => "bordered",
        }
    }
}

/// Compile-time structural classification of a plan's internal block:
/// the stamp adjacency graph plus the solve path chosen from it.
#[derive(Debug, Clone)]
pub(crate) struct PlanStructure {
    /// Sorted neighbor lists over internal slots (G pattern ∪ reactive
    /// stamps). Device stamps added at sweep time are checked against
    /// this and trigger reclassification when they add new coupling.
    adj: Vec<Vec<usize>>,
    pub(crate) path: SolvePath,
}

impl PlanStructure {
    pub(crate) fn path_name(&self) -> &'static str {
        self.path.name()
    }

    fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adj[a].binary_search(&b).is_ok()
    }
}

/// Classifies the internal block of a plan under compilation: builds the
/// adjacency of internal slots from the G pattern and the reactive stamp
/// list, then applies the decision rule (see [`choose_path`]).
pub(crate) fn classify(g: &CMatrix, b_stamps: &[BStamp], internal: &[usize]) -> PlanStructure {
    let n_nodes = g.rows();
    let mut slot_of = vec![None; n_nodes];
    for (s, &node) in internal.iter().enumerate() {
        slot_of[node] = Some(s);
    }
    let n_i = internal.len();
    let mut edges = std::collections::BTreeSet::new();
    for (i, &ni) in internal.iter().enumerate() {
        for (j, &nj) in internal.iter().enumerate().skip(i + 1) {
            if g[(ni, nj)] != Complex::ZERO || g[(nj, ni)] != Complex::ZERO {
                edges.insert((i, j));
            }
        }
    }
    for s in b_stamps {
        if let (Some(a), Some(b)) = (s.a, s.b) {
            if let (Some(sa), Some(sb)) = (
                slot_of.get(a).copied().flatten(),
                slot_of.get(b).copied().flatten(),
            ) {
                if sa != sb {
                    edges.insert((sa.min(sb), sa.max(sb)));
                }
            }
        }
    }
    let adj = adjacency_from_edges(n_i, &edges);
    let path = choose_path(&adj);
    PlanStructure { adj, path }
}

fn adjacency_from_edges(
    n: usize,
    edges: &std::collections::BTreeSet<(usize, usize)>,
) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a].push(b);
        adj[b].push(a);
    }
    for l in &mut adj {
        l.sort_unstable();
        l.dedup();
    }
    adj
}

/// The classifier decision rule (documented in DESIGN.md):
///
/// 1. `n < 8` → **dense** (structured bookkeeping costs more than it
///    saves on cache-resident matrices).
/// 2. RCM-order the graph; with half-bandwidth `b`, accept **banded**
///    when `2b + 1 ≤ n / 2` (the band stores at most half the dense
///    entries, so the `O(n·b²)` factorization is a clear win).
/// 3. Otherwise peel the `k ∈ 1..=4` highest-degree nodes (ties broken
///    by slot index) into a border; accept **bordered** with the
///    smallest such `k` whose remainder has `nb = n − k ≥ 8` and
///    re-RCM'd half-bandwidth `b'` with `2b' + 1 ≤ nb / 2`.
/// 4. Otherwise → **dense**.
///
/// Every step is deterministic: RCM starts from the minimum
/// `(degree, slot)` node per component and expands neighbors in
/// `(degree, slot)` order.
// rfkit-cold: runs once per plan compile / stamp repath, never per point.
fn choose_path(adj: &[Vec<usize>]) -> SolvePath {
    let n = adj.len();
    if n < MIN_STRUCTURED {
        return SolvePath::Dense;
    }
    let members: Vec<usize> = (0..n).collect();
    let order = rcm_order(adj, &members);
    let bw = bandwidth(adj, &order);
    // Band test `2b+1 ≤ n/2` (band width at most half the matrix).
    if 2 * bw < n / 2 {
        return SolvePath::Banded { order, bw };
    }
    // Hub extraction: try peeling the highest-degree nodes.
    let mut by_degree: Vec<usize> = (0..n).collect();
    by_degree.sort_by_key(|&i| (std::cmp::Reverse(adj[i].len()), i));
    for k in 1..=MAX_BORDER.min(n) {
        if n - k < MIN_STRUCTURED {
            break;
        }
        let mut hubs: Vec<usize> = by_degree[..k].to_vec();
        hubs.sort_unstable();
        let rest: Vec<usize> = (0..n).filter(|i| !hubs.contains(i)).collect();
        let sub = subgraph(adj, &rest);
        let sub_order = rcm_order(&sub, &(0..rest.len()).collect::<Vec<_>>());
        let bw_r = bandwidth(&sub, &sub_order);
        if 2 * bw_r < (n - k) / 2 {
            let mut order: Vec<usize> = sub_order.iter().map(|&l| rest[l]).collect();
            order.extend_from_slice(&hubs);
            return SolvePath::Bordered {
                order,
                nb: n - k,
                k,
                bw: bw_r,
            };
        }
    }
    SolvePath::Dense
}

/// Induced subgraph on `keep` (ascending), relabeled to local indices.
fn subgraph(adj: &[Vec<usize>], keep: &[usize]) -> Vec<Vec<usize>> {
    let mut local = vec![None; adj.len()];
    for (l, &g) in keep.iter().enumerate() {
        local[g] = Some(l);
    }
    keep.iter()
        .map(|&g| {
            adj[g]
                .iter()
                .filter_map(|&nb| local[nb])
                .collect::<Vec<usize>>()
        })
        .collect()
}

/// Reverse Cuthill–McKee ordering of `members` (local node ids of `adj`).
/// Deterministic: each component starts from its minimum `(degree, id)`
/// node, and neighbors are appended in `(degree, id)` order.
// rfkit-cold: structural analysis, once per plan compile — not per point.
fn rcm_order(adj: &[Vec<usize>], members: &[usize]) -> Vec<usize> {
    let n = adj.len();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(members.len());
    loop {
        let start = members
            .iter()
            .copied()
            .filter(|&i| !visited[i])
            .min_by_key(|&i| (adj[i].len(), i));
        let Some(start) = start else { break };
        visited[start] = true;
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            let mut nbs: Vec<usize> = adj[u].iter().copied().filter(|&v| !visited[v]).collect();
            nbs.sort_by_key(|&v| (adj[v].len(), v));
            for v in nbs {
                visited[v] = true;
                queue.push_back(v);
            }
        }
    }
    order.reverse();
    order
}

/// Half-bandwidth of `adj` under `order` (max |pos(u) − pos(v)| over
/// edges).
fn bandwidth(adj: &[Vec<usize>], order: &[usize]) -> usize {
    let mut pos = vec![0usize; adj.len()];
    for (p, &node) in order.iter().enumerate() {
        pos[node] = p;
    }
    let mut bw = 0usize;
    for (u, nbs) in adj.iter().enumerate() {
        for &v in nbs {
            bw = bw.max(pos[u].abs_diff(pos[v]));
        }
    }
    bw
}

/// Aggregate statistics of one [`StampPlan::sweep_batch`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepStats {
    /// Grid points processed (successful or not).
    pub points: usize,
    /// Full pivoted refactorizations forced *beyond* the initial one:
    /// growth-guard trips on the pivot-reuse dense path plus per-point
    /// fallbacks from the banded/bordered kernels. Healthy sweeps keep
    /// this ≪ `points`.
    pub refactors: usize,
    /// Points that returned an error.
    pub failures: usize,
    /// Solve path actually used: `"dense"`, `"banded"` or `"bordered"`.
    pub path: &'static str,
}

/// Results of a batched frequency sweep: the S-matrix grid in SoA (split
/// re/im) storage, per-point failures, and sweep statistics.
#[derive(Debug, Clone)]
pub struct SweepBatch {
    n_ports: usize,
    z0: f64,
    freqs: Vec<f64>,
    /// Point-major: entry `(p, i, j)` at index `(p·m + i)·m + j`.
    s: SoaComplex,
    /// `(point index, error)`, ascending by point.
    failures: Vec<(usize, AcError)>,
    stats: SweepStats,
}

impl SweepBatch {
    /// Number of grid points (including failed ones).
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// True when the sweep covered no points.
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }

    /// Port count of every S-matrix in the grid.
    pub fn n_ports(&self) -> usize {
        self.n_ports
    }

    /// Shared port reference impedance.
    pub fn z0(&self) -> f64 {
        self.z0
    }

    /// Frequency of grid point `p`.
    pub fn freq(&self, p: usize) -> f64 {
        self.freqs[p]
    }

    /// True when point `p` solved successfully.
    pub fn is_ok(&self, p: usize) -> bool {
        self.failures.binary_search_by_key(&p, |f| f.0).is_err()
    }

    /// S-matrix entry `(i, j)` at point `p`. Failed points hold zeros;
    /// check [`SweepBatch::is_ok`] / [`SweepBatch::failures`].
    ///
    /// # Panics
    ///
    /// Panics when `p`, `i` or `j` is out of range.
    pub fn s(&self, p: usize, i: usize, j: usize) -> Complex {
        assert!(i < self.n_ports && j < self.n_ports, "port out of range");
        self.s.get((p * self.n_ports + i) * self.n_ports + j)
    }

    /// Two-port S-parameters at point `p`, or `None` when the point
    /// failed or the plan is not a 2-port.
    pub fn two_port(&self, p: usize) -> Option<SParams> {
        if self.n_ports != 2 || !self.is_ok(p) {
            return None;
        }
        Some(SParams::new(
            self.s(p, 0, 0),
            self.s(p, 0, 1),
            self.s(p, 1, 0),
            self.s(p, 1, 1),
            self.z0,
        ))
    }

    /// The raw SoA `(re, im)` streams of the point-major S grid.
    pub fn s_slices(&self) -> (&[f64], &[f64]) {
        self.s.as_slices()
    }

    /// Per-point failures, ascending by point index.
    pub fn failures(&self) -> &[(usize, AcError)] {
        &self.failures
    }

    /// Sweep statistics (path taken, refactor count, …).
    pub fn stats(&self) -> &SweepStats {
        &self.stats
    }
}

impl StampPlan {
    /// Sweeps the whole frequency grid through the structure-aware batch
    /// engine, returning the S grid in SoA storage.
    ///
    /// Per-point errors (non-positive frequency, singular system,
    /// injected fault) do not abort the sweep; they are recorded in
    /// [`SweepBatch::failures`] with the same `AcError` values the
    /// per-point path produces, and the corresponding grid entries hold
    /// zeros. Results agree with [`StampPlan::s_matrix`] within
    /// [`SWEEP_TOL`] per entry.
    pub fn sweep_batch(
        &self,
        freqs: &[f64],
        stamps: &AcStamps<'_>,
        ws: &mut AcWorkspace,
    ) -> SweepBatch {
        let watch = rfkit_obs::stopwatch();
        let m = self.port_nodes.len();
        let path = self.effective_path(stamps);
        match path {
            SolvePath::Dense => OBS_PATH_DENSE.add(1),
            SolvePath::Banded { .. } => OBS_PATH_BANDED.add(1),
            SolvePath::Bordered { .. } => OBS_PATH_BORDERED.add(1),
        }
        OBS_SWEEP_POINTS.add(freqs.len() as u64);

        let mut s = SoaComplex::with_capacity(freqs.len() * m * m);
        let mut failures = Vec::new();
        let mut refactors = 0usize;
        // Dense pivot reuse: valid once the first full factorization of
        // the internal block lands in `ws.sweep_lu`.
        let mut have_factor = false;

        for (p, &freq_hz) in freqs.iter().enumerate() {
            match self.sweep_point(freq_hz, stamps, ws, &path, &mut have_factor, &mut refactors) {
                Ok(()) => {
                    for i in 0..m {
                        for j in 0..m {
                            s.push(ws.smat[(i, j)]);
                        }
                    }
                }
                Err(e) => {
                    failures.push((p, e));
                    for _ in 0..m * m {
                        s.push(Complex::ZERO);
                    }
                }
            }
        }

        OBS_SWEEP_REFACTORS.add(refactors as u64);
        if let Some(us) = watch.elapsed_us() {
            OBS_SWEEP_US.record(us);
        }
        let stats = SweepStats {
            points: freqs.len(),
            refactors,
            failures: failures.len(),
            path: path.name(),
        };
        SweepBatch {
            n_ports: m,
            z0: self.z0,
            freqs: freqs.to_vec(),
            s,
            failures,
            stats,
        }
    }

    /// The compile-time path, downgraded/reclassified when external
    /// device stamps couple internal nodes the classified structure does
    /// not connect.
    fn effective_path(&self, stamps: &AcStamps<'_>) -> SolvePath {
        let mut slot_of = vec![None; self.n];
        for (s, &node) in self.internal.iter().enumerate() {
            slot_of[node] = Some(s);
        }
        let mut extra = Vec::new();
        for (a, b) in stamps.node_pairs() {
            if let (Some(a), Some(b)) = (a, b) {
                if a == b {
                    continue;
                }
                if let (Some(sa), Some(sb)) = (slot_of[a], slot_of[b]) {
                    if !self.structure.has_edge(sa, sb) {
                        extra.push((sa.min(sb), sa.max(sb)));
                    }
                }
            }
        }
        if extra.is_empty() {
            return self.structure.path.clone();
        }
        // Reclassify with the stamp edges merged in.
        let mut edges = std::collections::BTreeSet::new();
        for (u, nbs) in self.structure.adj.iter().enumerate() {
            for &v in nbs {
                edges.insert((u.min(v), u.max(v)));
            }
        }
        edges.extend(extra);
        choose_path(&adjacency_from_edges(self.internal.len(), &edges))
    }

    /// Solves one grid point, leaving the S-matrix in `ws.smat`.
    fn sweep_point(
        &self,
        freq_hz: f64,
        stamps: &AcStamps<'_>,
        ws: &mut AcWorkspace,
        path: &SolvePath,
        have_factor: &mut bool,
        refactors: &mut usize,
    ) -> Result<(), AcError> {
        if freq_hz <= 0.0 {
            return Err(AcError::NonPositiveFrequency(freq_hz));
        }
        // Same fault site and key as both per-point paths: an armed plan
        // fails the batch at exactly the same grid points.
        if rfkit_robust::faults::inject("ac.solve", freq_hz.to_bits()).is_some() {
            return Err(AcError::Singular(freq_hz));
        }
        ws.track_dims(self.n, self.port_nodes.len());
        self.assemble_into(freq_hz, stamps, ws);

        if self.internal.is_empty() {
            ws.yred
                .gather_from(&ws.y, &self.port_nodes, &self.port_nodes);
            return self.s_convert(freq_hz, ws);
        }

        ws.ypp
            .gather_from(&ws.y, &self.port_nodes, &self.port_nodes);
        ws.ypi.gather_from(&ws.y, &self.port_nodes, &self.internal);

        let structured_ok = match path {
            SolvePath::Dense => false,
            SolvePath::Banded { order, bw } => self.solve_banded(ws, order, *bw),
            SolvePath::Bordered { order, nb, k, bw } => {
                self.solve_bordered(ws, order, *nb, *k, *bw)
            }
        };
        if !structured_ok {
            // Dense solve — as a path of its own (with pivot reuse) or as
            // the growth-guard fallback of a structured kernel.
            if !matches!(path, SolvePath::Dense) {
                *refactors += 1;
            }
            self.solve_dense(freq_hz, ws, have_factor, refactors)?;
        }

        ws.ypi
            .matmul_into(&ws.solved, &mut ws.prod)
            .expect("dimensions chain");
        ws.ypp.sub_into(&ws.prod, &mut ws.yred);
        self.s_convert(freq_hz, ws)
    }

    /// Dense internal solve with cross-point pivot reuse. Leaves
    /// `yii⁻¹·yip` in `ws.solved`.
    fn solve_dense(
        &self,
        freq_hz: f64,
        ws: &mut AcWorkspace,
        have_factor: &mut bool,
        refactors: &mut usize,
    ) -> Result<(), AcError> {
        ws.yii.gather_from(&ws.y, &self.internal, &self.internal);
        ws.yip.gather_from(&ws.y, &self.internal, &self.port_nodes);
        let reused = *have_factor && ws.sweep_lu.try_refactor_with_current_perm(&ws.yii);
        if !reused {
            if *have_factor {
                // The reused pivot order went unstable (or the first
                // structured fallback landed here after a prior dense
                // factorization): full pivot search again.
                *refactors += 1;
            }
            *have_factor = false;
            ws.yii
                .lu_into(&mut ws.sweep_lu)
                .map_err(|_| AcError::Singular(freq_hz))?;
            *have_factor = true;
        }
        ws.sweep_lu
            .solve_matrix_into(&ws.yip, &mut ws.solved, &mut ws.x)
            .map_err(|_| AcError::Singular(freq_hz))?;
        Ok(())
    }

    /// Banded internal solve; `false` = growth guard tripped, caller
    /// falls back to dense for this point.
    fn solve_banded(&self, ws: &mut AcWorkspace, order: &[usize], bw: usize) -> bool {
        let n_i = self.internal.len();
        let m = self.port_nodes.len();
        let AcWorkspace {
            ref mut banded,
            ref y,
            ref mut solved,
            ref mut col,
            ..
        } = *ws;
        let internal = &self.internal;
        banded.load(n_i, bw, bw, |p, q| {
            y[(internal[order[p]], internal[order[q]])]
        });
        if banded.factor().is_err() {
            return false;
        }
        solved.reset(n_i, m);
        for (j, &port_node) in self.port_nodes.iter().enumerate() {
            col.clear();
            col.extend(order.iter().map(|&slot| y[(internal[slot], port_node)]));
            banded.solve_in_place(col);
            for (p, &v) in col.iter().enumerate() {
                solved[(order[p], j)] = v;
            }
        }
        true
    }

    /// Bordered internal solve; `false` = growth guard tripped.
    fn solve_bordered(
        &self,
        ws: &mut AcWorkspace,
        order: &[usize],
        nb: usize,
        k: usize,
        bw: usize,
    ) -> bool {
        let n_i = self.internal.len();
        debug_assert_eq!(n_i, nb + k);
        let m = self.port_nodes.len();
        let AcWorkspace {
            ref mut bordered,
            ref y,
            ref mut solved,
            ref mut col,
            ..
        } = *ws;
        let internal = &self.internal;
        bordered.load(nb, k, bw, bw, |p, q| {
            y[(internal[order[p]], internal[order[q]])]
        });
        if bordered.factor().is_err() {
            return false;
        }
        solved.reset(n_i, m);
        for (j, &port_node) in self.port_nodes.iter().enumerate() {
            col.clear();
            col.extend(order.iter().map(|&slot| y[(internal[slot], port_node)]));
            bordered.solve_in_place(col);
            for (p, &v) in col.iter().enumerate() {
                solved[(order[p], j)] = v;
            }
        }
        true
    }
}

/// Default capacity of [`PlanCache`] and the process-wide shared cache.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 64;

/// A keyed cache of compiled [`StampPlan`]s behind `Arc`.
///
/// The key is a structural fingerprint of the netlist's AC-relevant
/// content: node count, ports (node + z0 bits), and every R/C/L/V
/// element with its resolved node pair and value bits. AC-irrelevant
/// content is deliberately excluded — current sources (AC opens), FET
/// elements (linearized externally via [`AcStamps`]) and V-source DC
/// values (a V source stamps the same AC short regardless of voltage) —
/// so designs differing only in those share one compiled plan.
///
/// Eviction is oldest-key-first (`BTreeMap::pop_first`), matching the
/// determinism conventions of the suite (no `HashMap` anywhere).
#[derive(Debug, Default)]
pub struct PlanCache {
    capacity: usize,
    map: BTreeMap<Vec<u64>, Arc<StampPlan>>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// Creates a cache bounded to `capacity` plans (min 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            map: BTreeMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Returns the cached plan for this netlist topology, compiling and
    /// inserting it on a miss.
    ///
    /// # Errors
    ///
    /// Propagates [`StampPlan::compile`] errors; failures are not cached.
    pub fn get_or_compile(&mut self, circuit: &Circuit) -> Result<Arc<StampPlan>, AcError> {
        let key = fingerprint(circuit);
        if let Some(plan) = self.map.get(&key) {
            self.hits += 1;
            OBS_PLAN_HIT.add(1);
            return Ok(Arc::clone(plan));
        }
        self.misses += 1;
        OBS_PLAN_MISS.add(1);
        let plan = Arc::new(StampPlan::compile(circuit)?);
        while self.map.len() >= self.capacity {
            self.map.pop_first();
        }
        self.map.insert(key, Arc::clone(&plan));
        Ok(plan)
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookup hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// AC-structural fingerprint of a netlist (see [`PlanCache`]).
pub(crate) fn fingerprint(circuit: &Circuit) -> Vec<u64> {
    fn enc(n: Option<usize>) -> u64 {
        match n {
            None => 0,
            Some(i) => i as u64 + 1,
        }
    }
    let mut key = vec![circuit.n_nodes() as u64];
    for p in circuit.ports() {
        key.extend([5, p.node as u64 + 1, p.z0.to_bits()]);
    }
    for e in &circuit.elements {
        match e {
            Element::Resistor { a, b, ohms } => key.extend([1, enc(*a), enc(*b), ohms.to_bits()]),
            Element::Capacitor { a, b, farads } => {
                key.extend([2, enc(*a), enc(*b), farads.to_bits()])
            }
            Element::Inductor { a, b, henries } => {
                key.extend([3, enc(*a), enc(*b), henries.to_bits()])
            }
            Element::VSource { plus, minus, .. } => key.extend([4, enc(*plus), enc(*minus)]),
            // AC opens / externally stamped devices: no AC footprint.
            Element::ISource { .. } | Element::Fet { .. } => {}
        }
    }
    key
}

static SHARED_PLANS: OnceLock<Mutex<PlanCache>> = OnceLock::new();

/// The process-wide shared plan cache behind [`shared_plan`]; exposed for
/// capacity/statistics inspection.
pub fn shared_plan_cache() -> &'static Mutex<PlanCache> {
    SHARED_PLANS.get_or_init(|| Mutex::new(PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY)))
}

/// Compiles (or fetches) the shared plan for this netlist topology.
///
/// All callers — band sweeps, yield Monte-Carlo units, parallel workers —
/// get `Arc` handles to the **same** immutable compiled plan, so a
/// topology is stamped once per process no matter how many threads sweep
/// it. The plan itself is immutable; per-thread mutable state lives in
/// each caller's own [`AcWorkspace`].
///
/// # Errors
///
/// Propagates [`StampPlan::compile`] errors.
pub fn shared_plan(circuit: &Circuit) -> Result<Arc<StampPlan>, AcError> {
    shared_plan_cache()
        .lock()
        .expect("plan cache poisoned")
        .get_or_compile(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ac::two_port_s;

    /// `n`-section LC ladder: series L, shunt C per section.
    fn lc_ladder(sections: usize) -> Circuit {
        let mut c = Circuit::new();
        for i in 0..sections {
            let a = if i == 0 {
                "in".to_string()
            } else {
                format!("n{i}")
            };
            let b = if i == sections - 1 {
                "out".to_string()
            } else {
                format!("n{}", i + 1)
            };
            c.inductor(&a, &b, 3e-9 + 0.2e-9 * i as f64);
            c.capacitor(&b, "gnd", 1e-12 + 0.05e-12 * i as f64);
        }
        c.port("in", 50.0).port("out", 50.0);
        c
    }

    /// Multi-stage network with a shared supply rail: per-stage drain
    /// resistor to "vdd" turns that node into a high-degree hub.
    fn hub_network(stages: usize) -> Circuit {
        let mut c = Circuit::new();
        c.vsource("vdd", "gnd", 3.0);
        for i in 0..stages {
            let a = if i == 0 {
                "in".to_string()
            } else {
                format!("s{i}")
            };
            let b = if i == stages - 1 {
                "out".to_string()
            } else {
                format!("s{}", i + 1)
            };
            c.inductor(&a, &b, 4e-9 + 0.1e-9 * i as f64);
            c.capacitor(&b, "gnd", 0.8e-12 + 0.03e-12 * i as f64);
            c.resistor(&b, "vdd", 150.0 + 10.0 * i as f64);
        }
        c.port("in", 50.0).port("out", 50.0);
        c
    }

    fn grid(n: usize) -> Vec<f64> {
        rfkit_num::linspace(1.0e9, 1.8e9, n)
    }

    #[test]
    fn ladder_classifies_banded() {
        let plan = StampPlan::compile(&lc_ladder(12)).unwrap();
        assert_eq!(plan.solve_path_name(), "banded");
    }

    #[test]
    fn hub_network_classifies_bordered() {
        let plan = StampPlan::compile(&hub_network(12)).unwrap();
        assert_eq!(plan.solve_path_name(), "bordered");
    }

    #[test]
    fn small_network_stays_dense() {
        let mut c = Circuit::new();
        c.resistor("in", "out", 50.0)
            .port("in", 50.0)
            .port("out", 50.0);
        let plan = StampPlan::compile(&c).unwrap();
        assert_eq!(plan.solve_path_name(), "dense");
    }

    #[test]
    fn sweep_batch_matches_legacy_within_tolerance() {
        for c in [lc_ladder(12), hub_network(10)] {
            let plan = StampPlan::compile(&c).unwrap();
            let mut ws = AcWorkspace::new();
            let freqs = grid(40);
            let batch = plan.sweep_batch(&freqs, &AcStamps::none(), &mut ws);
            assert_eq!(batch.len(), 40);
            assert!(batch.failures().is_empty());
            // A pure-LC ladder has node resonances inside the band where
            // the unpivoted pivot degenerates; the growth guard must fall
            // back on those points (correctness) but only on a minority of
            // the grid (performance).
            assert!(
                batch.stats().refactors < freqs.len() / 2,
                "guard fell back on {}/{} points",
                batch.stats().refactors,
                freqs.len()
            );
            for (p, &f) in freqs.iter().enumerate() {
                let legacy = two_port_s(&c, f, &AcStamps::none()).unwrap();
                let got = batch.two_port(p).unwrap();
                for (a, b) in [
                    (got.s11(), legacy.s11()),
                    (got.s21(), legacy.s21()),
                    (got.s12(), legacy.s12()),
                    (got.s22(), legacy.s22()),
                ] {
                    assert!(
                        (a - b).abs() <= SWEEP_TOL,
                        "point {p}: {} vs {} (diff {})",
                        a,
                        b,
                        (a - b).abs()
                    );
                }
            }
        }
    }

    #[test]
    fn sweep_batch_error_parity_per_point() {
        let c = lc_ladder(10);
        let plan = StampPlan::compile(&c).unwrap();
        let mut ws = AcWorkspace::new();
        let freqs = [1.0e9, 0.0, 1.2e9, -5.0, 1.4e9];
        let batch = plan.sweep_batch(&freqs, &AcStamps::none(), &mut ws);
        assert_eq!(batch.failures().len(), 2);
        assert_eq!(batch.failures()[0], (1, AcError::NonPositiveFrequency(0.0)));
        assert_eq!(
            batch.failures()[1],
            (3, AcError::NonPositiveFrequency(-5.0))
        );
        assert!(batch.is_ok(0) && !batch.is_ok(1) && batch.is_ok(4));
        assert!(batch.two_port(1).is_none());
        assert_eq!(batch.stats().failures, 2);
        // Good points unaffected by the bad neighbors.
        let legacy = two_port_s(&c, 1.4e9, &AcStamps::none()).unwrap();
        assert!((batch.two_port(4).unwrap().s21() - legacy.s21()).abs() <= SWEEP_TOL);
    }

    #[test]
    fn stamps_between_internal_nodes_trigger_reclassification() {
        // A device stamp bridging the first and last internal ladder nodes
        // destroys the band; the sweep must not silently produce wrong
        // numbers.
        let c = lc_ladder(12);
        let plan = StampPlan::compile(&c).unwrap();
        assert_eq!(plan.solve_path_name(), "banded");
        let y_of = |f: f64| {
            let w = rfkit_num::units::angular(f);
            rfkit_net::YParams::new(
                Complex::imag(w * 0.2e-12),
                Complex::imag(-w * 0.2e-12),
                Complex::imag(-w * 0.2e-12),
                Complex::imag(w * 0.2e-12),
            )
        };
        // Find two internal node ids far apart in the ladder.
        let a = plan.internal[1];
        let b = plan.internal[plan.internal.len() - 1];
        let stamps = AcStamps::none().two_port(Some(a), Some(b), &y_of);
        let mut ws = AcWorkspace::new();
        let freqs = grid(12);
        let batch = plan.sweep_batch(&freqs, &stamps, &mut ws);
        assert!(batch.failures().is_empty());
        for (p, &f) in freqs.iter().enumerate() {
            let legacy = two_port_s(&c, f, &stamps).unwrap();
            assert!((batch.two_port(p).unwrap().s21() - legacy.s21()).abs() <= SWEEP_TOL);
        }
    }

    #[test]
    fn plan_cache_shares_one_arc_per_topology() {
        let mut cache = PlanCache::new(8);
        let c1 = lc_ladder(6);
        let p1 = cache.get_or_compile(&c1).unwrap();
        let p2 = cache.get_or_compile(&c1).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // A different topology compiles its own plan.
        let p3 = cache.get_or_compile(&lc_ladder(7)).unwrap();
        assert!(!Arc::ptr_eq(&p1, &p3));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn plan_cache_evicts_at_capacity() {
        let mut cache = PlanCache::new(2);
        cache.get_or_compile(&lc_ladder(4)).unwrap();
        cache.get_or_compile(&lc_ladder(5)).unwrap();
        cache.get_or_compile(&lc_ladder(6)).unwrap();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn fingerprint_ignores_ac_irrelevant_content() {
        // V-source DC value does not change the AC plan.
        let mut c1 = Circuit::new();
        c1.vsource("vdd", "gnd", 3.0)
            .resistor("in", "vdd", 100.0)
            .port("in", 50.0);
        let mut c2 = Circuit::new();
        c2.vsource("vdd", "gnd", 5.0)
            .resistor("in", "vdd", 100.0)
            .port("in", 50.0);
        assert_eq!(fingerprint(&c1), fingerprint(&c2));
        // A value change does.
        let mut c3 = Circuit::new();
        c3.vsource("vdd", "gnd", 3.0)
            .resistor("in", "vdd", 101.0)
            .port("in", 50.0);
        assert_ne!(fingerprint(&c1), fingerprint(&c3));
    }

    #[test]
    fn shared_plan_is_process_wide() {
        let c = lc_ladder(9);
        let a = shared_plan(&c).unwrap();
        let b = shared_plan(&c).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
