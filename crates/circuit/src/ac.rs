//! AC small-signal analysis: complex nodal admittance assembly, internal
//! node elimination and S-parameter extraction at the declared ports.
//!
//! The nonlinear FET must be replaced by its linearized small-signal
//! two-port before AC analysis; [`AcStamps`] carries those extra Y-stamped
//! two-ports (e.g. a [`rfkit_device::SmallSignalDevice`] evaluated at the
//! DC operating point).

use crate::netlist::{Circuit, Element};
use rfkit_net::{NPort, SParams, YParams};
use rfkit_num::units::angular;
use rfkit_num::{CMatrix, Complex};

// Per-frequency solve timing (runtime-gated, write-only; see rfkit-obs).
// Shared with the compiled fast path in `plan` so both record under one name.
pub(crate) static OBS_AC_SOLVE_US: rfkit_obs::Hist = rfkit_obs::Hist::new("circuit.ac.solve_us");

/// An AC short for DC voltage sources (both analysis paths must stamp the
/// exact same conductance to stay bit-identical).
pub(crate) const SHORT_SIEMENS: f64 = 1e7;

/// Stamps a two-terminal admittance between nodes `a` and `b` (`None` =
/// ground): `+adm` on the diagonals, `-adm` on the off-diagonals.
pub(crate) fn stamp_admittance(y: &mut CMatrix, a: Option<usize>, b: Option<usize>, adm: Complex) {
    if let Some(i) = a {
        y[(i, i)] += adm;
    }
    if let Some(j) = b {
        y[(j, j)] += adm;
    }
    if let (Some(i), Some(j)) = (a, b) {
        y[(i, j)] -= adm;
        y[(j, i)] -= adm;
    }
}

/// Applies every extra stamped two-port in `stamps` at `freq_hz`. Shared
/// between the legacy path and the compiled fast path.
pub(crate) fn apply_two_port_stamps(y: &mut CMatrix, stamps: &AcStamps<'_>, freq_hz: f64) {
    for (a, b, y_of) in &stamps.stamps {
        let yp = y_of(freq_hz);
        let mut add = |i: Option<usize>, j: Option<usize>, v: Complex| match (i, j) {
            (Some(i), Some(j)) => y[(i, j)] += v,
            (Some(i), None) | (None, Some(i)) => {
                // Grounded side: the admittance to ground is already in the
                // diagonal terms of the other node; a grounded port of the
                // two-port simply drops its off-diagonals.
                let _ = i;
            }
            (None, None) => {}
        };
        add(*a, *a, yp.y11());
        add(*a, *b, yp.y12());
        add(*b, *a, yp.y21());
        add(*b, *b, yp.y22());
    }
}

/// A Y-matrix provider evaluated per frequency for one stamped two-port.
type YProvider<'a> = &'a dyn Fn(f64) -> YParams;

/// Extra linear two-ports to stamp at analysis time (node pair + Y-matrix
/// provider), used for linearized active devices.
#[derive(Default)]
pub struct AcStamps<'a> {
    stamps: Vec<(Option<usize>, Option<usize>, YProvider<'a>)>,
}

impl<'a> AcStamps<'a> {
    /// No extra stamps.
    pub fn none() -> Self {
        AcStamps::default()
    }

    /// Node pairs of every registered stamp, for structural classification
    /// of the swept matrix (the sweep engine must know which extra
    /// off-diagonals the device stamps will touch).
    pub(crate) fn node_pairs(&self) -> impl Iterator<Item = (Option<usize>, Option<usize>)> + '_ {
        self.stamps.iter().map(|(a, b, _)| (*a, *b))
    }

    /// Adds a grounded two-port between nodes `a` (port 1) and `b`
    /// (port 2), whose Y-parameters are produced per frequency.
    pub fn two_port(
        mut self,
        a: Option<usize>,
        b: Option<usize>,
        y_of: &'a dyn Fn(f64) -> YParams,
    ) -> Self {
        self.stamps.push((a, b, y_of));
        self
    }
}

/// Error from AC analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum AcError {
    /// The circuit declares no ports.
    NoPorts,
    /// The reduced system is singular at the given frequency.
    Singular(f64),
    /// AC analysis requires `freq_hz > 0` (capacitor/inductor admittances
    /// degenerate at DC); an optimizer probing a degenerate band edge gets
    /// an `Err`, not a panic.
    NonPositiveFrequency(f64),
}

impl std::fmt::Display for AcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AcError::NoPorts => write!(f, "circuit declares no ports"),
            AcError::Singular(freq) => write!(f, "singular AC system at {freq} Hz"),
            AcError::NonPositiveFrequency(freq) => {
                write!(
                    f,
                    "AC analysis requires a positive frequency, got {freq} Hz"
                )
            }
        }
    }
}

impl std::error::Error for AcError {}

/// Computes the N-port S-matrix of the circuit at `freq_hz`.
///
/// FET elements are ignored (stamp their linearization via `stamps`);
/// DC sources are AC shorts (V) and opens (I) respectively — a V source
/// node is tied to ground through a large conductance.
///
/// # Errors
///
/// See [`AcError`].
pub fn s_matrix(circuit: &Circuit, freq_hz: f64, stamps: &AcStamps<'_>) -> Result<NPort, AcError> {
    if circuit.ports().is_empty() {
        return Err(AcError::NoPorts);
    }
    if freq_hz <= 0.0 {
        return Err(AcError::NonPositiveFrequency(freq_hz));
    }
    // Deterministic fault hook, keyed by the frequency's bit pattern so an
    // armed plan fails the legacy and compiled paths identically at the
    // same grid points. Compiles out without `rfkit-faults`.
    if rfkit_robust::faults::inject("ac.solve", freq_hz.to_bits()).is_some() {
        return Err(AcError::Singular(freq_hz));
    }
    let watch = rfkit_obs::stopwatch();
    let n = circuit.n_nodes();
    let w = angular(freq_hz);
    let mut y = CMatrix::zeros(n, n);
    for e in &circuit.elements {
        match e {
            Element::Resistor { a, b, ohms } => {
                stamp_admittance(&mut y, *a, *b, Complex::real(1.0 / ohms));
            }
            Element::Capacitor { a, b, farads } => {
                stamp_admittance(&mut y, *a, *b, Complex::imag(w * farads));
            }
            Element::Inductor { a, b, henries } => {
                stamp_admittance(&mut y, *a, *b, Complex::imag(-1.0 / (w * henries)));
            }
            Element::VSource { plus, minus, .. } => {
                // AC ground between its terminals.
                stamp_admittance(&mut y, *plus, *minus, Complex::real(SHORT_SIEMENS));
            }
            Element::ISource { .. } => {
                // AC open.
            }
            Element::Fet { .. } => {
                // Linearization supplied externally via `stamps`.
            }
        }
    }
    apply_two_port_stamps(&mut y, stamps, freq_hz);

    // Reduce to port nodes and convert to S.
    let port_nodes: Vec<usize> = circuit.ports().iter().map(|p| p.node).collect();
    let z0 = circuit.ports()[0].z0;
    let internal: Vec<usize> = (0..n).filter(|i| !port_nodes.contains(i)).collect();
    let y_red = if internal.is_empty() {
        y.submatrix(&port_nodes, &port_nodes)
    } else {
        let ypp = y.submatrix(&port_nodes, &port_nodes);
        let ypi = y.submatrix(&port_nodes, &internal);
        let yip = y.submatrix(&internal, &port_nodes);
        let yii = y.submatrix(&internal, &internal);
        let solved = yii
            .solve_matrix(&yip)
            .map_err(|_| AcError::Singular(freq_hz))?;
        &ypp - &ypi.matmul(&solved).expect("dimensions chain")
    };
    let m = port_nodes.len();
    let id = CMatrix::identity(m);
    let yz = y_red.scaled(Complex::real(z0));
    let den = (&id + &yz)
        .inverse()
        .map_err(|_| AcError::Singular(freq_hz))?;
    let s = (&id - &yz).matmul(&den).expect("dimensions chain");
    if let Some(us) = watch.elapsed_us() {
        OBS_AC_SOLVE_US.record(us);
    }
    Ok(NPort::new(s, z0))
}

/// Convenience: the 2-port S-parameters of a circuit with exactly two
/// declared ports.
///
/// # Errors
///
/// [`AcError::NoPorts`] also covers the wrong port count here.
pub fn two_port_s(
    circuit: &Circuit,
    freq_hz: f64,
    stamps: &AcStamps<'_>,
) -> Result<SParams, AcError> {
    if circuit.ports().len() != 2 {
        return Err(AcError::NoPorts);
    }
    let np = s_matrix(circuit, freq_hz, stamps)?;
    np.to_two_port().map_err(|_| AcError::NoPorts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Circuit;
    use rfkit_device::smallsignal::NoiseTemperatures;
    use rfkit_device::Phemt;
    use rfkit_num::units::db_from_amplitude_ratio;

    #[test]
    fn series_resistor_two_port() {
        let mut c = Circuit::new();
        c.resistor("in", "out", 50.0)
            .port("in", 50.0)
            .port("out", 50.0);
        let s = two_port_s(&c, 1e9, &AcStamps::none()).unwrap();
        assert!((s.s11() - Complex::real(1.0 / 3.0)).abs() < 1e-9);
        assert!((s.s21() - Complex::real(2.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn lc_lowpass_has_cutoff() {
        // L-C lowpass: series 8 nH, shunt 3.2 pF → f_c ≈ 1 GHz.
        let mut c = Circuit::new();
        c.inductor("in", "out", 8e-9)
            .capacitor("out", "gnd", 3.2e-12)
            .port("in", 50.0)
            .port("out", 50.0);
        let s_low = two_port_s(&c, 0.2e9, &AcStamps::none()).unwrap();
        let s_high = two_port_s(&c, 5e9, &AcStamps::none()).unwrap();
        assert!(
            db_from_amplitude_ratio(s_low.s21().abs()) > -1.0,
            "passband loss"
        );
        assert!(
            db_from_amplitude_ratio(s_high.s21().abs()) < -15.0,
            "stopband rejection"
        );
    }

    #[test]
    fn internal_nodes_are_eliminated() {
        // Two cascaded 25 Ω resistors through an internal node behave as 50 Ω.
        let mut c = Circuit::new();
        c.resistor("in", "mid", 25.0)
            .resistor("mid", "out", 25.0)
            .port("in", 50.0)
            .port("out", 50.0);
        let s = two_port_s(&c, 1e9, &AcStamps::none()).unwrap();
        assert!((s.s11() - Complex::real(1.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn vsource_is_ac_ground() {
        // A shunt branch to a DC supply rail suppresses transmission like a
        // shunt to ground.
        let mut c1 = Circuit::new();
        c1.capacitor("in", "gnd", 10e-12).resistor("in", "out", 1.0);
        c1.port("in", 50.0).port("out", 50.0);
        let mut c2 = Circuit::new();
        c2.vsource("vdd", "gnd", 3.0)
            .capacitor("in", "vdd", 10e-12)
            .resistor("in", "out", 1.0);
        c2.port("in", 50.0).port("out", 50.0);
        let s1 = two_port_s(&c1, 2e9, &AcStamps::none()).unwrap();
        let s2 = two_port_s(&c2, 2e9, &AcStamps::none()).unwrap();
        assert!((s1.s21() - s2.s21()).abs() < 1e-3);
    }

    #[test]
    fn matches_cascade_analysis_for_l_match() {
        // Compare the MNA result with the analytic ABCD cascade for a
        // series-L shunt-C matching section.
        use rfkit_net::Abcd;
        let f = 1.575e9;
        let w = rfkit_num::units::angular(f);
        let l = 4.7e-9;
        let cpar = 1.8e-12;
        let mut c = Circuit::new();
        c.inductor("in", "out", l)
            .capacitor("out", "gnd", cpar)
            .port("in", 50.0)
            .port("out", 50.0);
        let s_mna = two_port_s(&c, f, &AcStamps::none()).unwrap();
        let s_ref = Abcd::series_impedance(Complex::imag(w * l))
            .cascade(&Abcd::shunt_admittance(Complex::imag(w * cpar)))
            .to_s(50.0)
            .unwrap();
        assert!((s_mna.s11() - s_ref.s11()).abs() < 1e-9);
        assert!((s_mna.s21() - s_ref.s21()).abs() < 1e-9);
        assert!((s_mna.s22() - s_ref.s22()).abs() < 1e-9);
    }

    #[test]
    fn fet_stamp_produces_gain() {
        // Stamp a linearized pHEMT between the ports: the AC solve must
        // reproduce the device's own S-parameters.
        let d = Phemt::atf54143_like();
        let op = d.operating_point(d.bias_for_current(3.0, 0.06).unwrap(), 3.0);
        let ss = d.small_signal(&op);
        let y_of = move |f: f64| {
            ss.noisy_two_port(f, &NoiseTemperatures::default())
                .abcd
                .to_y()
                .expect("device Y form")
        };
        let mut c = Circuit::new();
        let g = c.node("g");
        let dn = c.node("d");
        c.port("g", 50.0).port("d", 50.0);
        let stamps = AcStamps::none().two_port(g, dn, &y_of);
        let s = two_port_s(&c, 1.575e9, &stamps).unwrap();
        let s_ref = ss.s_params(1.575e9, 50.0);
        assert!(
            (s.s21() - s_ref.s21()).abs() < 1e-6,
            "{} vs {}",
            s.s21(),
            s_ref.s21()
        );
        assert!((s.s11() - s_ref.s11()).abs() < 1e-6);
    }

    #[test]
    fn non_positive_frequency_is_an_error() {
        // Regression: this used to be an assert!-panic, which crashed
        // optimizers probing a degenerate band edge.
        let mut c = Circuit::new();
        c.resistor("in", "out", 50.0)
            .port("in", 50.0)
            .port("out", 50.0);
        assert_eq!(
            s_matrix(&c, 0.0, &AcStamps::none()).unwrap_err(),
            AcError::NonPositiveFrequency(0.0)
        );
        assert_eq!(
            two_port_s(&c, -1e9, &AcStamps::none()).unwrap_err(),
            AcError::NonPositiveFrequency(-1e9)
        );
    }

    #[test]
    fn no_ports_is_an_error() {
        let mut c = Circuit::new();
        c.resistor("a", "b", 10.0);
        assert!(matches!(
            s_matrix(&c, 1e9, &AcStamps::none()),
            Err(AcError::NoPorts)
        ));
    }

    #[test]
    fn three_port_splitter_via_mna() {
        // Star of three 16.67 Ω resistors = matched resistive splitter.
        let mut c = Circuit::new();
        let r = 50.0 / 3.0;
        c.resistor("p1", "center", r)
            .resistor("p2", "center", r)
            .resistor("p3", "center", r)
            .port("p1", 50.0)
            .port("p2", 50.0)
            .port("p3", 50.0);
        let np = s_matrix(&c, 1e9, &AcStamps::none()).unwrap();
        assert_eq!(np.n_ports(), 3);
        assert!(np.s(0, 0).unwrap().abs() < 1e-9);
        assert!((np.s(1, 0).unwrap().abs() - 0.5).abs() < 1e-9);
    }
}
