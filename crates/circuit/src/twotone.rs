//! Two-tone intermodulation analysis of the pHEMT.
//!
//! The paper closes by checking the preamplifier's third-order
//! intermodulation products. Two independent paths compute them here:
//!
//! * **power series** — the classic closed form from the Taylor expansion
//!   `I_ds = I₀ + gm·v + (gm2/2!)·v² + (gm3/3!)·v³` at the operating
//!   point: with two tones of gate amplitude `A`, the fundamental drain
//!   current is `gm·A` and the IM3 component is
//!   `(3/4)·(gm3/6)·A³ = gm3·A³/8`, giving `IIP3 (V²) = 8·|gm/gm3|`;
//! * **time domain** — drive the *full nonlinear* model with the two-tone
//!   waveform, FFT the drain current (via `rfkit-num`) and read the tone
//!   bins directly. This path captures gain compression and the higher-
//!   order terms the power series drops.
//!
//! Both report output powers into a load resistance so an intercept-point
//! extrapolation (`rfkit_num::line_intersection`) can reproduce the
//! standard lab plot.

use rfkit_device::{OperatingPoint, Phemt};
use rfkit_num::fft::amplitude_spectrum;
use rfkit_num::units::{dbm_from_watts, watts_from_dbm};
use rfkit_num::{line_intersection, Polynomial};

// Sweep-progress telemetry (runtime-gated, write-only; see rfkit-obs).
static OBS_TWOTONE_POINTS: rfkit_obs::Counter = rfkit_obs::Counter::new("circuit.twotone.points");
static OBS_TWOTONE_FAILED: rfkit_obs::Counter =
    rfkit_obs::Counter::new("circuit.twotone.points.failed");

/// The two-tone test setup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoToneSpec {
    /// Source impedance the input power is defined against (Ω).
    pub r_source: f64,
    /// Load resistance the output power is delivered into (Ω).
    pub r_load: f64,
    /// Available input power **per tone** (dBm).
    pub pin_dbm: f64,
    /// Voltage gain from the source EMF to the gate-source voltage
    /// (set by the input matching network; 0.5 for a directly driven,
    /// high-impedance gate).
    pub input_transfer: f64,
}

impl Default for TwoToneSpec {
    fn default() -> Self {
        TwoToneSpec {
            r_source: 50.0,
            r_load: 50.0,
            pin_dbm: -30.0,
            input_transfer: 1.0,
        }
    }
}

impl TwoToneSpec {
    /// Peak gate-voltage amplitude of one tone for the configured input
    /// power: `Pin = A_src²/(8·R_s)` (available power), then the input
    /// transfer scales the source amplitude onto the gate.
    pub fn tone_amplitude(&self) -> f64 {
        let p_watts = watts_from_dbm(self.pin_dbm);
        (8.0 * self.r_source * p_watts).sqrt() * self.input_transfer
    }
}

/// Result of a two-tone evaluation at one input power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoToneResult {
    /// Input power per tone (dBm).
    pub pin_dbm: f64,
    /// Output fundamental power per tone (dBm).
    pub p_fund_dbm: f64,
    /// Output IM3 power per product (dBm).
    pub p_im3_dbm: f64,
}

/// Closed-form power-series evaluation at the operating point.
pub fn power_series(op: &OperatingPoint, spec: &TwoToneSpec) -> TwoToneResult {
    let a = spec.tone_amplitude();
    // Taylor coefficients: a1 = gm, a3 = gm3/3!. Two-tone results:
    // fundamental gets the (9/4)·a3·A³ self/cross-compression term, each
    // IM3 product is (3/4)·a3·A³.
    let a3 = op.gm3 / 6.0;
    let i_fund = (op.gm * a + 2.25 * a3 * a * a * a).abs();
    let i_im3 = 0.75 * a3.abs() * a * a * a;
    TwoToneResult {
        pin_dbm: spec.pin_dbm,
        p_fund_dbm: dbm_from_watts(0.5 * i_fund * i_fund * spec.r_load),
        p_im3_dbm: dbm_from_watts(0.5 * i_im3 * i_im3 * spec.r_load),
    }
}

/// Time-domain evaluation: drives the full nonlinear `I_ds` with the
/// two-tone gate waveform and reads fundamental/IM3 amplitudes from the
/// spectrum. Tones are placed at FFT bins `k1 = 21`, `k2 = 23` of an
/// `N = 1024` record so all intermodulation products land exactly on bins.
pub fn time_domain(device: &Phemt, op: &OperatingPoint, spec: &TwoToneSpec) -> TwoToneResult {
    const N: usize = 1024;
    const K1: usize = 21;
    const K2: usize = 23;
    let a = spec.tone_amplitude();
    let model = device.dc_model.as_ref();
    let i0 = model.ids(&device.dc_params, op.vgs, op.vds);
    let signal: Vec<f64> = (0..N)
        .map(|t| {
            let phase = 2.0 * std::f64::consts::PI * t as f64 / N as f64;
            let vg = op.vgs + a * ((K1 as f64 * phase).cos() + (K2 as f64 * phase).cos());
            model.ids(&device.dc_params, vg, op.vds) - i0
        })
        .collect();
    let spectrum = amplitude_spectrum(&signal);
    let i_fund = spectrum[K1].max(spectrum[K2]);
    // IM3 products at 2k1 − k2 and 2k2 − k1.
    let i_im3 = spectrum[2 * K1 - K2].max(spectrum[2 * K2 - K1]);
    TwoToneResult {
        pin_dbm: spec.pin_dbm,
        p_fund_dbm: dbm_from_watts(0.5 * i_fund * i_fund * spec.r_load),
        p_im3_dbm: dbm_from_watts(0.5 * i_im3 * i_im3 * spec.r_load),
    }
}

/// Sweeps input power and extrapolates the output third-order intercept
/// point.
#[derive(Debug, Clone, PartialEq)]
pub struct Ip3Sweep {
    /// Per-power results, ascending in `pin_dbm`.
    pub rows: Vec<TwoToneResult>,
    /// Output-referred intercept point (dBm), if the extrapolation is
    /// well-posed.
    pub oip3_dbm: Option<f64>,
    /// Input-referred intercept point (dBm).
    pub iip3_dbm: Option<f64>,
}

/// Runs a two-tone power sweep with the given evaluator and extrapolates
/// IP3 from the small-signal (lowest-power) portion of the sweep.
pub fn ip3_sweep(pin_dbm: &[f64], mut eval: impl FnMut(f64) -> TwoToneResult) -> Ip3Sweep {
    let rows: Vec<TwoToneResult> = pin_dbm
        .iter()
        .map(|&p| {
            OBS_TWOTONE_POINTS.add(1);
            // Fault hook, keyed by the power level's bit pattern (data-
            // derived, thread-count independent). A failed point keeps its
            // slot with NaN powers so `rows` stays aligned with `pin_dbm`;
            // the finiteness guard below then refuses to extrapolate IP3
            // from a poisoned fit window.
            if rfkit_robust::faults::inject("twotone.point", p.to_bits()).is_some() {
                OBS_TWOTONE_FAILED.add(1);
                return TwoToneResult {
                    pin_dbm: p,
                    p_fund_dbm: f64::NAN,
                    p_im3_dbm: f64::NAN,
                };
            }
            eval(p)
        })
        .collect();
    rfkit_obs::event("circuit.twotone.sweep", &[("points", rows.len() as f64)]);
    // Fit the 1:1 and 3:1 slopes on the lowest third of the sweep where
    // both stay well below compression.
    let n_fit = (rows.len() / 3).max(2).min(rows.len());
    let x: Vec<f64> = rows[..n_fit].iter().map(|r| r.pin_dbm).collect();
    let y1: Vec<f64> = rows[..n_fit].iter().map(|r| r.p_fund_dbm).collect();
    let y3: Vec<f64> = rows[..n_fit].iter().map(|r| r.p_im3_dbm).collect();
    let (oip3_dbm, iip3_dbm) = match (Polynomial::fit_line(&x, &y1), Polynomial::fit_line(&x, &y3))
    {
        (Ok(l1), Ok(l3)) if y3.iter().all(|v| v.is_finite()) => match line_intersection(l1, l3) {
            Some(pin_ip3) => {
                let oip3 = l1.0 + l1.1 * pin_ip3;
                (Some(oip3), Some(pin_ip3))
            }
            None => (None, None),
        },
        _ => (None, None),
    };
    Ip3Sweep {
        rows,
        oip3_dbm,
        iip3_dbm,
    }
}

/// Single-tone gain at one input power, from the full nonlinear model
/// (time-domain + FFT): returns `(output power dBm, gain dB)` of the
/// fundamental.
pub fn single_tone(device: &Phemt, op: &OperatingPoint, spec: &TwoToneSpec) -> (f64, f64) {
    const N: usize = 512;
    const K: usize = 11;
    let a = spec.tone_amplitude();
    let model = device.dc_model.as_ref();
    let i0 = model.ids(&device.dc_params, op.vgs, op.vds);
    let signal: Vec<f64> = (0..N)
        .map(|t| {
            let phase = 2.0 * std::f64::consts::PI * (K * t) as f64 / N as f64;
            model.ids(&device.dc_params, op.vgs + a * phase.cos(), op.vds) - i0
        })
        .collect();
    let spectrum = amplitude_spectrum(&signal);
    let p_out = dbm_from_watts(0.5 * spectrum[K] * spectrum[K] * spec.r_load);
    (p_out, p_out - spec.pin_dbm)
}

/// Input-referred 1 dB compression point (dBm): the input power at which
/// the single-tone gain has dropped 1 dB below its small-signal value.
/// Found by bisection between `p_lo` (small signal) and `p_hi` (well into
/// compression); returns `None` when the device does not compress 1 dB
/// within that window.
pub fn p1db(device: &Phemt, op: &OperatingPoint, p_lo: f64, p_hi: f64) -> Option<f64> {
    let gain_at = |p: f64| {
        single_tone(
            device,
            op,
            &TwoToneSpec {
                pin_dbm: p,
                ..Default::default()
            },
        )
        .1
    };
    let g_small = gain_at(p_lo);
    if gain_at(p_hi) > g_small - 1.0 {
        return None;
    }
    let (mut lo, mut hi) = (p_lo, p_hi);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if gain_at(mid) > g_small - 1.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device_and_op() -> (Phemt, OperatingPoint) {
        let d = Phemt::atf54143_like();
        let vgs = d.bias_for_current(3.0, 0.060).unwrap();
        let op = d.operating_point(vgs, 3.0);
        (d, op)
    }

    #[test]
    fn tone_amplitude_from_power() {
        let spec = TwoToneSpec {
            pin_dbm: -20.0,
            ..Default::default()
        };
        // -20 dBm available from 50 Ω → A = sqrt(8·50·1e-5) = 63.2 mV.
        assert!((spec.tone_amplitude() - 0.0632).abs() < 1e-3);
    }

    #[test]
    fn im3_slope_is_three_to_one() {
        let (d, op) = device_and_op();
        for eval_name in ["series", "time"] {
            let r1 = |p: f64| {
                let spec = TwoToneSpec {
                    pin_dbm: p,
                    ..Default::default()
                };
                if eval_name == "series" {
                    power_series(&op, &spec)
                } else {
                    time_domain(&d, &op, &spec)
                }
            };
            let lo = r1(-45.0);
            let hi = r1(-35.0);
            let fund_slope = (hi.p_fund_dbm - lo.p_fund_dbm) / 10.0;
            let im3_slope = (hi.p_im3_dbm - lo.p_im3_dbm) / 10.0;
            assert!(
                (fund_slope - 1.0).abs() < 0.05,
                "{eval_name}: fundamental slope {fund_slope}"
            );
            assert!(
                (im3_slope - 3.0).abs() < 0.15,
                "{eval_name}: IM3 slope {im3_slope}"
            );
        }
    }

    #[test]
    fn power_series_and_time_domain_agree_at_small_signal() {
        let (d, op) = device_and_op();
        let spec = TwoToneSpec {
            pin_dbm: -40.0,
            ..Default::default()
        };
        let ps = power_series(&op, &spec);
        let td = time_domain(&d, &op, &spec);
        assert!(
            (ps.p_fund_dbm - td.p_fund_dbm).abs() < 0.5,
            "fundamental: {} vs {}",
            ps.p_fund_dbm,
            td.p_fund_dbm
        );
        assert!(
            (ps.p_im3_dbm - td.p_im3_dbm).abs() < 2.0,
            "IM3: {} vs {}",
            ps.p_im3_dbm,
            td.p_im3_dbm
        );
    }

    #[test]
    fn oip3_extrapolation_realistic() {
        let (d, op) = device_and_op();
        let pins: Vec<f64> = (0..13).map(|k| -45.0 + 2.5 * k as f64).collect();
        let sweep = ip3_sweep(&pins, |p| {
            time_domain(
                &d,
                &op,
                &TwoToneSpec {
                    pin_dbm: p,
                    ..Default::default()
                },
            )
        });
        let oip3 = sweep.oip3_dbm.expect("well-posed extrapolation");
        // A pHEMT LNA lands in the +10…+40 dBm OIP3 range.
        assert!(oip3 > 5.0 && oip3 < 45.0, "OIP3 = {oip3} dBm");
        let iip3 = sweep.iip3_dbm.unwrap();
        assert!(iip3 < oip3, "gain positive: IIP3 {iip3} < OIP3 {oip3}");
    }

    #[test]
    fn bias_moves_ip3() {
        // More bias current → higher OIP3 (classic linearity/current trade).
        let d = Phemt::atf54143_like();
        let pins: Vec<f64> = (0..9).map(|k| -45.0 + 2.0 * k as f64).collect();
        let oip3_at = |ids: f64| {
            let op = d.operating_point(d.bias_for_current(3.0, ids).unwrap(), 3.0);
            ip3_sweep(&pins, |p| {
                time_domain(
                    &d,
                    &op,
                    &TwoToneSpec {
                        pin_dbm: p,
                        ..Default::default()
                    },
                )
            })
            .oip3_dbm
            .unwrap()
        };
        let low = oip3_at(0.020);
        let high = oip3_at(0.080);
        assert!(high > low, "OIP3(80 mA) = {high} vs OIP3(20 mA) = {low}");
    }

    #[test]
    fn p1db_realistic_and_below_oip3() {
        // Rule of thumb: OIP3 ≈ P1dB(output) + 9…12 dB for a memoryless
        // cubic nonlinearity; at minimum, the input P1dB must sit well
        // below IIP3.
        let (d, op) = device_and_op();
        let iip1 = p1db(&d, &op, -45.0, 10.0).expect("device compresses");
        assert!(iip1 > -20.0 && iip1 < 10.0, "input P1dB = {iip1} dBm");
        let pins: Vec<f64> = (0..9).map(|k| -45.0 + 2.5 * k as f64).collect();
        let sweep = ip3_sweep(&pins, |p| {
            time_domain(
                &d,
                &op,
                &TwoToneSpec {
                    pin_dbm: p,
                    ..Default::default()
                },
            )
        });
        let iip3 = sweep.iip3_dbm.unwrap();
        assert!(iip3 > iip1 + 5.0, "IIP3 {iip3} vs input P1dB {iip1}");
    }

    #[test]
    fn single_tone_gain_matches_gm_at_small_signal() {
        let (d, op) = device_and_op();
        let spec = TwoToneSpec {
            pin_dbm: -45.0,
            ..Default::default()
        };
        let (_, gain_db) = single_tone(&d, &op, &spec);
        // Expected transducer-style gain of the bare transconductance into
        // 50 Ω from the gate voltage: P_out/P_in = (gm·A)²·R/2 / P_in.
        let a = spec.tone_amplitude();
        let p_out = 0.5 * (op.gm * a).powi(2) * spec.r_load;
        let expect = 10.0 * (p_out / rfkit_num::units::watts_from_dbm(-45.0)).log10();
        assert!((gain_db - expect).abs() < 0.1, "{gain_db} vs {expect}");
    }

    #[test]
    fn compression_appears_at_high_drive() {
        let (d, op) = device_and_op();
        let small = time_domain(
            &d,
            &op,
            &TwoToneSpec {
                pin_dbm: -40.0,
                ..Default::default()
            },
        );
        let large = time_domain(
            &d,
            &op,
            &TwoToneSpec {
                pin_dbm: 0.0,
                ..Default::default()
            },
        );
        let small_gain = small.p_fund_dbm - small.pin_dbm;
        let large_gain = large.p_fund_dbm - large.pin_dbm;
        assert!(
            large_gain < small_gain - 1.0,
            "gain must compress: {small_gain} → {large_gain}"
        );
    }
}
