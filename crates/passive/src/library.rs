//! Vendor-style component catalogs.
//!
//! The design flow selects parts the way a board designer does: from a
//! catalog of stocked values with datasheet-grade Q/SRF behaviour and a
//! tolerance class. The catalog is also what the measurement simulator
//! perturbs when it builds an "as-manufactured" amplifier.

use crate::component::{Capacitor, Inductor, Resistor};
use crate::eseries::ESeries;

/// A catalog of purchasable parts in one case size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentLibrary {
    /// Which preferred-value series the catalog stocks.
    pub series: ESeries,
    /// Relative tolerance of stocked parts (e.g. 0.05 for ±5 %).
    pub tolerance: f64,
    /// Case size of stocked parts.
    pub case: CaseSize,
}

/// Chip-component case size; selects the parasitic model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseSize {
    /// 0402 (1005 metric).
    C0402,
    /// 0603 (1608 metric).
    C0603,
}

impl Default for ComponentLibrary {
    /// ±5 % E24 parts in 0402, the usual GNSS LNA bill of materials.
    fn default() -> Self {
        ComponentLibrary {
            series: ESeries::E24,
            tolerance: 0.05,
            case: CaseSize::C0402,
        }
    }
}

impl ComponentLibrary {
    /// Creates a catalog.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not in `(0, 0.5)`.
    pub fn new(series: ESeries, tolerance: f64, case: CaseSize) -> Self {
        assert!(
            tolerance > 0.0 && tolerance < 0.5,
            "tolerance must be in (0, 0.5), got {tolerance}"
        );
        ComponentLibrary {
            series,
            tolerance,
            case,
        }
    }

    /// The stocked capacitor closest to `value` farads.
    pub fn capacitor(&self, value: f64) -> Capacitor {
        let snapped = self.series.snap(value);
        match self.case {
            CaseSize::C0402 => Capacitor::chip_0402(snapped),
            CaseSize::C0603 => Capacitor::chip_0603(snapped),
        }
    }

    /// The stocked inductor closest to `value` henries.
    pub fn inductor(&self, value: f64) -> Inductor {
        let snapped = self.series.snap(value);
        match self.case {
            CaseSize::C0402 => Inductor::chip_0402(snapped),
            CaseSize::C0603 => Inductor::chip_0603(snapped),
        }
    }

    /// The stocked resistor closest to `value` ohms.
    pub fn resistor(&self, value: f64) -> Resistor {
        let snapped = self.series.snap(value);
        match self.case {
            CaseSize::C0402 => Resistor::chip_0402(snapped),
            CaseSize::C0603 => Resistor::chip_0402(snapped), // same parasitic class
        }
    }

    /// Worst-case low/high values of a part within tolerance.
    pub fn tolerance_bounds(&self, nominal: f64) -> (f64, f64) {
        (
            nominal * (1.0 - self.tolerance),
            nominal * (1.0 + self.tolerance),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::Component;

    #[test]
    fn catalog_snaps_values() {
        let lib = ComponentLibrary::default();
        let c = lib.capacitor(4.8e-12);
        assert!((c.capacitance - 4.7e-12).abs() < 1e-18);
        let l = lib.inductor(7.1e-9);
        assert!((l.inductance - 6.8e-9).abs() < 1e-15);
        let r = lib.resistor(98.0);
        assert!((r.resistance - 100.0).abs() < 1e-9);
    }

    #[test]
    fn parts_have_parasitics() {
        let lib = ComponentLibrary::default();
        let c = lib.capacitor(10e-12);
        assert!(c.esl > 0.0);
        assert!(c.q_factor(1.5e9).is_finite());
        let l = lib.inductor(6.8e-9);
        assert!(l.r_dc > 0.0);
    }

    #[test]
    fn case_size_changes_parasitics() {
        let small = ComponentLibrary::new(ESeries::E24, 0.05, CaseSize::C0402);
        let big = ComponentLibrary::new(ESeries::E24, 0.05, CaseSize::C0603);
        assert!(big.capacitor(10e-12).esl > small.capacitor(10e-12).esl);
    }

    #[test]
    fn tolerance_bounds() {
        let lib = ComponentLibrary::new(ESeries::E96, 0.01, CaseSize::C0402);
        let (lo, hi) = lib.tolerance_bounds(100.0);
        assert!((lo - 99.0).abs() < 1e-9);
        assert!((hi - 101.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn rejects_silly_tolerance() {
        ComponentLibrary::new(ESeries::E24, 0.9, CaseSize::C0402);
    }
}
