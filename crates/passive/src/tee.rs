//! Power splitters and the microstrip T-junction.
//!
//! The paper's front end drives several receiver chains from one antenna,
//! which needs a "T splitter". Three models are provided, in increasing
//! realism:
//!
//! * the **ideal tee** — a lossless parallel junction (cannot be matched);
//! * the **microstrip T-junction** — ideal tee plus the discontinuity
//!   parasitics (arm inductance, junction capacitance) that make its
//!   response frequency dependent;
//! * the **Wilkinson divider** — two quarter-wave arms and an isolation
//!   resistor, matched at all ports at its design frequency.

use crate::microstrip::{Microstrip, Substrate};
use rfkit_net::{Abcd, NPort};
use rfkit_num::units::angular;
use rfkit_num::{CMatrix, Complex};

/// A node-admittance assembler for small port networks: stamp two-terminal
/// admittances and two-ports between nodes, then reduce internal nodes by a
/// Schur complement and convert to an S-matrix.
#[derive(Debug, Clone)]
pub struct NodeNetwork {
    y: CMatrix,
}

impl NodeNetwork {
    /// Creates a network with `n_nodes` nodes (ground is implicit).
    pub fn new(n_nodes: usize) -> Self {
        NodeNetwork {
            y: CMatrix::zeros(n_nodes, n_nodes),
        }
    }

    /// Stamps a two-terminal admittance `y` between nodes `a` and `b`;
    /// `None` denotes ground.
    ///
    /// # Panics
    ///
    /// Panics if a node index is out of range.
    pub fn stamp(&mut self, a: Option<usize>, b: Option<usize>, y: Complex) {
        if let Some(i) = a {
            self.y[(i, i)] += y;
        }
        if let Some(j) = b {
            self.y[(j, j)] += y;
        }
        if let (Some(i), Some(j)) = (a, b) {
            self.y[(i, j)] -= y;
            self.y[(j, i)] -= y;
        }
    }

    /// Stamps a grounded two-port (e.g. a transmission line) between nodes
    /// `a` and `b` given its chain matrix.
    ///
    /// # Panics
    ///
    /// Panics if the chain matrix has no Y form (`B == 0`).
    pub fn stamp_two_port(&mut self, a: usize, b: usize, abcd: &Abcd) {
        let y = abcd.to_y().expect("two-port must have a Y form to stamp");
        self.y[(a, a)] += y.y11();
        self.y[(a, b)] += y.y12();
        self.y[(b, a)] += y.y21();
        self.y[(b, b)] += y.y22();
    }

    /// Reduces to the listed port nodes (eliminating all others by Schur
    /// complement) and converts to an S-matrix referenced to `z0`.
    ///
    /// # Panics
    ///
    /// Panics if the internal-node block is singular (a floating internal
    /// node) or a port index is out of range.
    pub fn to_nport(&self, ports: &[usize], z0: f64) -> NPort {
        let n = self.y.rows();
        let internal: Vec<usize> = (0..n).filter(|i| !ports.contains(i)).collect();
        let y_reduced = if internal.is_empty() {
            self.y.submatrix(ports, ports)
        } else {
            // Y_pp − Y_pi · Y_ii⁻¹ · Y_ip
            let ypp = self.y.submatrix(ports, ports);
            let ypi = self.y.submatrix(ports, &internal);
            let yip = self.y.submatrix(&internal, ports);
            let yii = self.y.submatrix(&internal, &internal);
            let solved = yii
                .solve_matrix(&yip)
                .expect("internal node block must be non-singular");
            &ypp - &ypi.matmul(&solved).expect("dimensions chain")
        };
        // S = (I − z0·Y)(I + z0·Y)⁻¹
        let m = ports.len();
        let id = CMatrix::identity(m);
        let yz = y_reduced.scaled(Complex::real(z0));
        let num = &id - &yz;
        let den = (&id + &yz).inverse().expect("I + z0 Y invertible");
        NPort::new(num.matmul(&den).expect("dimensions chain"), z0)
    }
}

/// A T-junction splitter with discontinuity parasitics.
///
/// Electrically: each arm carries a series `R + jωL`, and the common node
/// has a shunt capacitance to ground. With all parasitics zero this reduces
/// to the ideal parallel tee.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TeeJunction {
    /// Per-arm series inductance (H).
    pub arm_inductance: f64,
    /// Per-arm series resistance (Ω) — junction metal loss.
    pub arm_resistance: f64,
    /// Junction shunt capacitance to ground (F).
    pub junction_capacitance: f64,
}

impl TeeJunction {
    /// The ideal (parasitic-free) tee.
    pub fn ideal() -> Self {
        TeeJunction {
            arm_inductance: 0.0,
            arm_resistance: 0.0,
            junction_capacitance: 0.0,
        }
    }

    /// Discontinuity parasitics estimated from the substrate: both the
    /// excess junction capacitance and the arm inductance scale with the
    /// substrate height (simplified Hammerstad-style discontinuity model).
    pub fn microstrip(substrate: &Substrate) -> Self {
        let h_norm = substrate.height / 0.508e-3;
        let er_norm = substrate.eps_r / 3.66;
        TeeJunction {
            arm_inductance: 0.15e-9 * h_norm,
            arm_resistance: 0.05,
            junction_capacitance: 0.08e-12 * h_norm * er_norm,
        }
    }

    /// The 3-port S-matrix at `freq_hz`, referenced to `z0`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive frequency.
    pub fn s_matrix(&self, freq_hz: f64, z0: f64) -> NPort {
        assert!(freq_hz > 0.0, "frequency must be positive");
        let w = angular(freq_hz);
        // Nodes: 0,1,2 = ports; 3 = junction center.
        let mut net = NodeNetwork::new(4);
        let z_arm = Complex::new(self.arm_resistance, w * self.arm_inductance);
        let y_arm = if rfkit_num::is_exact_zero(z_arm.abs()) {
            // Ideal arms: a huge but finite conductance (10 µΩ) keeps the
            // matrix well conditioned while being numerically
            // indistinguishable from a short at RF impedance levels.
            Complex::real(1e5)
        } else {
            z_arm.recip()
        };
        for port in 0..3 {
            net.stamp(Some(port), Some(3), y_arm);
        }
        if self.junction_capacitance > 0.0 {
            net.stamp(Some(3), None, Complex::imag(w * self.junction_capacitance));
        }
        net.to_nport(&[0, 1, 2], z0)
    }
}

/// The matched resistive 3-port splitter (three Z0/3 star resistors):
/// perfectly matched at every port, 6 dB loss, no isolation. Frequency
/// independent, so it is returned directly.
pub fn resistive_splitter(z0: f64) -> NPort {
    let mut net = NodeNetwork::new(4);
    let y = Complex::real(3.0 / z0);
    for port in 0..3 {
        net.stamp(Some(port), Some(3), y);
    }
    net.to_nport(&[0, 1, 2], z0)
}

/// A Wilkinson power divider realized with two quarter-wave microstrip
/// arms (`√2·z0`) and a `2·z0` isolation resistor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Wilkinson {
    /// Design (center) frequency in Hz.
    pub f0_hz: f64,
    /// System impedance (Ω).
    pub z0: f64,
    /// Substrate the arms are printed on.
    pub substrate: Substrate,
}

impl Wilkinson {
    /// Designs the divider for center frequency `f0_hz` in a `z0` system.
    pub fn design(f0_hz: f64, z0: f64, substrate: Substrate) -> Self {
        Wilkinson {
            f0_hz,
            z0,
            substrate,
        }
    }

    /// The quarter-wave arm as a microstrip line.
    fn arm(&self) -> Microstrip {
        let mut line = Microstrip::for_impedance(self.substrate, self.z0 * 2f64.sqrt(), 1e-3);
        line.length = line.guided_wavelength(self.f0_hz) / 4.0;
        line
    }

    /// The 3-port S-matrix at `freq_hz` (port 0 = common).
    pub fn s_matrix(&self, freq_hz: f64) -> NPort {
        let arm = self.arm().abcd(freq_hz);
        // Nodes: 0 = common port, 1,2 = outputs.
        let mut net = NodeNetwork::new(3);
        net.stamp_two_port(0, 1, &arm);
        net.stamp_two_port(0, 2, &arm);
        net.stamp(Some(1), Some(2), Complex::real(1.0 / (2.0 * self.z0)));
        net.to_nport(&[0, 1, 2], self.z0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfkit_num::units::db_from_power_ratio;

    fn mag_db(np: &NPort, i: usize, j: usize) -> f64 {
        db_from_power_ratio(np.s(i, j).unwrap().norm_sqr())
    }

    #[test]
    fn ideal_tee_limit_matches_closed_form() {
        let tee = TeeJunction::ideal().s_matrix(1.5e9, 50.0);
        let reference = NPort::ideal_tee(50.0);
        for i in 0..3 {
            for j in 0..3 {
                let got = tee.s(i, j).unwrap();
                let want = reference.s(i, j).unwrap();
                assert!((got - want).abs() < 1e-6, "S{i}{j}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn parasitic_tee_degrades_with_frequency() {
        let tee = TeeJunction::microstrip(&Substrate::ro4350b());
        let s_low = tee.s_matrix(0.5e9, 50.0);
        let s_high = tee.s_matrix(6.0e9, 50.0);
        // Through-path transmission falls as the parasitics bite.
        let t_low = s_low.s(1, 0).unwrap().abs();
        let t_high = s_high.s(1, 0).unwrap().abs();
        assert!(t_high < t_low, "|S21| {t_high} should drop below {t_low}");
    }

    #[test]
    fn parasitic_tee_is_reciprocal_and_near_passive() {
        let tee = TeeJunction::microstrip(&Substrate::ro4350b()).s_matrix(1.5e9, 50.0);
        assert!(tee.is_reciprocal(1e-9));
        // With small arm resistance the junction is passive.
        for i in 0..3 {
            let mut row_power = 0.0;
            for j in 0..3 {
                row_power += tee.s(j, i).unwrap().norm_sqr();
            }
            assert!(row_power <= 1.0 + 1e-9, "port {i} emits {row_power}");
        }
    }

    #[test]
    fn resistive_splitter_is_matched_and_6db() {
        let sp = resistive_splitter(50.0);
        for i in 0..3 {
            assert!(sp.s(i, i).unwrap().abs() < 1e-9, "port {i} match");
        }
        for (i, j) in [(1, 0), (2, 0), (2, 1)] {
            assert!((mag_db(&sp, i, j) + 6.0206).abs() < 1e-3);
        }
        assert!(sp.is_reciprocal(1e-12));
    }

    #[test]
    fn wilkinson_at_center_frequency() {
        let w = Wilkinson::design(1.575e9, 50.0, Substrate::ro4350b());
        let s = w.s_matrix(1.575e9);
        // Matched everywhere (small residuals from line loss).
        for i in 0..3 {
            assert!(
                s.s(i, i).unwrap().abs() < 0.03,
                "S{i}{i} = {}",
                s.s(i, i).unwrap().abs()
            );
        }
        // 3 dB split plus a little arm loss.
        let split_db = mag_db(&s, 1, 0);
        assert!(split_db < -3.0 && split_db > -3.4, "split = {split_db} dB");
        // Output-to-output isolation is deep.
        assert!(
            mag_db(&s, 2, 1) < -25.0,
            "isolation = {} dB",
            mag_db(&s, 2, 1)
        );
    }

    #[test]
    fn wilkinson_degrades_off_center() {
        let w = Wilkinson::design(1.575e9, 50.0, Substrate::ro4350b());
        let s_center = w.s_matrix(1.575e9);
        let s_off = w.s_matrix(3.0e9);
        assert!(s_off.s(0, 0).unwrap().abs() > s_center.s(0, 0).unwrap().abs());
        assert!(
            mag_db(&s_off, 2, 1) > mag_db(&s_center, 2, 1),
            "isolation shrinks"
        );
    }

    #[test]
    fn wilkinson_beats_tee_and_resistive_for_split_loss_or_isolation() {
        let f = 1.575e9;
        let wilkinson = Wilkinson::design(f, 50.0, Substrate::ro4350b()).s_matrix(f);
        let resistive = resistive_splitter(50.0);
        // Wilkinson splits with ~3 dB, resistive with 6 dB.
        assert!(mag_db(&wilkinson, 1, 0) > mag_db(&resistive, 1, 0) + 2.5);
        // And isolates the outputs, which the ideal tee cannot.
        let tee = NPort::ideal_tee(50.0);
        let tee_isolation = db_from_power_ratio(tee.s(2, 1).unwrap().norm_sqr());
        assert!(mag_db(&wilkinson, 2, 1) < tee_isolation - 20.0);
    }

    #[test]
    fn node_network_series_resistor_two_port() {
        // Sanity: a 50 Ω resistor between two port nodes reduces to the
        // classic S11 = 1/3, S21 = 2/3.
        let mut net = NodeNetwork::new(2);
        net.stamp(Some(0), Some(1), Complex::real(1.0 / 50.0));
        let np = net.to_nport(&[0, 1], 50.0);
        assert!((np.s(0, 0).unwrap() - Complex::real(1.0 / 3.0)).abs() < 1e-12);
        assert!((np.s(1, 0).unwrap() - Complex::real(2.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn node_network_internal_elimination() {
        // Two 25 Ω resistors in series through an internal node equal one 50 Ω.
        let mut net = NodeNetwork::new(3);
        net.stamp(Some(0), Some(2), Complex::real(1.0 / 25.0));
        net.stamp(Some(2), Some(1), Complex::real(1.0 / 25.0));
        let np = net.to_nport(&[0, 1], 50.0);
        assert!((np.s(0, 0).unwrap() - Complex::real(1.0 / 3.0)).abs() < 1e-12);
    }
}
