//! LC ladder filter synthesis: Butterworth and Chebyshev lowpass
//! prototypes with the standard lowpass→bandpass transformation.
//!
//! A GNSS antenna module puts a pre-filter around the LNA to survive
//! out-of-band blockers; this module synthesizes those filters from
//! specifications and evaluates them with either ideal or finite-Q
//! catalog elements, so the rejection-versus-insertion-loss trade is
//! visible in the same noise framework as the rest of the design.

use crate::component::{Capacitor, Component, Inductor};
use rfkit_net::{Abcd, NoisyAbcd};
use rfkit_num::units::angular;
use rfkit_num::Complex;

/// Filter approximation family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FilterFamily {
    /// Maximally flat passband (Butterworth).
    Butterworth,
    /// Equal-ripple passband with the given ripple in dB.
    Chebyshev {
        /// Passband ripple (dB, > 0).
        ripple_db: f64,
    },
}

/// Normalized lowpass prototype g-values (g1..gN) for a doubly terminated
/// ladder with g0 = 1.
///
/// # Panics
///
/// Panics for `order == 0` or non-positive Chebyshev ripple.
pub fn prototype_g_values(family: FilterFamily, order: usize) -> Vec<f64> {
    assert!(order >= 1, "filter order must be at least 1");
    match family {
        FilterFamily::Butterworth => (1..=order)
            .map(|k| 2.0 * ((2 * k - 1) as f64 * std::f64::consts::PI / (2 * order) as f64).sin())
            .collect(),
        FilterFamily::Chebyshev { ripple_db } => {
            assert!(ripple_db > 0.0, "Chebyshev ripple must be positive");
            let n = order as f64;
            let beta = (1.0 / (10f64.powf(ripple_db / 10.0) - 1.0).sqrt()).asinh() / n * 2.0;
            // Standard recursion (Matthaei/Young/Jones).
            let gamma = (beta / 2.0).sinh();
            let a: Vec<f64> = (1..=order)
                .map(|k| ((2 * k - 1) as f64 * std::f64::consts::PI / (2.0 * n)).sin())
                .collect();
            let b: Vec<f64> = (1..=order)
                .map(|k| gamma * gamma + (k as f64 * std::f64::consts::PI / n).sin().powi(2))
                .collect();
            let mut g = vec![0.0; order];
            g[0] = 2.0 * a[0] / gamma;
            for k in 1..order {
                g[k] = 4.0 * a[k - 1] * a[k] / (b[k - 1] * g[k - 1]);
            }
            g
        }
    }
}

/// The load-termination scaling `g_{N+1}` of the prototype (1 for
/// Butterworth and odd-order Chebyshev; > 1 for even-order Chebyshev).
pub fn prototype_load(family: FilterFamily, order: usize) -> f64 {
    match family {
        FilterFamily::Butterworth => 1.0,
        FilterFamily::Chebyshev { ripple_db } => {
            if order % 2 == 1 {
                1.0
            } else {
                let eps2 = 10f64.powf(ripple_db / 10.0) - 1.0;
                (eps2.sqrt() + (1.0 + eps2).sqrt()).powi(2)
            }
        }
    }
}

/// One resonator of a synthesized bandpass ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandpassElement {
    /// Inductance (H).
    pub l: f64,
    /// Capacitance (F).
    pub c: f64,
    /// `true` = series L-C branch in the signal path; `false` = shunt
    /// parallel L-C to ground.
    pub series: bool,
}

/// A synthesized bandpass ladder filter.
#[derive(Debug, Clone, PartialEq)]
pub struct BandpassFilter {
    /// The resonator ladder, input to output.
    pub elements: Vec<BandpassElement>,
    /// Geometric center frequency (Hz).
    pub f0: f64,
    /// Source-side system impedance (Ω).
    pub z0: f64,
    /// Required load termination (Ω): `z0` for Butterworth and odd-order
    /// Chebyshev; `z0·g_{N+1}` for even-order Chebyshev (an equal-ripple
    /// response of even order cannot be doubly matched to equal
    /// terminations).
    pub z_load: f64,
}

impl BandpassFilter {
    /// Synthesizes an `order`-resonator bandpass between `f_lo` and `f_hi`
    /// (−3 dB / ripple band edges) in a `z0` system. The first element is a
    /// series resonator.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < f_lo < f_hi` and `z0 > 0`.
    pub fn synthesize(
        family: FilterFamily,
        order: usize,
        f_lo: f64,
        f_hi: f64,
        z0: f64,
    ) -> BandpassFilter {
        assert!(f_lo > 0.0 && f_hi > f_lo, "need 0 < f_lo < f_hi");
        assert!(z0 > 0.0, "system impedance must be positive");
        let f0 = (f_lo * f_hi).sqrt();
        let w0 = angular(f0);
        let fbw = (f_hi - f_lo) / f0; // fractional bandwidth
        let g = prototype_g_values(family, order);
        let z_load = z0 * prototype_load(family, order);
        let elements = g
            .iter()
            .enumerate()
            .map(|(k, &gk)| {
                if k % 2 == 0 {
                    // Series prototype inductor → series L-C resonator.
                    let l = gk * z0 / (w0 * fbw);
                    BandpassElement {
                        l,
                        c: 1.0 / (w0 * w0 * l),
                        series: true,
                    }
                } else {
                    // Shunt prototype capacitor → shunt parallel L-C.
                    let c = gk / (w0 * fbw * z0);
                    BandpassElement {
                        l: 1.0 / (w0 * w0 * c),
                        c,
                        series: false,
                    }
                }
            })
            .collect();
        BandpassFilter {
            elements,
            f0,
            z0,
            z_load,
        }
    }

    /// The ideal (lossless) chain matrix at `freq_hz`.
    pub fn abcd_ideal(&self, freq_hz: f64) -> Abcd {
        let w = angular(freq_hz);
        let mut chain = Abcd::through();
        for e in &self.elements {
            let next = if e.series {
                let z = Complex::imag(w * e.l - 1.0 / (w * e.c));
                Abcd::series_impedance(z)
            } else {
                let y = Complex::imag(w * e.c - 1.0 / (w * e.l));
                Abcd::shunt_admittance(y)
            };
            chain = chain.cascade(&next);
        }
        chain
    }

    /// The filter with finite-Q catalog parts (0402 models) as a noisy
    /// two-port at `freq_hz` and temperature `temp` kelvin. Insertion loss
    /// and its noise contribution come out of the component ESR models.
    pub fn noisy_two_port(&self, freq_hz: f64, temp: f64) -> NoisyAbcd {
        let mut chain = NoisyAbcd::through();
        for e in &self.elements {
            let zl = Inductor::chip_0402(e.l).impedance(freq_hz);
            let zc = Capacitor::chip_0402(e.c).impedance(freq_hz);
            let next = if e.series {
                NoisyAbcd::passive_series(zl + zc, temp)
            } else {
                // Parallel L ∥ C to ground.
                let y = zl.recip() + zc.recip();
                NoisyAbcd::passive_shunt(y, temp)
            };
            chain = chain.cascade(&next);
        }
        chain
    }

    /// The filter with *tuned* finite-Q resonators: ideal L/C values plus
    /// the series/shunt loss a quality factor implies
    /// (`R = ωL/Q_L + 1/(ωC·Q_C)` per series branch and dually for shunt
    /// branches). This is the textbook finite-Q analysis — resonators stay
    /// on frequency, only the loss enters — as opposed to
    /// [`BandpassFilter::noisy_two_port`], which uses full catalog parts
    /// with their parasitic detuning.
    pub fn noisy_two_port_q(&self, freq_hz: f64, q_l: f64, q_c: f64, temp: f64) -> NoisyAbcd {
        let w = angular(freq_hz);
        let mut chain = NoisyAbcd::through();
        for e in &self.elements {
            let next = if e.series {
                let r = w * e.l / q_l + 1.0 / (w * e.c * q_c);
                let z = Complex::new(r, w * e.l - 1.0 / (w * e.c));
                NoisyAbcd::passive_series(z, temp)
            } else {
                let g = w * e.c / q_c + 1.0 / (w * e.l * q_l);
                let y = Complex::new(g, w * e.c - 1.0 / (w * e.l));
                NoisyAbcd::passive_shunt(y, temp)
            };
            chain = chain.cascade(&next);
        }
        chain
    }

    /// Ideal transducer |S21| in dB at `freq_hz`, between the design
    /// terminations (`z0` source, [`BandpassFilter::z_load`] load).
    pub fn s21_db_ideal(&self, freq_hz: f64) -> f64 {
        let s = self
            .abcd_ideal(freq_hz)
            .to_s(self.z0)
            .expect("ladder always convertible");
        if (self.z_load - self.z0).abs() < 1e-9 {
            return rfkit_num::units::db_from_amplitude_ratio(s.s21().abs());
        }
        // Even-order Chebyshev: evaluate transducer gain into the scaled
        // load termination.
        let gamma_l = rfkit_net::gains::reflection_coefficient(Complex::real(self.z_load), self.z0);
        let gt = rfkit_net::gains::transducer_gain(&s, Complex::ZERO, gamma_l);
        rfkit_num::units::db_from_power_ratio(gt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfkit_num::units::T0_KELVIN;

    #[test]
    fn butterworth_g_values_match_tables() {
        // Classic N = 3: g = [1, 2, 1]; N = 5: [0.618, 1.618, 2, 1.618, 0.618].
        let g3 = prototype_g_values(FilterFamily::Butterworth, 3);
        assert!((g3[0] - 1.0).abs() < 1e-12);
        assert!((g3[1] - 2.0).abs() < 1e-12);
        assert!((g3[2] - 1.0).abs() < 1e-12);
        let g5 = prototype_g_values(FilterFamily::Butterworth, 5);
        for (got, want) in g5.iter().zip([0.6180, 1.6180, 2.0, 1.6180, 0.6180]) {
            assert!((got - want).abs() < 1e-3, "{got} vs {want}");
        }
    }

    #[test]
    fn chebyshev_g_values_match_tables() {
        // 0.5 dB ripple, N = 3: g = [1.5963, 1.0967, 1.5963].
        let g = prototype_g_values(FilterFamily::Chebyshev { ripple_db: 0.5 }, 3);
        for (got, want) in g.iter().zip([1.5963, 1.0967, 1.5963]) {
            assert!((got - want).abs() < 1e-3, "{got} vs {want}");
        }
        assert!(
            (prototype_load(FilterFamily::Chebyshev { ripple_db: 0.5 }, 3) - 1.0).abs() < 1e-12
        );
    }

    fn gnss_filter(order: usize) -> BandpassFilter {
        BandpassFilter::synthesize(FilterFamily::Butterworth, order, 1.1e9, 1.7e9, 50.0)
    }

    #[test]
    fn resonators_tune_to_center() {
        let f = gnss_filter(3);
        for e in &f.elements {
            let fr = 1.0 / (2.0 * std::f64::consts::PI * (e.l * e.c).sqrt());
            assert!((fr - f.f0).abs() / f.f0 < 1e-12, "resonator at {fr}");
        }
        assert!((f.f0 - (1.1e9_f64 * 1.7e9).sqrt()).abs() < 1.0);
    }

    #[test]
    fn passband_flat_and_edges_at_3db() {
        let f = gnss_filter(3);
        // Center: lossless and matched → ~0 dB.
        assert!(f.s21_db_ideal(f.f0).abs() < 0.01);
        // Band edges: −3 dB for Butterworth.
        for edge in [1.1e9, 1.7e9] {
            let il = f.s21_db_ideal(edge);
            assert!((il + 3.01).abs() < 0.1, "edge loss {il} dB at {edge}");
        }
    }

    #[test]
    fn stopband_rejection_grows_with_order() {
        let f3 = gnss_filter(3);
        let f5 = gnss_filter(5);
        // An 800 MHz cellular blocker.
        let r3 = f3.s21_db_ideal(0.8e9);
        let r5 = f5.s21_db_ideal(0.8e9);
        assert!(r3 < -15.0, "order 3 rejection {r3} dB");
        assert!(
            r5 < r3 - 10.0,
            "order 5 must reject much more: {r5} vs {r3}"
        );
    }

    #[test]
    fn butterworth_rolloff_rate() {
        // Far out of band, rolloff ≈ 20·N dB/decade on the lowpass-equivalent
        // variable; just check monotone deep rejection.
        let f = gnss_filter(3);
        let r1 = f.s21_db_ideal(0.5e9);
        let r2 = f.s21_db_ideal(0.25e9);
        assert!(r2 < r1 - 15.0, "{r2} vs {r1}");
    }

    #[test]
    fn chebyshev_ripples_but_rejects_harder() {
        let cheb = BandpassFilter::synthesize(
            FilterFamily::Chebyshev { ripple_db: 1.0 },
            3,
            1.1e9,
            1.7e9,
            50.0,
        );
        let butt = gnss_filter(3);
        // In the passband the Chebyshev stays within its 1 dB ripple.
        for f in [1.2e9, 1.4e9, 1.6e9] {
            let il = cheb.s21_db_ideal(f);
            assert!(
                il > -1.05 && il <= 0.01,
                "ripple bound violated: {il} dB at {f}"
            );
        }
        // Deep in the stopband the equal-ripple design out-rejects the
        // maximally-flat one (same ripple-band edges; the Chebyshev −3 dB
        // band is a little wider, so compare well away from the edge).
        assert!(
            cheb.s21_db_ideal(0.6e9) < butt.s21_db_ideal(0.6e9) - 3.0,
            "{} vs {}",
            cheb.s21_db_ideal(0.6e9),
            butt.s21_db_ideal(0.6e9)
        );
    }

    #[test]
    fn finite_q_adds_insertion_loss_and_noise() {
        let f = gnss_filter(3);
        let noisy = f.noisy_two_port(1.4e9, T0_KELVIN);
        let s = noisy.abcd.to_s(50.0).unwrap();
        let il = rfkit_num::units::db_from_amplitude_ratio(s.s21().abs());
        // Catalog 0402 parts (Q ≈ 30–40 inductors plus parasitic detuning):
        // a wide LC bandpass loses a few dB — the very reason GNSS modules
        // place this filter *after* the first LNA stage.
        assert!(il < -0.2 && il > -5.0, "insertion loss {il} dB");
        // A passive network at T0 obeys F = 1/GA exactly.
        let ga = rfkit_net::gains::available_gain(&s, Complex::ZERO);
        let nf = noisy
            .noise_params(50.0)
            .unwrap()
            .noise_factor(Complex::ZERO);
        assert!(
            (nf - 1.0 / ga).abs() < 1e-6 * nf,
            "F {nf} vs 1/GA {}",
            1.0 / ga
        );
    }

    #[test]
    fn tuned_finite_q_loss_is_textbook() {
        // Midband IL of a doubly terminated ladder:
        // IL ≈ 4.34·Σg / (FBW·Qu) dB (Cohn's formula).
        let f = gnss_filter(3);
        let q = 40.0;
        let tp = f.noisy_two_port_q(f.f0, q, 10.0 * q, T0_KELVIN);
        let s = tp.abcd.to_s(50.0).unwrap();
        let il = -rfkit_num::units::db_from_amplitude_ratio(s.s21().abs());
        let fbw = (1.7e9 - 1.1e9) / f.f0;
        let g_sum: f64 = prototype_g_values(FilterFamily::Butterworth, 3)
            .iter()
            .sum();
        // Effective Qu dominated by the inductors when Qc >> Ql.
        let expect = 4.34 * g_sum / (fbw * q);
        assert!(
            (il - expect).abs() < 0.4 * expect,
            "IL {il} dB vs Cohn {expect} dB"
        );
        // And NF == its available-gain loss (passive at T0).
        let nf = tp.noise_params(50.0).unwrap().noise_factor(Complex::ZERO);
        let ga = rfkit_net::gains::available_gain(&s, Complex::ZERO);
        assert!((nf - 1.0 / ga).abs() < 1e-6 * nf);
    }

    #[test]
    fn catalog_parts_lossier_than_tuned_equivalent() {
        // Parasitic detuning costs extra loss beyond the pure-Q analysis.
        let f = gnss_filter(3);
        let il_of = |tp: NoisyAbcd| {
            -rfkit_num::units::db_from_amplitude_ratio(tp.abcd.to_s(50.0).unwrap().s21().abs())
        };
        let catalog = il_of(f.noisy_two_port(f.f0, T0_KELVIN));
        let tuned = il_of(f.noisy_two_port_q(f.f0, 40.0, 400.0, T0_KELVIN));
        assert!(catalog > tuned, "catalog {catalog} vs tuned {tuned} dB");
    }

    #[test]
    fn filter_is_reciprocal_and_symmetric_for_odd_orders() {
        let f = gnss_filter(3);
        let s = f.abcd_ideal(1.3e9).to_s(50.0).unwrap();
        assert!(s.is_reciprocal(1e-12));
        // Symmetric ladder: S11 == S22.
        assert!((s.s11() - s.s22()).abs() < 1e-9);
    }

    #[test]
    fn even_order_chebyshev_needs_scaled_load() {
        let cheb4 = BandpassFilter::synthesize(
            FilterFamily::Chebyshev { ripple_db: 0.5 },
            4,
            1.1e9,
            1.7e9,
            50.0,
        );
        // g5 > 1: the load termination must be scaled.
        assert!(cheb4.z_load > 60.0, "z_load = {}", cheb4.z_load);
        // Into the correct termination the passband obeys the ripple bound.
        for f in [1.25e9, 1.4e9, 1.55e9] {
            let il = cheb4.s21_db_ideal(f);
            assert!(il > -0.55 && il <= 0.01, "ripple violated: {il} dB at {f}");
        }
        // Odd orders terminate in z0.
        let cheb3 = BandpassFilter::synthesize(
            FilterFamily::Chebyshev { ripple_db: 0.5 },
            3,
            1.1e9,
            1.7e9,
            50.0,
        );
        assert!((cheb3.z_load - 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "order")]
    fn zero_order_rejected() {
        prototype_g_values(FilterFamily::Butterworth, 0);
    }
}
