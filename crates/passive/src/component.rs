//! Lumped R, L, C models with parasitics and frequency dispersion.
//!
//! The paper stresses that the passive elements were defined "using
//! frequency dispersion of their parameters as Q, ESR, etc." — at 1.5 GHz a
//! chip capacitor is far from ideal: its electrodes add series inductance
//! (self-resonance), its ESR rises with the skin effect and its dielectric
//! adds a loss proportional to frequency. These models capture exactly
//! that, and every element can hand back a [`NoisyAbcd`] so lossy matching
//! parts contribute thermal noise to the amplifier analysis.

use rfkit_net::NoisyAbcd;
use rfkit_num::units::angular;
use rfkit_num::Complex;
use std::f64::consts::PI;

/// How a two-terminal element is inserted into a ladder network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// In series with the signal path.
    Series,
    /// Shunt from the signal path to ground.
    Shunt,
}

/// Common behaviour of all two-terminal component models.
pub trait Component {
    /// Terminal impedance at `freq_hz` (ohms).
    fn impedance(&self, freq_hz: f64) -> Complex;

    /// Quality factor `|Im(Z)| / Re(Z)` at `freq_hz`; infinite for a
    /// lossless element.
    fn q_factor(&self, freq_hz: f64) -> f64 {
        let z = self.impedance(freq_hz);
        if z.re <= 0.0 {
            f64::INFINITY
        } else {
            z.im.abs() / z.re
        }
    }

    /// Equivalent series resistance `Re(Z)` at `freq_hz` (ohms).
    fn esr(&self, freq_hz: f64) -> f64 {
        self.impedance(freq_hz).re
    }

    /// The element as a noisy chain two-port at `freq_hz`, in the given
    /// orientation, with its resistive part at temperature `temp` kelvin.
    fn two_port(&self, freq_hz: f64, orientation: Orientation, temp: f64) -> NoisyAbcd {
        let z = self.impedance(freq_hz);
        match orientation {
            Orientation::Series => NoisyAbcd::passive_series(z, temp),
            Orientation::Shunt => NoisyAbcd::passive_shunt(z.recip(), temp),
        }
    }
}

/// A multilayer chip capacitor with ESL, skin-effect ESR and dielectric
/// loss.
///
/// Impedance model: `Z = ESR(f) + j(ωL_s − 1/(ωC))` where
/// `ESR(f) = r_electrode·sqrt(f/1 GHz) + tanδ/(ωC)`.
///
/// # Examples
///
/// ```
/// use rfkit_passive::{Capacitor, Component};
/// let c = Capacitor::chip_0402(10e-12);
/// // Below self-resonance the reactance is capacitive…
/// assert!(c.impedance(1.0e9).im < 0.0);
/// // …and the part self-resonates somewhere in the GHz range.
/// let srf = c.self_resonance_hz();
/// assert!(srf > 1.5e9 && srf < 10e9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Capacitor {
    /// Nominal capacitance (F).
    pub capacitance: f64,
    /// Equivalent series inductance (H).
    pub esl: f64,
    /// Electrode resistance coefficient at 1 GHz (Ω); scales as `sqrt(f)`.
    pub r_electrode_1ghz: f64,
    /// Dielectric loss tangent (dimensionless).
    pub tan_delta: f64,
}

impl Capacitor {
    /// An ideal capacitor (no parasitics).
    pub fn ideal(capacitance: f64) -> Self {
        Capacitor {
            capacitance,
            esl: 0.0,
            r_electrode_1ghz: 0.0,
            tan_delta: 0.0,
        }
    }

    /// Typical 0402 C0G/NP0 chip capacitor: ESL ≈ 0.3 nH,
    /// electrode ESR ≈ 0.08 Ω at 1 GHz, tanδ ≈ 5·10⁻⁴.
    pub fn chip_0402(capacitance: f64) -> Self {
        Capacitor {
            capacitance,
            esl: 0.3e-9,
            r_electrode_1ghz: 0.08,
            tan_delta: 5e-4,
        }
    }

    /// Typical 0603 chip capacitor (slightly larger ESL).
    pub fn chip_0603(capacitance: f64) -> Self {
        Capacitor {
            capacitance,
            esl: 0.45e-9,
            r_electrode_1ghz: 0.06,
            tan_delta: 5e-4,
        }
    }

    /// Series self-resonant frequency `1/(2π√(L·C))`; infinite for zero ESL.
    pub fn self_resonance_hz(&self) -> f64 {
        if self.esl <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / (2.0 * PI * (self.esl * self.capacitance).sqrt())
        }
    }
}

impl Component for Capacitor {
    fn impedance(&self, freq_hz: f64) -> Complex {
        assert!(freq_hz > 0.0, "frequency must be positive");
        let w = angular(freq_hz);
        let esr = self.r_electrode_1ghz * (freq_hz / 1e9).sqrt()
            + self.tan_delta / (w * self.capacitance);
        Complex::new(esr, w * self.esl - 1.0 / (w * self.capacitance))
    }
}

/// A wirewound/multilayer chip inductor with skin-effect series resistance
/// and a parallel self-capacitance.
///
/// Impedance model: `(R(f) + jωL) ∥ 1/(jωC_par)` with
/// `R(f) = R_dc·(1 + sqrt(f/f_skin))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Inductor {
    /// Nominal inductance (H).
    pub inductance: f64,
    /// DC winding resistance (Ω).
    pub r_dc: f64,
    /// Skin-effect corner frequency (Hz); R has doubled at this frequency.
    pub f_skin: f64,
    /// Parallel self-capacitance (F).
    pub c_par: f64,
}

impl Inductor {
    /// An ideal inductor (no parasitics).
    pub fn ideal(inductance: f64) -> Self {
        Inductor {
            inductance,
            r_dc: 0.0,
            f_skin: f64::INFINITY,
            c_par: 0.0,
        }
    }

    /// Typical 0402 wirewound RF inductor: Q peaks near 60–100 at
    /// 1–2 GHz for nH-range values.
    pub fn chip_0402(inductance: f64) -> Self {
        Inductor {
            inductance,
            // Scale DC resistance with inductance (more turns, thinner wire):
            // ≈ 0.1 Ω per nH with a 0.045 Ω floor.
            r_dc: 0.045 + 0.1 * (inductance / 1e-9),
            f_skin: 500e6,
            c_par: 0.08e-12,
        }
    }

    /// Typical 0603 multilayer inductor (lossier, lower SRF margin).
    pub fn chip_0603(inductance: f64) -> Self {
        Inductor {
            inductance,
            r_dc: 0.06 + 0.13 * (inductance / 1e-9),
            f_skin: 250e6,
            c_par: 0.12e-12,
        }
    }

    /// Parallel self-resonant frequency; infinite for zero `c_par`.
    pub fn self_resonance_hz(&self) -> f64 {
        if self.c_par <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / (2.0 * PI * (self.inductance * self.c_par).sqrt())
        }
    }

    /// Series branch resistance at `freq_hz` including skin effect.
    pub fn series_resistance(&self, freq_hz: f64) -> f64 {
        if self.f_skin.is_infinite() {
            self.r_dc
        } else {
            self.r_dc * (1.0 + (freq_hz / self.f_skin).sqrt())
        }
    }
}

impl Component for Inductor {
    fn impedance(&self, freq_hz: f64) -> Complex {
        assert!(freq_hz > 0.0, "frequency must be positive");
        let w = angular(freq_hz);
        let z_series = Complex::new(self.series_resistance(freq_hz), w * self.inductance);
        if self.c_par <= 0.0 {
            return z_series;
        }
        let y_par = Complex::imag(w * self.c_par);
        (z_series.recip() + y_par).recip()
    }
}

/// A thick-film chip resistor with series inductance and parallel
/// capacitance parasitics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resistor {
    /// Nominal resistance (Ω).
    pub resistance: f64,
    /// Series parasitic inductance (H).
    pub l_series: f64,
    /// Parallel parasitic capacitance (F).
    pub c_par: f64,
}

impl Resistor {
    /// An ideal resistor.
    pub fn ideal(resistance: f64) -> Self {
        Resistor {
            resistance,
            l_series: 0.0,
            c_par: 0.0,
        }
    }

    /// Typical 0402 chip resistor: ≈ 0.4 nH series, ≈ 40 fF parallel.
    pub fn chip_0402(resistance: f64) -> Self {
        Resistor {
            resistance,
            l_series: 0.4e-9,
            c_par: 0.04e-12,
        }
    }
}

impl Component for Resistor {
    fn impedance(&self, freq_hz: f64) -> Complex {
        assert!(freq_hz > 0.0, "frequency must be positive");
        let w = angular(freq_hz);
        let r_branch = Complex::new(self.resistance, 0.0);
        let with_c = if self.c_par > 0.0 {
            (r_branch.recip() + Complex::imag(w * self.c_par)).recip()
        } else {
            r_branch
        };
        with_c + Complex::imag(w * self.l_series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfkit_num::units::T0_KELVIN;

    #[test]
    fn ideal_capacitor_reactance() {
        let c = Capacitor::ideal(10e-12);
        let z = c.impedance(1.59155e9); // ω ≈ 1e10
        assert!(z.re.abs() < 1e-12);
        assert!((z.im - (-10.0)).abs() < 0.01);
        assert!(c.q_factor(1e9).is_infinite());
        assert!(c.self_resonance_hz().is_infinite());
    }

    #[test]
    fn chip_capacitor_self_resonates() {
        let c = Capacitor::chip_0402(10e-12);
        let srf = c.self_resonance_hz();
        // sqrt(0.3 nH · 10 pF) → ≈ 2.9 GHz
        assert!((srf - 2.906e9).abs() / 2.906e9 < 0.01);
        // Below SRF capacitive, above inductive.
        assert!(c.impedance(srf * 0.5).im < 0.0);
        assert!(c.impedance(srf * 2.0).im > 0.0);
        // At SRF the impedance is ESR only.
        let z = c.impedance(srf);
        assert!(z.im.abs() < 0.02 * z.re.max(0.1));
    }

    #[test]
    fn capacitor_esr_rises_with_frequency() {
        let c = Capacitor::chip_0402(10e-12);
        // Electrode part dominates at GHz: sqrt scaling.
        let e1 = c.esr(1e9);
        let e4 = c.esr(4e9);
        assert!(e4 > e1);
        assert!(c.esr(2.0e9) > 0.08, "electrode + dielectric ESR");
    }

    #[test]
    fn capacitor_q_is_realistic_at_gnss() {
        // A 10 pF 0402 at 1.5 GHz: Q in the few-hundreds.
        let c = Capacitor::chip_0402(10e-12);
        let q = c.q_factor(1.5e9);
        assert!(q > 30.0 && q < 2000.0, "Q = {q}");
    }

    #[test]
    fn ideal_inductor_reactance() {
        let l = Inductor::ideal(5e-9);
        let z = l.impedance(1e9);
        assert!((z.im - angular(1e9) * 5e-9).abs() < 1e-9);
        assert_eq!(z.re, 0.0);
    }

    #[test]
    fn chip_inductor_q_peaks_and_falls() {
        let l = Inductor::chip_0402(6.8e-9);
        let q_low = l.q_factor(100e6);
        let q_mid = l.q_factor(1.5e9);
        let srf = l.self_resonance_hz();
        // SRF for 6.8 nH / 0.08 pF ≈ 6.8 GHz.
        assert!(srf > 4e9 && srf < 10e9, "srf = {srf}");
        // Q should be tens at GNSS frequencies and collapse at SRF.
        assert!(q_mid > 20.0 && q_mid < 300.0, "Q(1.5 GHz) = {q_mid}");
        assert!(q_mid > q_low, "Q rises from LF toward its peak");
        let q_srf = l.q_factor(srf);
        assert!(q_srf < 1.0, "Q at SRF = {q_srf}");
    }

    #[test]
    fn inductor_becomes_capacitive_above_srf() {
        let l = Inductor::chip_0402(10e-9);
        let srf = l.self_resonance_hz();
        assert!(l.impedance(srf * 0.5).im > 0.0);
        assert!(l.impedance(srf * 1.5).im < 0.0);
    }

    #[test]
    fn skin_effect_doubles_resistance_at_corner() {
        let l = Inductor {
            inductance: 10e-9,
            r_dc: 0.2,
            f_skin: 50e6,
            c_par: 0.0,
        };
        assert!((l.series_resistance(50e6) - 0.4).abs() < 1e-12);
        assert!((l.series_resistance(200e6) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn resistor_parasitics_matter_at_gigahertz() {
        let r = Resistor::chip_0402(50.0);
        let z_lf = r.impedance(1e6);
        assert!((z_lf.re - 50.0).abs() < 0.1);
        let z_hf = r.impedance(3e9);
        // Parasitic L and C make it reactive at RF.
        assert!(z_hf.im.abs() > 1.0);
    }

    #[test]
    fn two_port_series_orientation_matches_impedance() {
        let c = Capacitor::chip_0402(5.6e-12);
        let tp = c.two_port(1.5e9, Orientation::Series, T0_KELVIN);
        assert!((tp.abcd.b() - c.impedance(1.5e9)).abs() < 1e-12);
        let sh = c.two_port(1.5e9, Orientation::Shunt, T0_KELVIN);
        assert!((sh.abcd.c() - c.impedance(1.5e9).recip()).abs() < 1e-12);
    }

    #[test]
    fn lossy_shunt_inductor_contributes_noise() {
        let l = Inductor::chip_0402(4.7e-9);
        let tp = l.two_port(1.5e9, Orientation::Shunt, T0_KELVIN);
        let f = tp.noise_params(50.0).unwrap().noise_factor(Complex::ZERO);
        assert!(f > 1.0, "a finite-Q inductor must add noise");
        assert!(f < 1.2, "but not much: F = {f}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_is_rejected() {
        Capacitor::ideal(1e-12).impedance(0.0);
    }
}
