//! Microstrip transmission-line models with frequency dispersion.
//!
//! Static characteristic impedance and effective permittivity follow
//! Hammerstad–Jensen; the frequency dispersion of `εeff` follows
//! Kirschning–Jansen, and losses combine a skin-effect conductor term with
//! the standard dielectric-loss formula. The result feeds the amplifier's
//! matching/bias networks as a lossy [`rfkit_net::Abcd`] section — exactly
//! the "transmission lines … with frequency dispersion" ingredient of the
//! paper.

use rfkit_net::{Abcd, NoisyAbcd};
use rfkit_num::units::{angular, C0, MU0};
use rfkit_num::Complex;
use std::f64::consts::PI;

/// Free-space wave impedance (Ω).
const ETA0: f64 = 376.730_313_668;

/// A microstrip substrate definition.
///
/// The default values model Rogers RO4350B, a common choice for GNSS LNA
/// boards: εr = 3.66, h = 0.508 mm, tanδ = 0.0037, 35 µm copper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Substrate {
    /// Relative permittivity of the dielectric.
    pub eps_r: f64,
    /// Substrate height (m).
    pub height: f64,
    /// Dielectric loss tangent.
    pub tan_delta: f64,
    /// Conductor conductivity (S/m).
    pub conductivity: f64,
    /// Conductor thickness (m).
    pub thickness: f64,
}

impl Default for Substrate {
    fn default() -> Self {
        Substrate {
            eps_r: 3.66,
            height: 0.508e-3,
            tan_delta: 0.0037,
            conductivity: 5.8e7,
            thickness: 35e-6,
        }
    }
}

impl Substrate {
    /// FR-4, the cheap default laminate (εr ≈ 4.4, lossy).
    pub fn fr4() -> Self {
        Substrate {
            eps_r: 4.4,
            height: 1.6e-3,
            tan_delta: 0.02,
            conductivity: 5.8e7,
            thickness: 35e-6,
        }
    }

    /// Rogers RO4350B (the [`Default`]).
    pub fn ro4350b() -> Self {
        Substrate::default()
    }
}

/// A microstrip line segment on a [`Substrate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Microstrip {
    /// Substrate the line is printed on.
    pub substrate: Substrate,
    /// Strip width (m).
    pub width: f64,
    /// Physical length (m).
    pub length: f64,
}

impl Microstrip {
    /// Creates a line of the given width and length.
    ///
    /// # Panics
    ///
    /// Panics on non-positive width or negative length.
    pub fn new(substrate: Substrate, width: f64, length: f64) -> Self {
        assert!(width > 0.0, "strip width must be positive");
        assert!(length >= 0.0, "length must be non-negative");
        Microstrip {
            substrate,
            width,
            length,
        }
    }

    /// Synthesizes the strip width for a target static characteristic
    /// impedance by bisection on the Hammerstad–Jensen analysis.
    ///
    /// # Panics
    ///
    /// Panics if `z0_target` is outside the achievable 5–250 Ω window.
    pub fn for_impedance(substrate: Substrate, z0_target: f64, length: f64) -> Self {
        assert!(
            (5.0..=250.0).contains(&z0_target),
            "target impedance {z0_target} Ω outside synthesizable range"
        );
        // Z0 decreases monotonically with width; bisect u = w/h over a wide span.
        let h = substrate.height;
        let (mut lo, mut hi) = (0.01 * h, 100.0 * h);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            let line = Microstrip::new(substrate, mid, length);
            if line.z0_static() > z0_target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Microstrip::new(substrate, 0.5 * (lo + hi), length)
    }

    /// Static (quasi-TEM) effective permittivity, Hammerstad–Jensen.
    pub fn eps_eff_static(&self) -> f64 {
        let er = self.substrate.eps_r;
        let u = self.width / self.substrate.height;
        let a = 1.0
            + (1.0 / 49.0) * ((u.powi(4) + (u / 52.0).powi(2)) / (u.powi(4) + 0.432)).ln()
            + (1.0 / 18.7) * (1.0 + (u / 18.1).powi(3)).ln();
        let b = 0.564 * ((er - 0.9) / (er + 3.0)).powf(0.053);
        (er + 1.0) / 2.0 + (er - 1.0) / 2.0 * (1.0 + 10.0 / u).powf(-a * b)
    }

    /// Static characteristic impedance (Ω), Hammerstad–Jensen.
    pub fn z0_static(&self) -> f64 {
        let u = self.width / self.substrate.height;
        let fu = 6.0 + (2.0 * PI - 6.0) * (-(30.666 / u).powf(0.7528)).exp();
        let z01 = ETA0 / (2.0 * PI) * ((fu / u) + (1.0 + (2.0 / u).powi(2)).sqrt()).ln();
        z01 / self.eps_eff_static().sqrt()
    }

    /// Frequency-dependent effective permittivity, Kirschning–Jansen.
    ///
    /// # Panics
    ///
    /// Panics on non-positive frequency.
    pub fn eps_eff(&self, freq_hz: f64) -> f64 {
        assert!(freq_hz > 0.0, "frequency must be positive");
        let er = self.substrate.eps_r;
        let e0 = self.eps_eff_static();
        let u = self.width / self.substrate.height;
        // Normalized frequency in GHz·cm.
        let fn_ghz_cm = freq_hz / 1e9 * self.substrate.height * 100.0;
        let p1 = 0.27488 + (0.6315 + 0.525 / (1.0 + 0.157 * fn_ghz_cm).powi(20)) * u
            - 0.065683 * (-8.7513 * u).exp();
        let p2 = 0.33622 * (1.0 - (-0.03442 * er).exp());
        let p3 = 0.0363 * (-4.6 * u).exp() * (1.0 - (-(fn_ghz_cm / 3.87).powf(4.97)).exp());
        let p4 = 1.0 + 2.751 * (1.0 - (-(er / 15.916).powi(8)).exp());
        let p = p1 * p2 * ((0.1844 + p3 * p4) * 10.0 * fn_ghz_cm).powf(1.5763);
        er - (er - e0) / (1.0 + p)
    }

    /// Frequency-dependent characteristic impedance (Ω), using the
    /// Hammerstad–Jensen dispersion relation on top of the
    /// Kirschning–Jansen `εeff(f)`.
    pub fn z0(&self, freq_hz: f64) -> f64 {
        let e0 = self.eps_eff_static();
        let ef = self.eps_eff(freq_hz);
        self.z0_static() * (ef / e0).sqrt() * (e0 - 1.0) / (ef - 1.0)
    }

    /// Conductor attenuation (Np/m) from the skin effect, wide-strip
    /// approximation with a current-crowding factor.
    pub fn alpha_conductor(&self, freq_hz: f64) -> f64 {
        let rs = (PI * freq_hz * MU0 / self.substrate.conductivity).sqrt();
        // Wheeler-style correction for narrow strips: the effective width
        // exceeds the physical width by the fringing contribution.
        let w_eff = self.width
            + 1.25 * self.substrate.thickness / PI
                * (1.0 + (2.0 * self.substrate.height / self.substrate.thickness).ln());
        rs / (self.z0_static() * w_eff)
    }

    /// Dielectric attenuation (Np/m).
    pub fn alpha_dielectric(&self, freq_hz: f64) -> f64 {
        let er = self.substrate.eps_r;
        let ef = self.eps_eff(freq_hz);
        PI * freq_hz / C0 * er / ef.sqrt() * (ef - 1.0) / (er - 1.0) * self.substrate.tan_delta
    }

    /// Complex propagation constant `γ = α + jβ` (1/m) at `freq_hz`.
    pub fn gamma(&self, freq_hz: f64) -> Complex {
        let alpha = self.alpha_conductor(freq_hz) + self.alpha_dielectric(freq_hz);
        let beta = angular(freq_hz) * self.eps_eff(freq_hz).sqrt() / C0;
        Complex::new(alpha, beta)
    }

    /// Guided wavelength (m) at `freq_hz`.
    pub fn guided_wavelength(&self, freq_hz: f64) -> f64 {
        C0 / (freq_hz * self.eps_eff(freq_hz).sqrt())
    }

    /// Electrical length in degrees at `freq_hz`.
    pub fn electrical_length_deg(&self, freq_hz: f64) -> f64 {
        360.0 * self.length / self.guided_wavelength(freq_hz)
    }

    /// Chain matrix of the line at `freq_hz`.
    pub fn abcd(&self, freq_hz: f64) -> Abcd {
        Abcd::transmission_line(
            self.gamma(freq_hz),
            Complex::real(self.z0(freq_hz)),
            self.length,
        )
    }

    /// Noisy chain two-port of the line at `freq_hz`, with its losses at
    /// temperature `temp` kelvin.
    pub fn two_port(&self, freq_hz: f64, temp: f64) -> NoisyAbcd {
        NoisyAbcd::from_passive_abcd(&self.abcd(freq_hz), temp)
            .expect("transmission line always has a Y or Z form")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfkit_net::gains::transducer_gain;
    use rfkit_num::units::T0_KELVIN;

    fn line_50ohm() -> Microstrip {
        Microstrip::for_impedance(Substrate::ro4350b(), 50.0, 10e-3)
    }

    #[test]
    fn eps_eff_between_one_and_er() {
        let line = line_50ohm();
        let e = line.eps_eff_static();
        assert!(e > 1.0 && e < line.substrate.eps_r, "εeff = {e}");
    }

    #[test]
    fn z0_static_realistic_for_ro4350() {
        // On 0.508 mm RO4350B a 50 Ω line is ≈ 1.1 mm wide → w/h ≈ 2.2.
        let line = line_50ohm();
        assert!((line.z0_static() - 50.0).abs() < 0.05);
        let u = line.width / line.substrate.height;
        assert!(u > 1.5 && u < 3.0, "w/h = {u}");
    }

    #[test]
    fn z0_decreases_with_width() {
        let s = Substrate::ro4350b();
        let narrow = Microstrip::new(s, 0.2e-3, 1e-3);
        let wide = Microstrip::new(s, 2.0e-3, 1e-3);
        assert!(narrow.z0_static() > wide.z0_static());
    }

    #[test]
    fn synthesis_hits_target_over_range() {
        for target in [25.0, 50.0, 75.0, 100.0] {
            let line = Microstrip::for_impedance(Substrate::fr4(), target, 1e-3);
            assert!(
                (line.z0_static() - target).abs() < 0.1,
                "target {target}, got {}",
                line.z0_static()
            );
        }
    }

    #[test]
    fn dispersion_raises_eps_eff_with_frequency() {
        // Kirschning–Jansen: εeff(f) climbs from the static value toward εr.
        let line = line_50ohm();
        let e_static = line.eps_eff_static();
        let e_1g = line.eps_eff(1e9);
        let e_10g = line.eps_eff(10e9);
        let e_100g = line.eps_eff(100e9);
        assert!(e_1g >= e_static);
        assert!(e_10g > e_1g);
        assert!(e_100g > e_10g);
        assert!(e_100g < line.substrate.eps_r);
    }

    #[test]
    fn low_frequency_limit_matches_static() {
        let line = line_50ohm();
        assert!((line.eps_eff(1e6) - line.eps_eff_static()).abs() < 1e-3);
    }

    #[test]
    fn losses_increase_with_frequency() {
        let line = line_50ohm();
        assert!(line.alpha_conductor(4e9) > line.alpha_conductor(1e9));
        assert!(line.alpha_dielectric(4e9) > line.alpha_dielectric(1e9));
        // RO4350B at 1.5 GHz: total loss well under 1 dB/inch.
        let db_per_m = (line.alpha_conductor(1.5e9) + line.alpha_dielectric(1.5e9)) * 8.686;
        assert!(db_per_m > 0.1 && db_per_m < 10.0, "loss = {db_per_m} dB/m");
    }

    #[test]
    fn fr4_is_lossier_than_rogers() {
        let rogers = line_50ohm();
        let fr4 = Microstrip::for_impedance(Substrate::fr4(), 50.0, 10e-3);
        assert!(fr4.alpha_dielectric(1.5e9) > 3.0 * rogers.alpha_dielectric(1.5e9));
    }

    #[test]
    fn quarter_wave_transformer_behaviour() {
        // A λ/4 70.7 Ω line matches 100 Ω to 50 Ω.
        let s = Substrate::ro4350b();
        let mut line = Microstrip::for_impedance(s, 70.7, 1e-3);
        let f = 1.5e9;
        line.length = line.guided_wavelength(f) / 4.0;
        assert!((line.electrical_length_deg(f) - 90.0).abs() < 0.01);
        let zin = line.abcd(f).input_impedance(Complex::real(100.0));
        // Lossy line: close to Zc²/ZL but not exact.
        assert!((zin.re - 50.0).abs() < 1.5, "Re Zin = {}", zin.re);
        assert!(zin.im.abs() < 2.0);
    }

    #[test]
    fn matched_line_loss_equals_alpha() {
        let line = line_50ohm();
        let f = 1.5e9;
        let z0 = line.z0(f);
        let s = line.abcd(f).to_s(z0).unwrap();
        let expected_loss =
            (-(line.alpha_conductor(f) + line.alpha_dielectric(f)) * line.length).exp();
        assert!((s.s21().abs() - expected_loss).abs() < 1e-6);
        assert!(s.s11().abs() < 1e-9, "line referenced to its own Z0");
    }

    #[test]
    fn line_noise_figure_equals_its_loss() {
        // A matched lossy line at T0 has F = 1/G.
        let line = line_50ohm();
        let f = 1.5e9;
        let noisy = line.two_port(f, T0_KELVIN);
        let s = noisy.abcd.to_s(50.0).unwrap();
        let gt = transducer_gain(&s, Complex::ZERO, Complex::ZERO);
        let nf = noisy
            .noise_params(50.0)
            .unwrap()
            .noise_factor(Complex::ZERO);
        // GT ≈ GA for this nearly matched line.
        assert!(
            (nf - 1.0 / gt).abs() < 2e-3,
            "F = {nf}, 1/GT = {}",
            1.0 / gt
        );
    }

    #[test]
    fn electrical_length_scales_with_frequency() {
        let line = line_50ohm();
        let e1 = line.electrical_length_deg(1e9);
        let e2 = line.electrical_length_deg(2e9);
        // Slightly superlinear because εeff grows with f.
        assert!(e2 > 1.99 * e1 && e2 < 2.1 * e1);
    }

    #[test]
    #[should_panic(expected = "outside synthesizable")]
    fn synthesis_rejects_extreme_impedance() {
        Microstrip::for_impedance(Substrate::ro4350b(), 400.0, 1e-3);
    }
}
