//! # rfkit-passive
//!
//! Frequency-dispersive passive component models for RF design:
//!
//! * chip capacitors, inductors and resistors with ESR(f), Q(f), SRF and
//!   case-size parasitics ([`component`](crate::Component));
//! * IEC preferred-value series and snapping ([`ESeries`]);
//! * microstrip lines with Hammerstad–Jensen static parameters,
//!   Kirschning–Jansen dispersion and conductor/dielectric loss
//!   ([`microstrip`]);
//! * T-junction, resistive and Wilkinson splitters ([`tee`]);
//! * vendor-style catalogs with tolerances ([`library`]).
//!
//! Every lossy element can be converted to a [`rfkit_net::NoisyAbcd`], so
//! matching-network losses propagate into the amplifier's noise figure.
//!
//! ## Example
//!
//! ```
//! use rfkit_passive::{Capacitor, Component};
//!
//! let c = Capacitor::chip_0402(8.2e-12);
//! let q = c.q_factor(1.575e9);       // finite Q at GPS L1
//! assert!(q > 10.0 && q.is_finite());
//! let srf = c.self_resonance_hz();    // self-resonance from its ESL
//! assert!(srf > 1.575e9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod component;
mod eseries;
pub mod filter;
pub mod library;
pub mod microstrip;
pub mod tee;

pub use component::{Capacitor, Component, Inductor, Orientation, Resistor};
pub use eseries::ESeries;
pub use filter::{BandpassElement, BandpassFilter, FilterFamily};
pub use library::{CaseSize, ComponentLibrary};
pub use microstrip::{Microstrip, Substrate};
pub use tee::{resistive_splitter, NodeNetwork, TeeJunction, Wilkinson};
