//! IEC 60063 preferred number series (E12/E24/E48/E96).
//!
//! The optimizer explores a continuous design space, but a buildable
//! amplifier uses catalog values; the design flow snaps the optimum to the
//! nearest E-series value and re-verifies. This module provides the snap.

/// A standard component value series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ESeries {
    /// 12 values per decade (±10 % parts).
    E12,
    /// 24 values per decade (±5 % parts).
    E24,
    /// 48 values per decade (±2 % parts).
    E48,
    /// 96 values per decade (±1 % parts).
    E96,
}

const E12_VALUES: [f64; 12] = [1.0, 1.2, 1.5, 1.8, 2.2, 2.7, 3.3, 3.9, 4.7, 5.6, 6.8, 8.2];

const E24_VALUES: [f64; 24] = [
    1.0, 1.1, 1.2, 1.3, 1.5, 1.6, 1.8, 2.0, 2.2, 2.4, 2.7, 3.0, 3.3, 3.6, 3.9, 4.3, 4.7, 5.1, 5.6,
    6.2, 6.8, 7.5, 8.2, 9.1,
];

impl ESeries {
    /// The per-decade mantissas of this series (ascending, in `[1, 10)`).
    pub fn mantissas(self) -> Vec<f64> {
        match self {
            ESeries::E12 => E12_VALUES.to_vec(),
            ESeries::E24 => E24_VALUES.to_vec(),
            // E48/E96 are geometric by definition, rounded to 3 significant
            // digits per IEC 60063.
            ESeries::E48 => geometric_series(48),
            ESeries::E96 => geometric_series(96),
        }
    }

    /// Snaps `value` to the nearest series value (geometric distance).
    ///
    /// # Panics
    ///
    /// Panics if `value <= 0` — component values are strictly positive.
    pub fn snap(self, value: f64) -> f64 {
        assert!(value > 0.0, "component value must be positive");
        let exp = value.log10().floor();
        let mut best = f64::NAN;
        let mut best_err = f64::INFINITY;
        // Scan the decade below, at and above to handle boundary cases
        // (e.g. 0.97 should snap to 1.0 in the next decade).
        for e in [exp - 1.0, exp, exp + 1.0] {
            let scale = 10f64.powf(e);
            for m in self.mantissas() {
                let candidate = m * scale;
                let err = (candidate / value).ln().abs();
                if err < best_err {
                    best_err = err;
                    best = candidate;
                }
            }
        }
        best
    }

    /// All series values within `[lo, hi]` (inclusive), ascending.
    ///
    /// # Panics
    ///
    /// Panics if `lo <= 0` or `hi < lo`.
    pub fn values_in(self, lo: f64, hi: f64) -> Vec<f64> {
        assert!(lo > 0.0 && hi >= lo, "need 0 < lo <= hi");
        let mut out = Vec::new();
        let mut exp = lo.log10().floor() - 1.0;
        let top = hi.log10().ceil() + 1.0;
        while exp <= top {
            let scale = 10f64.powf(exp);
            for m in self.mantissas() {
                let v = m * scale;
                if v >= lo * (1.0 - 1e-12) && v <= hi * (1.0 + 1e-12) {
                    out.push(v);
                }
            }
            exp += 1.0;
        }
        out
    }
}

fn geometric_series(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let v = 10f64.powf(i as f64 / n as f64);
            // IEC rounds to 3 significant digits.
            (v * 100.0).round() / 100.0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snap_to_e24_known_values() {
        // geometric distance: 4.9 is nearer 5.1 than 4.7 (log-scale)
        assert_eq!(ESeries::E24.snap(4.9e-9), 5.1e-9);
        assert_eq!(ESeries::E24.snap(1.04e-12), 1.0e-12);
        assert_eq!(ESeries::E24.snap(52.0), 51.0);
        assert_eq!(ESeries::E24.snap(3.5e3), 3.6e3);
    }

    #[test]
    fn snap_handles_decade_boundary() {
        // 0.97 is closer to 1.0 than to 0.91.
        assert_eq!(ESeries::E24.snap(0.97), 1.0);
        // 9.6 is closer to 9.1 than to 10.
        assert_eq!(ESeries::E24.snap(9.5), 9.1);
    }

    #[test]
    fn snap_is_idempotent() {
        for &m in &E24_VALUES {
            let v = m * 1e-9;
            assert!((ESeries::E24.snap(v) - v).abs() < 1e-18);
        }
    }

    #[test]
    fn e12_is_subset_like_of_e24() {
        // Every E12 value is also an E24 value.
        for &v in &E12_VALUES {
            assert!(E24_VALUES.iter().any(|&w| (w - v).abs() < 1e-12));
        }
    }

    #[test]
    fn e96_has_96_mantissas_in_decade() {
        let m = ESeries::E96.mantissas();
        assert_eq!(m.len(), 96);
        assert!(m.windows(2).all(|w| w[0] < w[1]));
        assert!((m[0] - 1.0).abs() < 1e-12);
        assert!(*m.last().unwrap() < 10.0);
    }

    #[test]
    fn e96_snap_error_is_within_one_percent_band() {
        // Any positive value snaps to E96 within ~1.5 % relative error
        // (pure geometric half-gap is 1.2 %; IEC rounding adds a little).
        for i in 0..200 {
            let v = 1e-12 * 10f64.powf(i as f64 * 0.03);
            let s = ESeries::E96.snap(v);
            assert!((s / v).ln().abs() < 0.015, "v={v} snapped to {s}");
        }
    }

    #[test]
    fn values_in_range() {
        let vals = ESeries::E12.values_in(1.0e-9, 10.0e-9);
        assert_eq!(vals.len(), 13); // 1.0 … 8.2 plus 10.0
        assert!((vals[0] - 1.0e-9).abs() < 1e-21);
        assert!((vals.last().unwrap() - 10.0e-9).abs() < 1e-20);
        assert!(vals.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn snap_rejects_nonpositive() {
        ESeries::E24.snap(0.0);
    }
}
