//! Property-based tests on the passive models: passivity, reciprocity and
//! dispersion invariants for any physical parameter draw.

use proptest::prelude::*;
use rfkit_num::Complex;
use rfkit_passive::{
    Capacitor, Component, ESeries, Inductor, Microstrip, Orientation, Resistor, Substrate,
    TeeJunction, Wilkinson,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn components_have_nonnegative_resistance(
        c_pf in 0.5..47.0f64,
        l_nh in 1.0..33.0f64,
        r_ohm in 5.0..500.0f64,
        f_ghz in 0.1..6.0f64,
    ) {
        let f = f_ghz * 1e9;
        prop_assert!(Capacitor::chip_0402(c_pf * 1e-12).esr(f) >= 0.0);
        prop_assert!(Inductor::chip_0402(l_nh * 1e-9).esr(f) >= 0.0);
        prop_assert!(Resistor::chip_0402(r_ohm).esr(f) >= 0.0);
    }

    #[test]
    fn component_two_ports_are_passive(
        c_pf in 0.5..47.0f64,
        l_nh in 1.0..33.0f64,
        f_ghz in 0.1..6.0f64,
        shunt in proptest::bool::ANY,
    ) {
        let f = f_ghz * 1e9;
        let orient = if shunt { Orientation::Shunt } else { Orientation::Series };
        for tp in [
            Capacitor::chip_0402(c_pf * 1e-12).two_port(f, orient, 290.0),
            Inductor::chip_0402(l_nh * 1e-9).two_port(f, orient, 290.0),
        ] {
            let s = tp.abcd.to_s(50.0).expect("has S form");
            prop_assert!(s.is_passive(1e-6), "passive element must be passive");
            prop_assert!(s.is_reciprocal(1e-9), "two-terminal element reciprocal");
            // And its noise figure is its loss or less... at minimum F >= 1.
            let fnoise = tp.noise_params(50.0).unwrap().noise_factor(Complex::ZERO);
            prop_assert!(fnoise >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn capacitor_srf_moves_down_with_capacitance(
        c1_pf in 1.0..20.0f64,
        extra_pf in 1.0..20.0f64,
    ) {
        let small = Capacitor::chip_0402(c1_pf * 1e-12);
        let big = Capacitor::chip_0402((c1_pf + extra_pf) * 1e-12);
        prop_assert!(big.self_resonance_hz() < small.self_resonance_hz());
    }

    #[test]
    fn eseries_snap_within_half_step(value in 1e-12..1e-3f64) {
        for series in [ESeries::E12, ESeries::E24, ESeries::E96] {
            let snapped = series.snap(value);
            // E12 spacing is the widest: ratio ≤ 10^(1/12) → half-gap ≤ 10 %.
            prop_assert!((snapped / value).ln().abs() < 0.11, "{series:?}: {value} → {snapped}");
        }
    }

    #[test]
    fn microstrip_physics_invariants(
        w_mm in 0.2..4.0f64,
        f_ghz in 0.2..10.0f64,
        len_mm in 1.0..40.0f64,
    ) {
        let line = Microstrip::new(Substrate::ro4350b(), w_mm * 1e-3, len_mm * 1e-3);
        let f = f_ghz * 1e9;
        let er = line.substrate.eps_r;
        let eps = line.eps_eff(f);
        prop_assert!(eps > 1.0 && eps < er, "1 < εeff < εr: {eps}");
        prop_assert!(eps >= line.eps_eff_static() - 1e-9, "dispersion only raises εeff");
        prop_assert!(line.z0(f) > 5.0 && line.z0(f) < 250.0);
        prop_assert!(line.alpha_conductor(f) > 0.0);
        prop_assert!(line.alpha_dielectric(f) > 0.0);
        // The line two-port is passive and reciprocal.
        let s = line.abcd(f).to_s(50.0).expect("has S form");
        prop_assert!(s.is_passive(1e-6));
        prop_assert!(s.is_reciprocal(1e-9));
    }

    #[test]
    fn synthesis_analysis_roundtrip(z0 in 25.0..120.0f64) {
        let line = Microstrip::for_impedance(Substrate::ro4350b(), z0, 1e-3);
        prop_assert!((line.z0_static() - z0).abs() < 0.2, "{} vs {}", line.z0_static(), z0);
    }

    #[test]
    fn splitters_conserve_or_dissipate_power(f_ghz in 0.5..4.0f64) {
        let f = f_ghz * 1e9;
        let tee = TeeJunction::microstrip(&Substrate::ro4350b()).s_matrix(f, 50.0);
        let wil = Wilkinson::design(1.575e9, 50.0, Substrate::ro4350b()).s_matrix(f);
        for np in [tee, wil] {
            for port in 0..3 {
                let mut out_power = 0.0;
                for other in 0..3 {
                    out_power += np.s(other, port).unwrap().norm_sqr();
                }
                prop_assert!(out_power <= 1.0 + 1e-6, "port {port} emits {out_power}");
            }
        }
    }

    #[test]
    fn tee_reciprocal_at_any_frequency(f_ghz in 0.3..6.0f64) {
        let tee = TeeJunction::microstrip(&Substrate::fr4()).s_matrix(f_ghz * 1e9, 50.0);
        prop_assert!(tee.is_reciprocal(1e-8));
    }
}
