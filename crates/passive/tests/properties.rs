//! Property-based tests on the passive models: passivity, reciprocity and
//! dispersion invariants for any physical parameter draw. Cases come from
//! a fixed-seed `Rng64` stream (the workspace builds offline, so no
//! proptest), which keeps every run reproducible.

use rfkit_num::rng::Rng64;
use rfkit_num::Complex;
use rfkit_passive::{
    Capacitor, Component, ESeries, Inductor, Microstrip, Orientation, Resistor, Substrate,
    TeeJunction, Wilkinson,
};

#[test]
fn components_have_nonnegative_resistance() {
    let mut rng = Rng64::new(0x9a55_0001);
    for _ in 0..48 {
        let c_pf = rng.uniform(0.5, 47.0);
        let l_nh = rng.uniform(1.0, 33.0);
        let r_ohm = rng.uniform(5.0, 500.0);
        let f = rng.uniform(0.1, 6.0) * 1e9;
        assert!(Capacitor::chip_0402(c_pf * 1e-12).esr(f) >= 0.0);
        assert!(Inductor::chip_0402(l_nh * 1e-9).esr(f) >= 0.0);
        assert!(Resistor::chip_0402(r_ohm).esr(f) >= 0.0);
    }
}

#[test]
fn component_two_ports_are_passive() {
    let mut rng = Rng64::new(0x9a55_0002);
    for _ in 0..48 {
        let c_pf = rng.uniform(0.5, 47.0);
        let l_nh = rng.uniform(1.0, 33.0);
        let f = rng.uniform(0.1, 6.0) * 1e9;
        let orient = if rng.chance(0.5) {
            Orientation::Shunt
        } else {
            Orientation::Series
        };
        for tp in [
            Capacitor::chip_0402(c_pf * 1e-12).two_port(f, orient, 290.0),
            Inductor::chip_0402(l_nh * 1e-9).two_port(f, orient, 290.0),
        ] {
            let s = tp.abcd.to_s(50.0).expect("has S form");
            assert!(s.is_passive(1e-6), "passive element must be passive");
            assert!(s.is_reciprocal(1e-9), "two-terminal element reciprocal");
            // And its noise figure is its loss or less... at minimum F >= 1.
            let fnoise = tp.noise_params(50.0).unwrap().noise_factor(Complex::ZERO);
            assert!(fnoise >= 1.0 - 1e-9);
        }
    }
}

#[test]
fn capacitor_srf_moves_down_with_capacitance() {
    let mut rng = Rng64::new(0x9a55_0003);
    for _ in 0..48 {
        let c1_pf = rng.uniform(1.0, 20.0);
        let extra_pf = rng.uniform(1.0, 20.0);
        let small = Capacitor::chip_0402(c1_pf * 1e-12);
        let big = Capacitor::chip_0402((c1_pf + extra_pf) * 1e-12);
        assert!(big.self_resonance_hz() < small.self_resonance_hz());
    }
}

#[test]
fn eseries_snap_within_half_step() {
    let mut rng = Rng64::new(0x9a55_0004);
    for _ in 0..48 {
        // Log-uniform over nine decades, as component values are.
        let value = 10f64.powf(rng.uniform(-12.0, -3.0));
        for series in [ESeries::E12, ESeries::E24, ESeries::E96] {
            let snapped = series.snap(value);
            // E12 spacing is the widest: ratio ≤ 10^(1/12) → half-gap ≤ 10 %.
            assert!(
                (snapped / value).ln().abs() < 0.11,
                "{series:?}: {value} → {snapped}"
            );
        }
    }
}

#[test]
fn microstrip_physics_invariants() {
    let mut rng = Rng64::new(0x9a55_0005);
    for _ in 0..48 {
        let w_mm = rng.uniform(0.2, 4.0);
        let f = rng.uniform(0.2, 10.0) * 1e9;
        let len_mm = rng.uniform(1.0, 40.0);
        let line = Microstrip::new(Substrate::ro4350b(), w_mm * 1e-3, len_mm * 1e-3);
        let er = line.substrate.eps_r;
        let eps = line.eps_eff(f);
        assert!(eps > 1.0 && eps < er, "1 < εeff < εr: {eps}");
        assert!(
            eps >= line.eps_eff_static() - 1e-9,
            "dispersion only raises εeff"
        );
        assert!(line.z0(f) > 5.0 && line.z0(f) < 250.0);
        assert!(line.alpha_conductor(f) > 0.0);
        assert!(line.alpha_dielectric(f) > 0.0);
        // The line two-port is passive and reciprocal.
        let s = line.abcd(f).to_s(50.0).expect("has S form");
        assert!(s.is_passive(1e-6));
        assert!(s.is_reciprocal(1e-9));
    }
}

#[test]
fn synthesis_analysis_roundtrip() {
    let mut rng = Rng64::new(0x9a55_0006);
    for _ in 0..48 {
        let z0 = rng.uniform(25.0, 120.0);
        let line = Microstrip::for_impedance(Substrate::ro4350b(), z0, 1e-3);
        assert!(
            (line.z0_static() - z0).abs() < 0.2,
            "{} vs {}",
            line.z0_static(),
            z0
        );
    }
}

#[test]
fn splitters_conserve_or_dissipate_power() {
    let mut rng = Rng64::new(0x9a55_0007);
    for _ in 0..48 {
        let f = rng.uniform(0.5, 4.0) * 1e9;
        let tee = TeeJunction::microstrip(&Substrate::ro4350b()).s_matrix(f, 50.0);
        let wil = Wilkinson::design(1.575e9, 50.0, Substrate::ro4350b()).s_matrix(f);
        for np in [tee, wil] {
            for port in 0..3 {
                let mut out_power = 0.0;
                for other in 0..3 {
                    out_power += np.s(other, port).unwrap().norm_sqr();
                }
                assert!(out_power <= 1.0 + 1e-6, "port {port} emits {out_power}");
            }
        }
    }
}

#[test]
fn tee_reciprocal_at_any_frequency() {
    let mut rng = Rng64::new(0x9a55_0008);
    for _ in 0..48 {
        let f = rng.uniform(0.3, 6.0) * 1e9;
        let tee = TeeJunction::microstrip(&Substrate::fr4()).s_matrix(f, 50.0);
        assert!(tee.is_reciprocal(1e-8));
    }
}
