//! # rfkit-robust
//!
//! Fault tolerance for the workspace's solvers: retry policies, a
//! structured solve-error taxonomy with provenance, degradation
//! accounting for sweep-style analyses, and a deterministic
//! fault-injection harness (compiled in only under the `rfkit-faults`
//! feature) that lets tests force the rare failure paths on demand.
//!
//! ## Design rules
//!
//! * **Determinism first.** Budgets are iteration-denominated, never
//!   wall-clock: a time budget would make the fallback ladder take a
//!   different path on a loaded machine, breaking the repo's bit-identical
//!   reproducibility contract (and the `nondeterminism` lint bans
//!   `Instant` in solver crates for exactly this reason). Fault triggers
//!   key on *data* (iteration number, frequency bits, unit index), never
//!   on global invocation counters, so an injected fault fires at the
//!   same logical place at any thread count.
//! * **Zero cost when disabled.** With `rfkit-faults` off,
//!   [`faults::inject`] is an `#[inline(always)]` `None` and the hooks
//!   vanish from codegen.
//!
//! See DESIGN.md § "Robustness" for the ladder stages and degradation
//! semantics.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod faults;

use std::fmt;

/// A rung of the DC fallback ladder, in escalation order.
///
/// Each stage restarts from the same initial iterate, so the result of a
/// solve is a pure function of (circuit, policy, first stage that
/// succeeds) — a later rung never inherits state from a failed earlier
/// rung except through the homotopy continuation *inside* a stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SolveStage {
    /// Undamped Newton–Raphson (full steps).
    PlainNewton,
    /// Damped Newton with backtracking line search.
    DampedNewton,
    /// Gmin-stepping homotopy: solve with a large artificial conductance
    /// to ground on every node, then relax it to the baseline in decades.
    GminStepping,
    /// Source-stepping homotopy: ramp every independent source from a
    /// fraction of its value up to 100 %.
    SourceStepping,
}

impl SolveStage {
    /// All stages, in ladder order.
    pub const LADDER: [SolveStage; 4] = [
        SolveStage::PlainNewton,
        SolveStage::DampedNewton,
        SolveStage::GminStepping,
        SolveStage::SourceStepping,
    ];

    /// Stable index of the stage in the ladder (0-based), for histograms.
    pub fn index(self) -> usize {
        match self {
            SolveStage::PlainNewton => 0,
            SolveStage::DampedNewton => 1,
            SolveStage::GminStepping => 2,
            SolveStage::SourceStepping => 3,
        }
    }

    /// Human-readable stage name.
    pub fn name(self) -> &'static str {
        match self {
            SolveStage::PlainNewton => "plain-newton",
            SolveStage::DampedNewton => "damped-newton",
            SolveStage::GminStepping => "gmin-stepping",
            SolveStage::SourceStepping => "source-stepping",
        }
    }
}

impl fmt::Display for SolveStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Structured error from a fault-tolerant solve, carrying provenance:
/// which ladder stage gave up, after how many total Newton iterations,
/// and (where meaningful) at what residual norm.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The iteration ran its budget without meeting the tolerance, or the
    /// residual went non-finite / the step stagnated away from a root.
    NonConvergence {
        /// Last ladder stage attempted.
        stage: SolveStage,
        /// Total Newton iterations spent across all stages so far.
        iterations: usize,
        /// Residual norm at the failure point (may be NaN when the
        /// residual itself went non-finite).
        residual: f64,
    },
    /// The linearized system was singular at some iterate in every rung
    /// that ran (floating node, source loop, or an injected LU fault).
    SingularSystem {
        /// Last ladder stage attempted.
        stage: SolveStage,
        /// Total Newton iterations spent across all stages so far.
        iterations: usize,
    },
    /// The cross-stage iteration budget ([`RetryPolicy::max_total_iters`])
    /// ran out before any rung finished.
    BudgetExhausted {
        /// Stage that was running when the budget expired.
        stage: SolveStage,
        /// Total Newton iterations spent (equals the budget).
        iterations: usize,
        /// Residual norm when the budget expired.
        residual: f64,
    },
}

impl SolveError {
    /// The ladder stage the error came from.
    pub fn stage(&self) -> SolveStage {
        match self {
            SolveError::NonConvergence { stage, .. }
            | SolveError::SingularSystem { stage, .. }
            | SolveError::BudgetExhausted { stage, .. } => *stage,
        }
    }

    /// Total Newton iterations spent before the error.
    pub fn iterations(&self) -> usize {
        match self {
            SolveError::NonConvergence { iterations, .. }
            | SolveError::SingularSystem { iterations, .. }
            | SolveError::BudgetExhausted { iterations, .. } => *iterations,
        }
    }

    /// Residual norm at the failure point, when one exists.
    pub fn residual(&self) -> Option<f64> {
        match self {
            SolveError::NonConvergence { residual, .. }
            | SolveError::BudgetExhausted { residual, .. } => Some(*residual),
            SolveError::SingularSystem { .. } => None,
        }
    }
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::NonConvergence {
                stage,
                iterations,
                residual,
            } => write!(
                f,
                "no convergence after {iterations} iterations \
                 (last stage {stage}, residual {residual:.3e})"
            ),
            SolveError::SingularSystem { stage, iterations } => write!(
                f,
                "singular system after {iterations} iterations (last stage {stage})"
            ),
            SolveError::BudgetExhausted {
                stage,
                iterations,
                residual,
            } => write!(
                f,
                "iteration budget exhausted at {iterations} iterations \
                 (in stage {stage}, residual {residual:.3e})"
            ),
        }
    }
}

impl std::error::Error for SolveError {}

/// Budgets driving the DC fallback ladder.
///
/// All budgets count Newton iterations, not wall-clock time — see the
/// crate docs for why time budgets are banned. `max_attempts` bounds how
/// many rungs of [`SolveStage::LADDER`] are tried; `max_total_iters` is a
/// cross-stage ceiling that turns a pathological circuit into a prompt
/// [`SolveError::BudgetExhausted`] instead of a long crawl through every
/// homotopy level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Ladder rungs to attempt (1–4); 1 = plain Newton only.
    pub max_attempts: usize,
    /// Iteration budget of the plain-Newton rung.
    pub plain_iters: usize,
    /// Iteration budget of the damped-Newton rung.
    pub damped_iters: usize,
    /// Iteration budget of each homotopy *level* (gmin decade or source
    /// fraction).
    pub homotopy_iters: usize,
    /// Gmin decades stepped from 1e-2 S down before the exact final solve.
    pub gmin_steps: usize,
    /// Source-ramp levels (the last level is exactly 100 %).
    pub source_steps: usize,
    /// Cross-stage Newton-iteration ceiling.
    pub max_total_iters: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            plain_iters: 50,
            damped_iters: 200,
            homotopy_iters: 80,
            gmin_steps: 6,
            source_steps: 8,
            max_total_iters: 4000,
        }
    }
}

impl RetryPolicy {
    /// A policy that only runs the first `n` rungs of the ladder.
    pub fn first_stages(n: usize) -> Self {
        RetryPolicy {
            max_attempts: n.clamp(1, SolveStage::LADDER.len()),
            ..Default::default()
        }
    }
}

/// One failed point of a sweep-style analysis (band grid point, yield
/// unit), recorded instead of poisoning the whole run.
#[derive(Debug, Clone, PartialEq)]
pub struct PointDiagnostic {
    /// Index of the point in the sweep (grid index, unit number).
    pub index: usize,
    /// The point's coordinate: frequency in Hz for band sweeps, the
    /// unit's tolerance seed for yield runs.
    pub at: f64,
    /// Short human-readable failure description.
    pub detail: String,
}

impl fmt::Display for PointDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "point {} (at {:.6e}): {}",
            self.index, self.at, self.detail
        )
    }
}

/// Failure-fraction threshold deciding when a sweep with failed points is
/// still usable as a flagged partial.
///
/// A sweep whose failed-point fraction is `<= max_failure_fraction` (and
/// which still covers every sub-grid it aggregates over) degrades to a
/// partial result carrying its diagnostics; beyond the threshold the
/// sweep fails outright, again carrying the diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradePolicy {
    /// Largest tolerable fraction of failed points, in `[0, 1]`.
    pub max_failure_fraction: f64,
}

impl DegradePolicy {
    /// Zero tolerance: any failed point fails the sweep. This is the
    /// legacy behavior and the default.
    pub fn strict() -> Self {
        DegradePolicy {
            max_failure_fraction: 0.0,
        }
    }

    /// Tolerate up to `fraction` (clamped to `[0, 1]`) failed points.
    pub fn lenient(fraction: f64) -> Self {
        DegradePolicy {
            max_failure_fraction: fraction.clamp(0.0, 1.0),
        }
    }

    /// `true` when `failed` out of `total` points is within tolerance.
    pub fn accepts(&self, failed: usize, total: usize) -> bool {
        if total == 0 {
            return failed == 0;
        }
        failed as f64 / total as f64 <= self.max_failure_fraction
    }
}

impl Default for DegradePolicy {
    fn default() -> Self {
        DegradePolicy::strict()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_order_and_indices() {
        for (i, s) in SolveStage::LADDER.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        assert!(SolveStage::PlainNewton < SolveStage::SourceStepping);
        assert_eq!(SolveStage::GminStepping.to_string(), "gmin-stepping");
    }

    #[test]
    fn error_provenance_accessors() {
        let e = SolveError::NonConvergence {
            stage: SolveStage::DampedNewton,
            iterations: 42,
            residual: 1e-3,
        };
        assert_eq!(e.stage(), SolveStage::DampedNewton);
        assert_eq!(e.iterations(), 42);
        assert_eq!(e.residual(), Some(1e-3));
        assert!(e.to_string().contains("42 iterations"));

        let s = SolveError::SingularSystem {
            stage: SolveStage::PlainNewton,
            iterations: 1,
        };
        assert_eq!(s.residual(), None);
        assert!(s.to_string().contains("singular"));

        let b = SolveError::BudgetExhausted {
            stage: SolveStage::GminStepping,
            iterations: 100,
            residual: 0.5,
        };
        assert!(b.to_string().contains("budget exhausted"));
        assert_eq!(b.stage(), SolveStage::GminStepping);
    }

    #[test]
    fn policy_defaults_and_clamping() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_attempts, 4);
        assert!(p.max_total_iters >= p.plain_iters + p.damped_iters);
        assert_eq!(RetryPolicy::first_stages(0).max_attempts, 1);
        assert_eq!(RetryPolicy::first_stages(9).max_attempts, 4);
        assert_eq!(RetryPolicy::first_stages(2).max_attempts, 2);
    }

    #[test]
    fn degrade_policy_thresholds() {
        let strict = DegradePolicy::strict();
        assert!(strict.accepts(0, 15));
        assert!(!strict.accepts(1, 15));
        let lenient = DegradePolicy::lenient(0.2);
        assert!(lenient.accepts(3, 15));
        assert!(!lenient.accepts(4, 15));
        assert!(DegradePolicy::lenient(7.0).accepts(10, 10));
        assert!(strict.accepts(0, 0));
        assert!(!strict.accepts(1, 0));
    }

    #[test]
    fn diagnostic_display_is_informative() {
        let d = PointDiagnostic {
            index: 3,
            at: 1.4e9,
            detail: "point evaluation failed".to_string(),
        };
        let s = d.to_string();
        assert!(s.contains("point 3"), "{s}");
        assert!(s.contains("1.4"), "{s}");
    }
}
