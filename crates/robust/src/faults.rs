//! Deterministic fault injection for solver tests.
//!
//! A [`FaultPlan`] names *call sites* (string identifiers like
//! `"dc.newton.plain"` or `"band.point"`) and, per site, the *keys* at
//! which a fault fires. Keys are data-derived by the instrumented code —
//! the Newton iteration number, the frequency's bit pattern, the yield
//! unit index — never a global invocation counter, so an armed plan
//! triggers at the same logical place at any thread count and the
//! repo's bit-identical determinism contract survives fault testing.
//!
//! The runtime half (arming, firing, bookkeeping) only exists under the
//! `rfkit-faults` feature; without it [`inject`] is an `#[inline(always)]`
//! `None` and every hook compiles out of the solvers.
//!
//! ## Usage (tests)
//!
//! ```ignore
//! let _guard = faults::scoped(
//!     FaultPlan::new().fail_all("dc.newton.plain", FaultKind::SingularLu),
//! );
//! // ... plain Newton now reports a singular system; the guard disarms
//! // on drop and serializes fault tests against each other.
//! ```

/// What an injected fault forces at its call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The linear solve reports a singular matrix.
    SingularLu,
    /// The Newton iteration stalls (step collapses away from a root).
    Stagnate,
    /// The residual evaluates to NaN.
    NanResidual,
    /// A sweep point (band frequency, yield unit) fails to evaluate.
    PointFailure,
}

/// One rule of a plan: a site, the fault to force, and the key set at
/// which it fires (`None` = every key).
#[derive(Debug, Clone, PartialEq)]
struct FaultRule {
    site: String,
    kind: FaultKind,
    keys: Option<std::collections::BTreeSet<u64>>,
}

/// A set of fault rules to arm. Construction is pure and available with
/// or without the `rfkit-faults` feature; arming requires the feature.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Fires `kind` at `site` for every key.
    pub fn fail_all(mut self, site: &str, kind: FaultKind) -> Self {
        self.rules.push(FaultRule {
            site: site.to_string(),
            kind,
            keys: None,
        });
        self
    }

    /// Fires `kind` at `site` for exactly the listed keys.
    pub fn fail_keys(mut self, site: &str, kind: FaultKind, keys: &[u64]) -> Self {
        self.rules.push(FaultRule {
            site: site.to_string(),
            kind,
            keys: Some(keys.iter().copied().collect()),
        });
        self
    }

    /// Fires `kind` at `site` for a seeded random subset of `count` keys
    /// drawn (without replacement) from `domain`. The subset is a pure
    /// function of `seed`, so property tests replay exactly.
    pub fn fail_seeded(
        self,
        site: &str,
        kind: FaultKind,
        seed: u64,
        domain: &[u64],
        count: usize,
    ) -> Self {
        let mut rng = rfkit_num::rng::Rng64::new(seed);
        let want = count.min(domain.len());
        let mut picked = std::collections::BTreeSet::new();
        while picked.len() < want {
            picked.insert(domain[rng.index(domain.len())]);
        }
        let keys: Vec<u64> = picked.into_iter().collect();
        self.fail_keys(site, kind, &keys)
    }

    /// The fault (if any) this plan forces at `(site, key)`. First
    /// matching rule wins.
    // Without `rfkit-faults` the armed runtime is compiled out and only
    // unit tests call this; the plan type itself stays available so test
    // code can build plans unconditionally.
    #[cfg_attr(not(feature = "rfkit-faults"), allow(dead_code))]
    fn lookup(&self, site: &str, key: u64) -> Option<FaultKind> {
        self.rules
            .iter()
            .find(|r| r.site == site && r.keys.as_ref().is_none_or(|k| k.contains(&key)))
            .map(|r| r.kind)
    }
}

/// Queries the armed fault plan at a call site. This is the hook the
/// solvers call; with `rfkit-faults` disabled it is a constant `None`
/// and disappears from codegen.
#[cfg(not(feature = "rfkit-faults"))]
#[inline(always)]
pub fn inject(_site: &str, _key: u64) -> Option<FaultKind> {
    None
}

/// Queries the armed fault plan at a call site, recording a firing.
#[cfg(feature = "rfkit-faults")]
pub fn inject(site: &str, key: u64) -> Option<FaultKind> {
    armed::inject(site, key)
}

#[cfg(feature = "rfkit-faults")]
pub use armed::{arm, disarm, fired, scoped, ScopedFaults};

#[cfg(feature = "rfkit-faults")]
mod armed {
    use super::{FaultKind, FaultPlan};
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, MutexGuard, PoisonError};

    static OBS_FAULTS_INJECTED: rfkit_obs::Counter = rfkit_obs::Counter::new("faults.injected");

    /// Fast gate: hooks bail before taking any lock when nothing is armed.
    static ARMED: AtomicBool = AtomicBool::new(false);
    /// The active plan.
    static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);
    /// Firing counts per site, for tests asserting hooks actually ran.
    static FIRED: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());
    /// Serializes fault-using tests: process-global state must not be
    /// armed by two tests at once.
    static SCOPE: Mutex<()> = Mutex::new(());

    /// Arms `plan` process-wide. Prefer [`scoped`] in tests.
    pub fn arm(plan: FaultPlan) {
        *PLAN.lock().unwrap_or_else(PoisonError::into_inner) = Some(plan);
        FIRED.lock().unwrap_or_else(PoisonError::into_inner).clear();
        ARMED.store(true, Ordering::SeqCst);
    }

    /// Disarms fault injection and clears firing counts.
    pub fn disarm() {
        ARMED.store(false, Ordering::SeqCst);
        *PLAN.lock().unwrap_or_else(PoisonError::into_inner) = None;
        FIRED.lock().unwrap_or_else(PoisonError::into_inner).clear();
    }

    /// Times the armed plan fired at `site` since arming.
    pub fn fired(site: &str) -> u64 {
        FIRED
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(site)
            .copied()
            .unwrap_or(0)
    }

    /// RAII guard from [`scoped`]: disarms on drop and holds the global
    /// test lock so concurrent fault tests serialize instead of
    /// trampling each other's plans.
    pub struct ScopedFaults {
        _lock: MutexGuard<'static, ()>,
    }

    impl Drop for ScopedFaults {
        fn drop(&mut self) {
            disarm();
        }
    }

    /// Arms `plan` for the lifetime of the returned guard.
    pub fn scoped(plan: FaultPlan) -> ScopedFaults {
        let lock = SCOPE.lock().unwrap_or_else(PoisonError::into_inner);
        arm(plan);
        ScopedFaults { _lock: lock }
    }

    pub(super) fn inject(site: &str, key: u64) -> Option<FaultKind> {
        if !ARMED.load(Ordering::Relaxed) {
            return None;
        }
        let kind = PLAN
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .and_then(|p| p.lookup(site, key))?;
        *FIRED
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(site.to_string())
            .or_insert(0) += 1;
        OBS_FAULTS_INJECTED.add(1);
        Some(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_lookup_matches_sites_and_keys() {
        let plan = FaultPlan::new()
            .fail_all("a", FaultKind::SingularLu)
            .fail_keys("b", FaultKind::NanResidual, &[3, 5]);
        assert_eq!(plan.lookup("a", 0), Some(FaultKind::SingularLu));
        assert_eq!(plan.lookup("a", 99), Some(FaultKind::SingularLu));
        assert_eq!(plan.lookup("b", 3), Some(FaultKind::NanResidual));
        assert_eq!(plan.lookup("b", 4), None);
        assert_eq!(plan.lookup("c", 3), None);
    }

    #[test]
    fn seeded_subsets_replay_exactly() {
        let domain: Vec<u64> = (0..100).collect();
        let a = FaultPlan::new().fail_seeded("s", FaultKind::PointFailure, 7, &domain, 5);
        let b = FaultPlan::new().fail_seeded("s", FaultKind::PointFailure, 7, &domain, 5);
        assert_eq!(a, b, "same seed, same subset");
        let c = FaultPlan::new().fail_seeded("s", FaultKind::PointFailure, 8, &domain, 5);
        assert_ne!(a, c, "different seed, different subset");
        // Exactly 5 distinct keys fire.
        let fired: Vec<u64> = domain
            .iter()
            .filter(|&&k| a.lookup("s", k).is_some())
            .copied()
            .collect();
        assert_eq!(fired.len(), 5);
    }

    #[test]
    fn seeded_count_clamps_to_domain() {
        let domain = [1u64, 2, 3];
        let p = FaultPlan::new().fail_seeded("s", FaultKind::Stagnate, 1, &domain, 10);
        let fired = domain
            .iter()
            .filter(|&&k| p.lookup("s", k).is_some())
            .count();
        assert_eq!(fired, 3);
    }

    #[cfg(not(feature = "rfkit-faults"))]
    #[test]
    fn inject_is_inert_without_the_feature() {
        assert_eq!(inject("anything", 0), None);
    }

    #[cfg(feature = "rfkit-faults")]
    #[test]
    fn armed_plan_fires_and_scoped_guard_disarms() {
        {
            let _g = scoped(FaultPlan::new().fail_keys("x", FaultKind::SingularLu, &[7]));
            assert_eq!(inject("x", 7), Some(FaultKind::SingularLu));
            assert_eq!(inject("x", 8), None);
            assert_eq!(inject("y", 7), None);
            assert_eq!(fired("x"), 1);
            assert_eq!(fired("y"), 0);
        }
        // Guard dropped: everything is inert again.
        assert_eq!(inject("x", 7), None);
        assert_eq!(fired("x"), 0);
    }
}
