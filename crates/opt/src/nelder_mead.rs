//! Nelder–Mead downhill simplex — the "direct optimization" workhorse of
//! the three-step identification procedure.

use crate::problem::{Bounds, OptResult};

/// Configuration for [`nelder_mead`].
#[derive(Debug, Clone, PartialEq)]
pub struct NelderMeadConfig {
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// Converged when the simplex value spread falls below this.
    pub f_tol: f64,
    /// Converged when the simplex diameter falls below this (relative to
    /// the bound spans).
    pub x_tol: f64,
    /// Initial simplex size as a fraction of each bound span.
    pub initial_step: f64,
}

impl Default for NelderMeadConfig {
    fn default() -> Self {
        NelderMeadConfig {
            max_evals: 2000,
            f_tol: 1e-10,
            x_tol: 1e-9,
            initial_step: 0.05,
        }
    }
}

/// Minimizes `f` inside `bounds`, starting from `x0`, with the adaptive
/// Nelder–Mead method (dimension-dependent coefficients per Gao & Han).
///
/// Out-of-bounds trial points are clamped to the box.
///
/// # Panics
///
/// Panics if `x0.len() != bounds.dim()`.
///
/// # Examples
///
/// ```
/// use rfkit_opt::{nelder_mead, Bounds, NelderMeadConfig};
/// let b = Bounds::uniform(2, -5.0, 5.0);
/// let rosen = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
/// let r = nelder_mead(rosen, &[-1.0, 2.0], &b, &NelderMeadConfig { max_evals: 5000, ..Default::default() });
/// assert!(r.value < 1e-6);
/// ```
pub fn nelder_mead(
    mut f: impl FnMut(&[f64]) -> f64,
    x0: &[f64],
    bounds: &Bounds,
    config: &NelderMeadConfig,
) -> OptResult {
    let n = bounds.dim();
    assert_eq!(x0.len(), n, "start point dimension mismatch");
    // Adaptive coefficients (Gao & Han 2012).
    let nf = n as f64;
    let alpha = 1.0;
    let beta = 1.0 + 2.0 / nf;
    let gamma = 0.75 - 0.5 / nf;
    let delta = 1.0 - 1.0 / nf;

    let mut evals = 0usize;
    let mut eval = |x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        f(x)
    };

    // Initial simplex: x0 plus a step along each axis.
    let span = bounds.span();
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    simplex.push(bounds.clamp(x0));
    for i in 0..n {
        let mut v = x0.to_vec();
        let step = (config.initial_step * span[i]).max(1e-12);
        v[i] += if v[i] + step <= bounds.hi()[i] {
            step
        } else {
            -step
        };
        simplex.push(bounds.clamp(&v));
    }
    let mut values: Vec<f64> = simplex.iter().map(|v| eval(v, &mut evals)).collect();

    let centroid = |simplex: &[Vec<f64>], worst: usize| -> Vec<f64> {
        let mut c = vec![0.0; n];
        for (k, v) in simplex.iter().enumerate() {
            if k == worst {
                continue;
            }
            for i in 0..n {
                c[i] += v[i];
            }
        }
        for ci in &mut c {
            *ci /= n as f64;
        }
        c
    };

    let mut converged = false;
    let mut iteration = 0u64;
    while evals + 2 <= config.max_evals {
        iteration += 1;
        // Order the simplex.
        let mut order: Vec<usize> = (0..=n).collect();
        order.sort_by(|&a, &b| rfkit_num::total_cmp_f64(&values[a], &values[b]));
        let best = order[0];
        let worst = order[n];
        let second_worst = order[n - 1];

        // Convergence checks.
        let f_spread = values[worst] - values[best];
        let x_spread = simplex
            .iter()
            .map(|v| {
                v.iter()
                    .zip(&simplex[best])
                    .zip(&span)
                    .map(|((a, b), s)| ((a - b) / s.max(1e-300)).abs())
                    .fold(0.0, f64::max)
            })
            .fold(0.0, f64::max);
        // Throttled telemetry: one event every 32 iterations.
        if iteration.is_multiple_of(32) {
            rfkit_obs::event(
                "opt.nm.iter",
                &[
                    ("iter", iteration as f64),
                    ("best", values[best]),
                    ("f_spread", f_spread),
                    ("x_spread", x_spread),
                    ("evals", evals as f64),
                ],
            );
        }
        if f_spread.abs() <= config.f_tol && x_spread <= config.x_tol {
            converged = true;
            break;
        }

        let c = centroid(&simplex, worst);
        let reflect: Vec<f64> = bounds.clamp(
            &c.iter()
                .zip(&simplex[worst])
                .map(|(ci, wi)| ci + alpha * (ci - wi))
                .collect::<Vec<_>>(),
        );
        let f_r = eval(&reflect, &mut evals);

        if f_r < values[best] {
            // Try expansion.
            let expand: Vec<f64> = bounds.clamp(
                &c.iter()
                    .zip(&reflect)
                    .map(|(ci, ri)| ci + beta * (ri - ci))
                    .collect::<Vec<_>>(),
            );
            let f_e = eval(&expand, &mut evals);
            if f_e < f_r {
                simplex[worst] = expand;
                values[worst] = f_e;
            } else {
                simplex[worst] = reflect;
                values[worst] = f_r;
            }
        } else if f_r < values[second_worst] {
            simplex[worst] = reflect;
            values[worst] = f_r;
        } else {
            // Contraction (outside if the reflection helped a little,
            // inside otherwise).
            let (towards, f_ref) = if f_r < values[worst] {
                (reflect.clone(), f_r)
            } else {
                (simplex[worst].clone(), values[worst])
            };
            let contract: Vec<f64> = bounds.clamp(
                &c.iter()
                    .zip(&towards)
                    .map(|(ci, ti)| ci + gamma * (ti - ci))
                    .collect::<Vec<_>>(),
            );
            let f_c = eval(&contract, &mut evals);
            if f_c < f_ref {
                simplex[worst] = contract;
                values[worst] = f_c;
            } else {
                // Shrink toward the best vertex.
                let best_point = simplex[best].clone();
                for k in 0..=n {
                    if k == best {
                        continue;
                    }
                    let shrunk: Vec<f64> = best_point
                        .iter()
                        .zip(&simplex[k])
                        .map(|(bi, vi)| bi + delta * (vi - bi))
                        .collect();
                    simplex[k] = bounds.clamp(&shrunk);
                    if evals < config.max_evals {
                        values[k] = eval(&simplex[k], &mut evals);
                    }
                }
            }
        }
    }

    let (best_idx, &best_val) = values
        .iter()
        .enumerate()
        .min_by(|a, b| rfkit_num::total_cmp_f64(a.1, b.1))
        .expect("non-empty simplex");
    OptResult {
        x: simplex[best_idx].clone(),
        value: best_val,
        evaluations: evals,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere(x: &[f64]) -> f64 {
        x.iter().map(|v| v * v).sum()
    }

    fn rosenbrock(x: &[f64]) -> f64 {
        (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2)
    }

    #[test]
    fn minimizes_sphere() {
        let b = Bounds::uniform(3, -10.0, 10.0);
        let r = nelder_mead(sphere, &[5.0, -3.0, 8.0], &b, &NelderMeadConfig::default());
        assert!(r.value < 1e-8, "value = {}", r.value);
        assert!(r.converged);
        for xi in &r.x {
            assert!(xi.abs() < 1e-3);
        }
    }

    #[test]
    fn minimizes_rosenbrock() {
        let b = Bounds::uniform(2, -5.0, 5.0);
        let cfg = NelderMeadConfig {
            max_evals: 10000,
            ..Default::default()
        };
        let r = nelder_mead(rosenbrock, &[-1.2, 1.0], &b, &cfg);
        assert!(r.value < 1e-8, "value = {}", r.value);
        assert!((r.x[0] - 1.0).abs() < 1e-3);
        assert!((r.x[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn respects_bounds() {
        // Unconstrained minimum at (-3, -3) but box is [0, 1]².
        let f = |x: &[f64]| (x[0] + 3.0).powi(2) + (x[1] + 3.0).powi(2);
        let b = Bounds::uniform(2, 0.0, 1.0);
        let r = nelder_mead(f, &[0.5, 0.5], &b, &NelderMeadConfig::default());
        assert!(b.contains(&r.x));
        assert!(r.x[0] < 1e-6 && r.x[1] < 1e-6, "should sit on the corner");
    }

    #[test]
    fn evaluation_budget_is_respected() {
        let b = Bounds::uniform(2, -5.0, 5.0);
        let cfg = NelderMeadConfig {
            max_evals: 50,
            ..Default::default()
        };
        let r = nelder_mead(rosenbrock, &[-1.2, 1.0], &b, &cfg);
        assert!(r.evaluations <= 55, "evals = {}", r.evaluations);
        assert!(!r.converged);
    }

    #[test]
    fn start_on_boundary_works() {
        let b = Bounds::uniform(2, 0.0, 2.0);
        let r = nelder_mead(sphere, &[2.0, 2.0], &b, &NelderMeadConfig::default());
        assert!(r.value < 1e-6);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn start_dimension_checked() {
        let b = Bounds::uniform(2, 0.0, 1.0);
        nelder_mead(sphere, &[0.5], &b, &NelderMeadConfig::default());
    }
}
