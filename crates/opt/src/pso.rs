//! Particle swarm optimization — a second global baseline for the
//! extraction-method comparison.

use crate::problem::{Bounds, OptResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`particle_swarm`].
#[derive(Debug, Clone, PartialEq)]
pub struct PsoConfig {
    /// Swarm size; 0 selects `8 × dim` automatically.
    pub swarm: usize,
    /// Inertia weight ω.
    pub inertia: f64,
    /// Cognitive coefficient c₁ (pull toward personal best).
    pub cognitive: f64,
    /// Social coefficient c₂ (pull toward global best).
    pub social: f64,
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PsoConfig {
    fn default() -> Self {
        PsoConfig {
            swarm: 0,
            inertia: 0.72,
            cognitive: 1.49,
            social: 1.49,
            max_evals: 20_000,
            seed: 0x9500,
        }
    }
}

/// Minimizes `f` over `bounds` with a standard global-best particle swarm.
///
/// # Examples
///
/// ```
/// use rfkit_opt::{particle_swarm, Bounds, PsoConfig};
/// let b = Bounds::uniform(2, -5.0, 5.0);
/// let r = particle_swarm(|x| x[0] * x[0] + x[1] * x[1], &b, &PsoConfig::default());
/// assert!(r.value < 1e-8);
/// ```
pub fn particle_swarm(
    mut f: impl FnMut(&[f64]) -> f64,
    bounds: &Bounds,
    config: &PsoConfig,
) -> OptResult {
    let n = bounds.dim();
    let swarm_size = if config.swarm == 0 {
        (8 * n).max(10)
    } else {
        config.swarm.max(2)
    };
    let span = bounds.span();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut evals = 0usize;

    let mut pos: Vec<Vec<f64>> = (0..swarm_size).map(|_| bounds.sample(&mut rng)).collect();
    let mut vel: Vec<Vec<f64>> = (0..swarm_size)
        .map(|_| {
            (0..n)
                .map(|d| rng.gen_range(-0.2..0.2) * span[d])
                .collect()
        })
        .collect();
    let mut p_best = pos.clone();
    let mut p_best_val: Vec<f64> = pos
        .iter()
        .map(|x| {
            evals += 1;
            f(x)
        })
        .collect();
    let mut g_best_idx = p_best_val
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN objective"))
        .map(|(i, _)| i)
        .expect("non-empty swarm");
    let mut g_best = p_best[g_best_idx].clone();
    let mut g_best_val = p_best_val[g_best_idx];

    'outer: loop {
        for i in 0..swarm_size {
            if evals >= config.max_evals {
                break 'outer;
            }
            for d in 0..n {
                let r1: f64 = rng.gen();
                let r2: f64 = rng.gen();
                vel[i][d] = config.inertia * vel[i][d]
                    + config.cognitive * r1 * (p_best[i][d] - pos[i][d])
                    + config.social * r2 * (g_best[d] - pos[i][d]);
                // Velocity clamp keeps particles from tunnelling across the box.
                let v_max = 0.5 * span[d];
                vel[i][d] = vel[i][d].clamp(-v_max, v_max);
                pos[i][d] += vel[i][d];
            }
            pos[i] = bounds.clamp(&pos[i]);
            evals += 1;
            let v = f(&pos[i]);
            if v < p_best_val[i] {
                p_best_val[i] = v;
                p_best[i] = pos[i].clone();
                if v < g_best_val {
                    g_best_val = v;
                    g_best = pos[i].clone();
                    g_best_idx = i;
                }
            }
        }
    }
    let _ = g_best_idx;

    OptResult {
        x: g_best,
        value: g_best_val,
        evaluations: evals,
        converged: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn rastrigin(x: &[f64]) -> f64 {
        10.0 * x.len() as f64
            + x.iter()
                .map(|v| v * v - 10.0 * (2.0 * PI * v).cos())
                .sum::<f64>()
    }

    #[test]
    fn minimizes_sphere_tightly() {
        let b = Bounds::uniform(4, -10.0, 10.0);
        let r = particle_swarm(|x| x.iter().map(|v| v * v).sum(), &b, &PsoConfig::default());
        assert!(r.value < 1e-10, "value = {}", r.value);
    }

    #[test]
    fn handles_rastrigin_2d() {
        let b = Bounds::uniform(2, -5.12, 5.12);
        let cfg = PsoConfig {
            max_evals: 40_000,
            ..Default::default()
        };
        let r = particle_swarm(rastrigin, &b, &cfg);
        assert!(r.value < 1.0, "value = {}", r.value);
    }

    #[test]
    fn deterministic_for_seed() {
        let b = Bounds::uniform(2, -5.0, 5.0);
        let cfg = PsoConfig {
            max_evals: 1500,
            seed: 3,
            ..Default::default()
        };
        let r1 = particle_swarm(rastrigin, &b, &cfg);
        let r2 = particle_swarm(rastrigin, &b, &cfg);
        assert_eq!(r1.x, r2.x);
    }

    #[test]
    fn bound_constrained_optimum() {
        let b = Bounds::new(vec![1.0], vec![2.0]).unwrap();
        let r = particle_swarm(|x| (x[0] + 1.0).powi(2), &b, &PsoConfig::default());
        assert!((r.x[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn budget_respected() {
        let b = Bounds::uniform(2, -1.0, 1.0);
        let cfg = PsoConfig {
            max_evals: 77,
            ..Default::default()
        };
        let r = particle_swarm(|x| x[0] * x[0], &b, &cfg);
        assert!(r.evaluations <= 77);
    }
}
