//! Particle swarm optimization — a second global baseline for the
//! extraction-method comparison.
//!
//! Synchronous (generational) global-best PSO: every particle's velocity
//! update for an iteration reads the *previous* iteration's global best,
//! the whole swarm moves, and the batch of new positions is evaluated in
//! parallel through `rfkit-par`. All RNG draws stay in the serial update
//! loop, so fixed-seed runs are identical at any thread count.

use crate::problem::{Bounds, OptResult};
use rfkit_num::rng::Rng64;
use rfkit_par::par_map;
use rfkit_surrogate::SurrogateScreen;

/// Configuration for [`particle_swarm`].
#[derive(Debug, Clone, PartialEq)]
pub struct PsoConfig {
    /// Swarm size; 0 selects `8 × dim` automatically.
    pub swarm: usize,
    /// Inertia weight ω.
    pub inertia: f64,
    /// Cognitive coefficient c₁ (pull toward personal best).
    pub cognitive: f64,
    /// Social coefficient c₂ (pull toward global best).
    pub social: f64,
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PsoConfig {
    fn default() -> Self {
        PsoConfig {
            swarm: 0,
            inertia: 0.72,
            cognitive: 1.49,
            social: 1.49,
            max_evals: 20_000,
            seed: 0x9500,
        }
    }
}

/// Minimizes `f` over `bounds` with a synchronous global-best particle
/// swarm; each iteration's position batch is evaluated in parallel.
///
/// # Examples
///
/// ```
/// use rfkit_opt::{particle_swarm, Bounds, PsoConfig};
/// let b = Bounds::uniform(2, -5.0, 5.0);
/// let r = particle_swarm(|x| x[0] * x[0] + x[1] * x[1], &b, &PsoConfig::default());
/// assert!(r.value < 1e-8);
/// ```
pub fn particle_swarm(
    f: impl Fn(&[f64]) -> f64 + Sync,
    bounds: &Bounds,
    config: &PsoConfig,
) -> OptResult {
    pso_impl(f, bounds, config, None)
}

/// [`particle_swarm`] with a surrogate screen deciding, per moved
/// particle, whether the true objective is worth evaluating.
///
/// Screening runs serially between the kinematics and the parallel
/// batch; a skipped particle still moves but earns no personal-best
/// update this iteration (its position may be evaluated again later
/// from a more promising spot). Personal and global bests only ever
/// hold true-evaluated values, and `evaluations` counts only those.
///
/// # Panics
///
/// Panics if the screen was not built for 1 objective over
/// `bounds.dim()` variables.
pub fn particle_swarm_screened(
    f: impl Fn(&[f64]) -> f64 + Sync,
    bounds: &Bounds,
    config: &PsoConfig,
    screen: &mut SurrogateScreen,
) -> OptResult {
    pso_impl(f, bounds, config, Some(screen))
}

fn pso_impl(
    f: impl Fn(&[f64]) -> f64 + Sync,
    bounds: &Bounds,
    config: &PsoConfig,
    mut screen: Option<&mut SurrogateScreen>,
) -> OptResult {
    let n = bounds.dim();
    let swarm_size = if config.swarm == 0 {
        (8 * n).max(10)
    } else {
        config.swarm.max(2)
    };
    let span = bounds.span();
    let mut rng = Rng64::new(config.seed);
    let mut evals = 0usize;

    let mut pos: Vec<Vec<f64>> = (0..swarm_size).map(|_| bounds.sample(&mut rng)).collect();
    let mut vel: Vec<Vec<f64>> = (0..swarm_size)
        .map(|_| (0..n).map(|d| rng.uniform(-0.2, 0.2) * span[d]).collect())
        .collect();
    let mut p_best = pos.clone();
    // Budget-capped initial evaluation: particles beyond the budget keep
    // an infinite personal best (they never win the global-best scan).
    // When `max_evals >= swarm_size` this is the full swarm and the RNG /
    // evaluation sequence is unchanged.
    let init_batch = swarm_size.min(config.max_evals.max(1));
    let mut p_best_val: Vec<f64> = vec![f64::INFINITY; swarm_size];
    for (i, v) in par_map(&pos[..init_batch], |x| f(x))
        .into_iter()
        .enumerate()
    {
        p_best_val[i] = v;
    }
    evals += init_batch;
    if let Some(scr) = screen.as_deref_mut() {
        for (x, &v) in pos[..init_batch].iter().zip(&p_best_val) {
            scr.observe(x, &[v]);
        }
    }
    if init_batch < swarm_size {
        rfkit_obs::event("opt.pso.truncated", &[("evals", evals as f64)]);
    }
    let g_best_idx = p_best_val
        .iter()
        .enumerate()
        .min_by(|a, b| rfkit_num::total_cmp_f64(a.1, b.1))
        .map(|(i, _)| i)
        .expect("non-empty swarm");
    let mut g_best = p_best[g_best_idx].clone();
    let mut g_best_val = p_best_val[g_best_idx];
    let mut iteration = 0u64;

    loop {
        let remaining = config.max_evals.saturating_sub(evals);
        if remaining == 0 {
            break;
        }
        let batch = swarm_size.min(remaining);

        // Serial kinematics: all RNG draws happen here, in particle order,
        // against the previous iteration's global best.
        for (i, (p, v)) in pos.iter_mut().zip(vel.iter_mut()).enumerate().take(batch) {
            for d in 0..n {
                let r1 = rng.next_f64();
                let r2 = rng.next_f64();
                v[d] = config.inertia * v[d]
                    + config.cognitive * r1 * (p_best[i][d] - p[d])
                    + config.social * r2 * (g_best[d] - p[d]);
                // Velocity clamp keeps particles from tunnelling across the box.
                let v_max = 0.5 * span[d];
                v[d] = v[d].clamp(-v_max, v_max);
                p[d] += v[d];
            }
            *p = bounds.clamp(p);
        }

        // Optional surrogate screening: serial, before the parallel
        // batch. A skipped particle keeps moving but spends no true
        // evaluation this iteration; verdicts are booleans only, so no
        // predicted value can reach a personal or global best.
        let eval_idx: Vec<usize> = match screen.as_deref_mut() {
            Some(scr) => {
                let keep = scr.screen_scalar(&pos[..batch], &p_best_val[..batch]);
                (0..batch).filter(|&i| keep[i]).collect()
            }
            None => (0..batch).collect(),
        };
        let eval_pos: Vec<Vec<f64>> = eval_idx.iter().map(|&i| pos[i].clone()).collect();

        // Parallel batch evaluation of the surviving particles.
        let batch_vals = par_map(&eval_pos, |x| f(x));
        evals += eval_pos.len();
        if let Some(scr) = screen.as_deref_mut() {
            for (x, &v) in eval_pos.iter().zip(&batch_vals) {
                scr.observe(x, &[v]);
            }
        }

        for (&i, v) in eval_idx.iter().zip(batch_vals) {
            if v < p_best_val[i] {
                p_best_val[i] = v;
                p_best[i] = pos[i].clone();
            }
        }
        // Global best advances only after the full batch — synchronous PSO.
        for i in 0..batch {
            if p_best_val[i] < g_best_val {
                g_best_val = p_best_val[i];
                g_best = p_best[i].clone();
            }
        }
        iteration += 1;
        rfkit_obs::event(
            "opt.pso.iter",
            &[
                ("iter", iteration as f64),
                ("best", g_best_val),
                ("evals", evals as f64),
            ],
        );
        if batch < swarm_size {
            rfkit_obs::event("opt.pso.truncated", &[("evals", evals as f64)]);
            break; // budget exhausted mid-iteration
        }
    }

    OptResult {
        x: g_best,
        value: g_best_val,
        evaluations: evals,
        converged: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn rastrigin(x: &[f64]) -> f64 {
        10.0 * x.len() as f64
            + x.iter()
                .map(|v| v * v - 10.0 * (2.0 * PI * v).cos())
                .sum::<f64>()
    }

    #[test]
    fn minimizes_sphere_tightly() {
        let b = Bounds::uniform(4, -10.0, 10.0);
        let r = particle_swarm(|x| x.iter().map(|v| v * v).sum(), &b, &PsoConfig::default());
        assert!(r.value < 1e-10, "value = {}", r.value);
    }

    #[test]
    fn handles_rastrigin_2d() {
        let b = Bounds::uniform(2, -5.12, 5.12);
        let cfg = PsoConfig {
            max_evals: 40_000,
            ..Default::default()
        };
        let r = particle_swarm(rastrigin, &b, &cfg);
        assert!(r.value < 1.0, "value = {}", r.value);
    }

    #[test]
    fn deterministic_for_seed() {
        let b = Bounds::uniform(2, -5.0, 5.0);
        let cfg = PsoConfig {
            max_evals: 1500,
            seed: 3,
            ..Default::default()
        };
        let r1 = particle_swarm(rastrigin, &b, &cfg);
        let r2 = particle_swarm(rastrigin, &b, &cfg);
        assert_eq!(r1.x, r2.x);
    }

    #[test]
    fn bound_constrained_optimum() {
        let b = Bounds::new(vec![1.0], vec![2.0]).unwrap();
        let r = particle_swarm(|x| (x[0] + 1.0).powi(2), &b, &PsoConfig::default());
        assert!((r.x[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cold_screen_matches_unscreened_exactly() {
        let b = Bounds::uniform(2, -5.0, 5.0);
        let cfg = PsoConfig {
            max_evals: 1200,
            seed: 17,
            ..Default::default()
        };
        let plain = particle_swarm(rastrigin, &b, &cfg);
        let mut scr = rfkit_surrogate::SurrogateScreen::new(
            2,
            1,
            rfkit_surrogate::SurrogateConfig {
                min_train: usize::MAX,
                ..Default::default()
            },
        );
        let screened = particle_swarm_screened(rastrigin, &b, &cfg, &mut scr);
        assert_eq!(plain.x, screened.x);
        assert_eq!(plain.value, screened.value);
        assert_eq!(plain.evaluations, screened.evaluations);
    }

    #[test]
    fn armed_screen_prunes_and_still_solves() {
        let b = Bounds::uniform(2, -5.0, 5.0);
        let cfg = PsoConfig {
            max_evals: 6000,
            seed: 2,
            ..Default::default()
        };
        let sphere = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let mut scr = rfkit_surrogate::SurrogateScreen::new(
            2,
            1,
            rfkit_surrogate::SurrogateConfig {
                explore: 0.0,
                explore_min: 0.0,
                ..Default::default()
            },
        );
        let r = particle_swarm_screened(sphere, &b, &cfg, &mut scr);
        assert!(scr.stats().rejected > 0, "screen never pruned anything");
        assert!(r.value < 1e-6, "value = {}", r.value);
    }

    #[test]
    fn budget_respected() {
        let b = Bounds::uniform(2, -1.0, 1.0);
        let cfg = PsoConfig {
            max_evals: 77,
            ..Default::default()
        };
        let r = particle_swarm(|x| x[0] * x[0], &b, &cfg);
        assert!(r.evaluations <= 77);
    }
}
