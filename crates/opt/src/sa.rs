//! Simulated annealing — the alternative meta-heuristic used to cross-check
//! differential evolution in the extraction study.

use crate::problem::{Bounds, OptResult};
use rfkit_num::rng::Rng64;

/// Configuration for [`simulated_annealing`].
#[derive(Debug, Clone, PartialEq)]
pub struct SaConfig {
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// Initial temperature; 0 picks it automatically from early samples.
    pub t0: f64,
    /// Geometric cooling factor per step (just below 1).
    pub cooling: f64,
    /// Initial neighbourhood size as a fraction of each bound span.
    pub step_scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig {
            max_evals: 20_000,
            t0: 0.0,
            cooling: 0.999,
            step_scale: 0.3,
            seed: 0xa11e,
        }
    }
}

/// Minimizes `f` over `bounds` by simulated annealing with Gaussian moves
/// and geometric cooling. The step size anneals together with the
/// temperature so late iterations refine locally.
///
/// # Examples
///
/// ```
/// use rfkit_opt::{simulated_annealing, Bounds, SaConfig};
/// let b = Bounds::uniform(2, -5.0, 5.0);
/// let r = simulated_annealing(|x| x[0] * x[0] + x[1] * x[1], &b, &SaConfig::default());
/// assert!(r.value < 1e-3);
/// ```
pub fn simulated_annealing(
    mut f: impl FnMut(&[f64]) -> f64,
    bounds: &Bounds,
    config: &SaConfig,
) -> OptResult {
    let n = bounds.dim();
    let span = bounds.span();
    let mut rng = Rng64::new(config.seed);
    let mut evals = 0usize;

    let mut current = bounds.sample(&mut rng);
    let mut current_val = {
        evals += 1;
        f(&current)
    };
    let mut best = current.clone();
    let mut best_val = current_val;

    // Auto temperature: make the median early uphill move acceptable.
    let mut temp = if config.t0 > 0.0 {
        config.t0
    } else {
        let mut diffs = Vec::new();
        for _ in 0..20.min(config.max_evals.saturating_sub(evals)) {
            let probe = bounds.sample(&mut rng);
            evals += 1;
            diffs.push((f(&probe) - current_val).abs());
        }
        diffs.sort_by(rfkit_num::total_cmp_f64);
        diffs
            .get(diffs.len() / 2)
            .copied()
            .unwrap_or(1.0)
            .max(1e-12)
    };

    while evals < config.max_evals {
        let progress = evals as f64 / config.max_evals as f64;
        let step = config.step_scale * (1.0 - 0.95 * progress);
        let mut candidate = current.clone();
        // Perturb a random subset of coordinates.
        let k = rng.index(n);
        for (d, c) in candidate.iter_mut().enumerate() {
            if d == k || rng.chance(0.3) {
                *c += step * span[d] * rng.normal();
            }
        }
        let candidate = bounds.clamp(&candidate);
        evals += 1;
        let v = f(&candidate);
        let accept = v <= current_val || {
            let p = (-(v - current_val) / temp.max(1e-300)).exp();
            rng.chance(p.clamp(0.0, 1.0))
        };
        if accept {
            current = candidate;
            current_val = v;
            if v < best_val {
                best_val = v;
                best = current.clone();
            }
        }
        temp *= config.cooling;
        // Throttled telemetry: one event every 256 evaluations.
        if evals.is_multiple_of(256) {
            rfkit_obs::event(
                "opt.sa.iter",
                &[("evals", evals as f64), ("best", best_val), ("temp", temp)],
            );
        }
    }

    OptResult {
        x: best,
        value: best_val,
        evaluations: evals,
        converged: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn rastrigin(x: &[f64]) -> f64 {
        10.0 * x.len() as f64
            + x.iter()
                .map(|v| v * v - 10.0 * (2.0 * PI * v).cos())
                .sum::<f64>()
    }

    #[test]
    fn minimizes_sphere() {
        let b = Bounds::uniform(3, -10.0, 10.0);
        let r = simulated_annealing(|x| x.iter().map(|v| v * v).sum(), &b, &SaConfig::default());
        assert!(r.value < 1e-2, "value = {}", r.value);
    }

    #[test]
    fn finds_rastrigin_basin() {
        let b = Bounds::uniform(2, -5.12, 5.12);
        let cfg = SaConfig {
            max_evals: 50_000,
            ..Default::default()
        };
        let r = simulated_annealing(rastrigin, &b, &cfg);
        // SA should at least land in the global basin (value < 1, i.e. the
        // origin cell), even if the final polish is left to a direct method.
        assert!(r.value < 1.0, "value = {}", r.value);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let b = Bounds::uniform(2, -5.0, 5.0);
        let cfg = SaConfig {
            max_evals: 1000,
            seed: 9,
            ..Default::default()
        };
        let r1 = simulated_annealing(rastrigin, &b, &cfg);
        let r2 = simulated_annealing(rastrigin, &b, &cfg);
        assert_eq!(r1.x, r2.x);
    }

    #[test]
    fn stays_in_bounds() {
        let b = Bounds::new(vec![2.0, 2.0], vec![3.0, 3.0]).unwrap();
        let r = simulated_annealing(|x| x[0] + x[1], &b, &SaConfig::default());
        assert!(b.contains(&r.x));
        assert!((r.x[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn explicit_temperature_accepted() {
        let b = Bounds::uniform(1, -1.0, 1.0);
        let cfg = SaConfig {
            t0: 5.0,
            max_evals: 2000,
            ..Default::default()
        };
        let r = simulated_annealing(|x| x[0] * x[0], &b, &cfg);
        assert!(r.value < 1e-2);
    }
}
