//! Pareto-dominance utilities: non-dominated sorting, crowding distance
//! and 2-D hypervolume (all objectives minimized).

/// `true` when `a` Pareto-dominates `b`: no worse in every objective and
/// strictly better in at least one (minimization).
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "objective vectors must match");
    let mut strictly_better = false;
    for (&ai, &bi) in a.iter().zip(b) {
        if ai > bi {
            return false;
        }
        if ai < bi {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Indices of the non-dominated points (the Pareto front) among `points`.
pub fn pareto_front_indices(points: &[Vec<f64>]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, p)| j != i && dominates(p, &points[i]))
        })
        .collect()
}

/// Fast non-dominated sort (NSGA-II): partitions indices into fronts,
/// front 0 being the Pareto-optimal set.
pub fn nondominated_sort(points: &[Vec<f64>]) -> Vec<Vec<usize>> {
    let n = points.len();
    let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); n]; // i dominates these
    let mut domination_count = vec![0usize; n];
    for i in 0..n {
        for j in (i + 1)..n {
            if dominates(&points[i], &points[j]) {
                dominated_by[i].push(j);
                domination_count[j] += 1;
            } else if dominates(&points[j], &points[i]) {
                dominated_by[j].push(i);
                domination_count[i] += 1;
            }
        }
    }
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| domination_count[i] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dominated_by[i] {
                domination_count[j] -= 1;
                if domination_count[j] == 0 {
                    next.push(j);
                }
            }
        }
        fronts.push(std::mem::take(&mut current));
        current = next;
    }
    fronts
}

/// NSGA-II crowding distance of each member of one front (same order as
/// `front`); boundary points get infinity.
pub fn crowding_distance(points: &[Vec<f64>], front: &[usize]) -> Vec<f64> {
    let m = front.len();
    if m == 0 {
        return Vec::new();
    }
    let n_obj = points[front[0]].len();
    let mut dist = vec![0.0f64; m];
    #[allow(clippy::needless_range_loop)] // obj indexes a column across many rows
    for obj in 0..n_obj {
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by(|&a, &b| {
            rfkit_num::total_cmp_f64(&points[front[a]][obj], &points[front[b]][obj])
        });
        let lo = points[front[order[0]]][obj];
        let hi = points[front[order[m - 1]]][obj];
        dist[order[0]] = f64::INFINITY;
        dist[order[m - 1]] = f64::INFINITY;
        if hi - lo <= 0.0 {
            continue;
        }
        for w in 1..m.saturating_sub(1) {
            let prev = points[front[order[w - 1]]][obj];
            let next = points[front[order[w + 1]]][obj];
            dist[order[w]] += (next - prev) / (hi - lo);
        }
    }
    dist
}

/// Hypervolume (area) dominated by a 2-objective front relative to a
/// reference point that every front member must dominate.
///
/// Returns 0 for an empty front. Points failing to dominate the reference
/// are ignored.
///
/// # Panics
///
/// Panics if any point has a dimension other than 2.
pub fn hypervolume_2d(front: &[Vec<f64>], reference: [f64; 2]) -> f64 {
    let mut pts: Vec<&Vec<f64>> = front
        .iter()
        .inspect(|p| assert_eq!(p.len(), 2, "hypervolume_2d needs 2-D points"))
        .filter(|p| p[0] < reference[0] && p[1] < reference[1])
        .collect();
    if pts.is_empty() {
        return 0.0;
    }
    // Sort by first objective ascending; sweep accumulating rectangles of
    // the non-dominated staircase.
    pts.sort_by(|a, b| {
        rfkit_num::total_cmp_f64(&a[0], &b[0]).then_with(|| rfkit_num::total_cmp_f64(&a[1], &b[1]))
    });
    let mut volume = 0.0;
    let mut best_y = reference[1];
    for p in pts {
        if p[1] < best_y {
            volume += (reference[0] - p[0]) * (best_y - p[1]);
            best_y = p[1];
        }
    }
    volume
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_basics() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[2.0, 2.0]));
        assert!(!dominates(&[2.0, 2.0], &[2.0, 2.0])); // equal: no strict gain
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0])); // trade-off
        assert!(!dominates(&[3.0, 3.0], &[2.0, 2.0]));
    }

    #[test]
    fn pareto_front_of_mixed_set() {
        let pts = vec![
            vec![1.0, 5.0], // front
            vec![2.0, 3.0], // front
            vec![4.0, 1.0], // front
            vec![3.0, 4.0], // dominated by (2,3)
            vec![5.0, 5.0], // dominated by everything
        ];
        assert_eq!(pareto_front_indices(&pts), vec![0, 1, 2]);
    }

    #[test]
    fn nondominated_sort_layers() {
        let pts = vec![
            vec![1.0, 4.0],
            vec![4.0, 1.0],
            vec![2.0, 5.0],
            vec![5.0, 2.0],
            vec![6.0, 6.0],
        ];
        let fronts = nondominated_sort(&pts);
        assert_eq!(fronts[0], vec![0, 1]);
        assert_eq!(fronts[1], vec![2, 3]);
        assert_eq!(fronts[2], vec![4]);
    }

    #[test]
    fn sort_handles_single_front() {
        let pts = vec![vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 1.0]];
        let fronts = nondominated_sort(&pts);
        assert_eq!(fronts.len(), 1);
        assert_eq!(fronts[0].len(), 3);
    }

    #[test]
    fn crowding_boundary_is_infinite() {
        let pts = vec![
            vec![1.0, 4.0],
            vec![2.0, 3.0],
            vec![3.0, 2.0],
            vec![4.0, 1.0],
        ];
        let front: Vec<usize> = (0..4).collect();
        let d = crowding_distance(&pts, &front);
        assert!(d[0].is_infinite());
        assert!(d[3].is_infinite());
        assert!(d[1].is_finite() && d[1] > 0.0);
        // Uniform spacing → equal interior distances.
        assert!((d[1] - d[2]).abs() < 1e-12);
    }

    #[test]
    fn crowding_prefers_isolated_points() {
        // Point 1 is crowded, point 2 sits alone.
        let pts = vec![
            vec![0.0, 10.0],
            vec![0.1, 9.9],
            vec![5.0, 5.0],
            vec![10.0, 0.0],
        ];
        let front: Vec<usize> = (0..4).collect();
        let d = crowding_distance(&pts, &front);
        assert!(d[2] > d[1]);
    }

    #[test]
    fn crowding_degenerate_objective() {
        // All equal in objective 0: no division by zero.
        let pts = vec![vec![1.0, 1.0], vec![1.0, 2.0], vec![1.0, 3.0]];
        let front: Vec<usize> = (0..3).collect();
        let d = crowding_distance(&pts, &front);
        assert!(d.iter().all(|v| !v.is_nan()));
    }

    #[test]
    fn hypervolume_single_point() {
        let hv = hypervolume_2d(&[vec![1.0, 1.0]], [3.0, 3.0]);
        assert!((hv - 4.0).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_staircase() {
        let front = vec![vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 1.0]];
        // Rectangles: (4-1)(4-3)=3, (4-2)(3-2)=2, (4-3)(2-1)=1 → 6.
        let hv = hypervolume_2d(&front, [4.0, 4.0]);
        assert!((hv - 6.0).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_ignores_dominated_and_outside() {
        let front = vec![
            vec![1.0, 1.0],
            vec![2.0, 2.0], // dominated: contributes nothing
            vec![5.0, 0.5], // outside reference in x
        ];
        let hv = hypervolume_2d(&front, [3.0, 3.0]);
        assert!((hv - 4.0).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_empty() {
        assert_eq!(hypervolume_2d(&[], [1.0, 1.0]), 0.0);
    }

    #[test]
    fn bigger_front_has_bigger_hypervolume() {
        let small = vec![vec![2.0, 2.0]];
        let large = vec![vec![2.0, 2.0], vec![1.0, 3.0], vec![3.0, 1.0]];
        let r = [4.0, 4.0];
        assert!(hypervolume_2d(&large, r) > hypervolume_2d(&small, r));
    }
}
