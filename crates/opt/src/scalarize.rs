//! Classic scalarization baselines: weighted sum and ε-constraint.
//!
//! Both serve as comparison methods for the goal-attainment study: the
//! weighted sum cannot reach concave front regions, and the ε-constraint
//! needs a constraint-handling penalty — exactly the deficiencies the
//! goal-attainment method (and the paper's improvement of it) addresses.

use crate::de::{differential_evolution, DeConfig};
use crate::goal::GoalResult;
use crate::problem::Bounds;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Minimizes the weighted sum `Σ wᵢ·fᵢ(x)` for each weight vector in
/// `weight_sweep`, returning one attained point per weight vector.
///
/// # Panics
///
/// Panics if a weight vector length disagrees with the objective count at
/// evaluation time.
pub fn weighted_sum_sweep(
    objectives: &(dyn Fn(&[f64]) -> Vec<f64> + Sync),
    weight_sweep: &[Vec<f64>],
    bounds: &Bounds,
    max_evals_each: usize,
    seed: u64,
) -> Vec<GoalResult> {
    weight_sweep
        .iter()
        .enumerate()
        .map(|(k, w)| {
            let evals = AtomicUsize::new(0);
            let scalar = |x: &[f64]| -> f64 {
                evals.fetch_add(1, Ordering::Relaxed);
                let f = objectives(x);
                assert_eq!(f.len(), w.len(), "weight length mismatch");
                f.iter().zip(w).map(|(fi, wi)| fi * wi).sum()
            };
            let cfg = DeConfig {
                max_evals: max_evals_each,
                seed: seed.wrapping_add(k as u64),
                ..Default::default()
            };
            let r = differential_evolution(scalar, bounds, &cfg);
            let f = objectives(&r.x);
            GoalResult {
                x: r.x,
                attainment: f.iter().zip(w).map(|(fi, wi)| fi * wi).sum(),
                objectives: f,
                evaluations: evals.load(Ordering::Relaxed),
            }
        })
        .collect()
}

/// ε-constraint method: minimize objective `primary` subject to
/// `fⱼ(x) ≤ εⱼ` for all other objectives, for each ε vector in `eps_sweep`
/// (entries for the primary objective are ignored). Constraints enter as a
/// quadratic penalty.
pub fn epsilon_constraint_sweep(
    objectives: &(dyn Fn(&[f64]) -> Vec<f64> + Sync),
    primary: usize,
    eps_sweep: &[Vec<f64>],
    bounds: &Bounds,
    max_evals_each: usize,
    seed: u64,
) -> Vec<GoalResult> {
    eps_sweep
        .iter()
        .enumerate()
        .map(|(k, eps)| {
            let evals = AtomicUsize::new(0);
            let scalar = |x: &[f64]| -> f64 {
                evals.fetch_add(1, Ordering::Relaxed);
                let f = objectives(x);
                assert!(primary < f.len(), "primary objective out of range");
                let mut v = f[primary];
                for (j, (&fj, &ej)) in f.iter().zip(eps).enumerate() {
                    if j != primary {
                        let slack = (fj - ej).max(0.0);
                        v += 1e6 * slack * slack;
                    }
                }
                v
            };
            let cfg = DeConfig {
                max_evals: max_evals_each,
                seed: seed.wrapping_add(1000 + k as u64),
                ..Default::default()
            };
            let r = differential_evolution(scalar, bounds, &cfg);
            let f = objectives(&r.x);
            GoalResult {
                x: r.x,
                attainment: f[primary],
                objectives: f,
                evaluations: evals.load(Ordering::Relaxed),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto::pareto_front_indices;

    fn convex_pair(x: &[f64]) -> Vec<f64> {
        vec![x[0] * x[0], (x[0] - 2.0) * (x[0] - 2.0)]
    }

    fn concave_pair(x: &[f64]) -> Vec<f64> {
        let t = x[0].clamp(0.0, 1.0);
        // Points on the unit circle f1² + f2² = 1 bulge away from the
        // origin: a concave front under minimization.
        vec![t, (1.0 - t * t).sqrt()]
    }

    #[test]
    fn weighted_sum_covers_convex_front() {
        let obj: &(dyn Fn(&[f64]) -> Vec<f64> + Sync) = &convex_pair;
        let bounds = Bounds::uniform(1, -1.0, 3.0);
        let sweep: Vec<Vec<f64>> = (1..10)
            .map(|k| {
                let a = k as f64 / 10.0;
                vec![a, 1.0 - a]
            })
            .collect();
        let pts = weighted_sum_sweep(obj, &sweep, &bounds, 2000, 1);
        // Every solution is Pareto optimal: x ∈ [0, 2].
        for p in &pts {
            assert!(p.x[0] >= -1e-6 && p.x[0] <= 2.0 + 1e-6, "x = {}", p.x[0]);
        }
        // And the spread covers both ends.
        let xs: Vec<f64> = pts.iter().map(|p| p.x[0]).collect();
        assert!(xs.iter().cloned().fold(f64::INFINITY, f64::min) < 0.5);
        assert!(xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max) > 1.5);
    }

    #[test]
    fn weighted_sum_misses_concave_interior() {
        // On a strictly concave front the weighted sum only ever returns the
        // two endpoints.
        let obj: &(dyn Fn(&[f64]) -> Vec<f64> + Sync) = &concave_pair;
        let bounds = Bounds::uniform(1, 0.0, 1.0);
        let sweep: Vec<Vec<f64>> = (1..20)
            .map(|k| {
                let a = k as f64 / 20.0;
                vec![a, 1.0 - a]
            })
            .collect();
        let pts = weighted_sum_sweep(obj, &sweep, &bounds, 1500, 2);
        let interior = pts
            .iter()
            .filter(|p| p.objectives[0] > 0.05 && p.objectives[0] < 0.95)
            .count();
        assert_eq!(
            interior, 0,
            "weighted sum should collapse to the endpoints on a concave front"
        );
    }

    #[test]
    fn epsilon_constraint_reaches_concave_interior() {
        let obj: &(dyn Fn(&[f64]) -> Vec<f64> + Sync) = &concave_pair;
        let bounds = Bounds::uniform(1, 0.0, 1.0);
        // Constrain f1 ≤ ε, minimize f2.
        let sweep: Vec<Vec<f64>> = (1..10).map(|k| vec![k as f64 / 10.0, 0.0]).collect();
        let pts = epsilon_constraint_sweep(obj, 1, &sweep, &bounds, 2000, 3);
        let interior = pts
            .iter()
            .filter(|p| p.objectives[0] > 0.05 && p.objectives[0] < 0.95)
            .count();
        assert!(
            interior >= 5,
            "ε-constraint must populate the interior, got {interior}"
        );
        // All on the circle.
        for p in &pts {
            let f = &p.objectives;
            let resid = (f[0].powi(2) + f[1].powi(2) - 1.0).abs();
            assert!(resid < 1e-3, "{f:?}");
        }
    }

    #[test]
    fn sweeps_produce_mutually_nondominated_sets_on_convex_front() {
        let obj: &(dyn Fn(&[f64]) -> Vec<f64> + Sync) = &convex_pair;
        let bounds = Bounds::uniform(1, -1.0, 3.0);
        let sweep: Vec<Vec<f64>> = (1..6)
            .map(|k| {
                let a = k as f64 / 6.0;
                vec![a, 1.0 - a]
            })
            .collect();
        let pts = weighted_sum_sweep(obj, &sweep, &bounds, 2000, 4);
        let objs: Vec<Vec<f64>> = pts.iter().map(|p| p.objectives.clone()).collect();
        let front = pareto_front_indices(&objs);
        assert_eq!(
            front.len(),
            objs.len(),
            "all weighted-sum points nondominated"
        );
    }
}
