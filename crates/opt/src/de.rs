//! Differential evolution — the meta-heuristic half of the three-step
//! identification procedure (global search that tolerates the multi-modal,
//! non-smooth landscape of device-model fitting).
//!
//! The implementation is the *generational* (synchronous) variant of
//! DE/rand/1/bin: every trial vector of a generation is produced from the
//! previous generation's population before any acceptance happens. That
//! structure is what lets the whole trial batch be evaluated in parallel
//! through `rfkit-par` while every RNG draw stays in the serial control
//! loop — a fixed seed therefore yields bit-identical results at any
//! `RFKIT_THREADS` setting.

use crate::problem::{Bounds, OptResult};
use rfkit_num::rng::Rng64;
use rfkit_par::par_map;
use rfkit_surrogate::SurrogateScreen;

/// Configuration for [`differential_evolution`] (DE/rand/1/bin).
#[derive(Debug, Clone, PartialEq)]
pub struct DeConfig {
    /// Population size; 0 selects `10 × dim` automatically.
    pub population: usize,
    /// Differential weight F ∈ (0, 2].
    pub weight: f64,
    /// Crossover probability CR ∈ [0, 1].
    pub crossover: f64,
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// Stop when the population's best value stagnates within `f_tol` for
    /// `stall_generations` generations.
    pub f_tol: f64,
    /// Generations of stagnation allowed before declaring convergence.
    pub stall_generations: usize,
    /// RNG seed for reproducible runs.
    pub seed: u64,
}

impl Default for DeConfig {
    fn default() -> Self {
        DeConfig {
            population: 0,
            weight: 0.7,
            crossover: 0.5,
            max_evals: 20_000,
            f_tol: 1e-12,
            stall_generations: 30,
            seed: 0x5eed,
        }
    }
}

/// Minimizes `f` over the box `bounds` with generational DE/rand/1/bin.
///
/// Trial vectors are generated serially (all randomness lives here) and
/// evaluated as one parallel batch per generation.
///
/// # Panics
///
/// Panics if `weight` or `crossover` are outside their valid ranges.
///
/// # Examples
///
/// ```
/// use rfkit_opt::{differential_evolution, Bounds, DeConfig};
/// let b = Bounds::uniform(2, -5.0, 5.0);
/// // Rastrigin: many local minima, global at the origin.
/// let rastrigin = |x: &[f64]| {
///     20.0 + x.iter().map(|v| v * v - 10.0 * (2.0 * std::f64::consts::PI * v).cos()).sum::<f64>()
/// };
/// let r = differential_evolution(rastrigin, &b, &DeConfig::default());
/// assert!(r.value < 1e-6);
/// ```
pub fn differential_evolution(
    f: impl Fn(&[f64]) -> f64 + Sync,
    bounds: &Bounds,
    config: &DeConfig,
) -> OptResult {
    de_impl(f, bounds, config, None)
}

/// [`differential_evolution`] with a surrogate screen deciding, per
/// trial vector, whether the true objective is worth evaluating.
///
/// Screening decisions happen serially before each generation's
/// parallel batch, using the screen's private seeded RNG — fixed seeds
/// stay bit-identical at any thread count. Skipped trials simply leave
/// their parent in place for the generation; every value the optimizer
/// keeps comes from a true evaluation (`evaluations` counts only
/// those). The screen observes each completed evaluation, so the model
/// sharpens as the run progresses.
///
/// # Panics
///
/// Panics if `weight`/`crossover` are out of range or the screen was
/// not built for 1 objective over `bounds.dim()` variables.
pub fn differential_evolution_screened(
    f: impl Fn(&[f64]) -> f64 + Sync,
    bounds: &Bounds,
    config: &DeConfig,
    screen: &mut SurrogateScreen,
) -> OptResult {
    de_impl(f, bounds, config, Some(screen))
}

fn de_impl(
    f: impl Fn(&[f64]) -> f64 + Sync,
    bounds: &Bounds,
    config: &DeConfig,
    mut screen: Option<&mut SurrogateScreen>,
) -> OptResult {
    assert!(
        config.weight > 0.0 && config.weight <= 2.0,
        "differential weight must be in (0, 2]"
    );
    assert!(
        (0.0..=1.0).contains(&config.crossover),
        "crossover must be in [0, 1]"
    );
    let n = bounds.dim();
    let pop_size = if config.population == 0 {
        (10 * n).max(8)
    } else {
        config.population.max(4)
    };
    let mut rng = Rng64::new(config.seed);
    let mut evals = 0usize;

    let pop_target = pop_size;
    let population_init: Vec<Vec<f64>> = (0..pop_size.min(config.max_evals.max(4)))
        .map(|_| bounds.sample(&mut rng))
        .collect();
    let mut population = population_init;
    let mut values: Vec<f64> = par_map(&population, |x| f(x));
    evals += population.len();
    if let Some(scr) = screen.as_deref_mut() {
        for (x, &v) in population.iter().zip(&values) {
            scr.observe(x, &[v]);
        }
    }
    let pop_size = population.len();
    if pop_size < pop_target {
        rfkit_obs::event("opt.de.truncated", &[("evals", evals as f64)]);
    }

    let mut best_prev = f64::INFINITY;
    let mut stall = 0usize;
    let mut converged = false;
    let mut generation = 0u64;

    loop {
        let remaining = config.max_evals.saturating_sub(evals);
        if remaining == 0 {
            break;
        }
        let batch = pop_size.min(remaining);

        // Serial trial generation: every RNG draw happens here, in index
        // order, against the previous generation's snapshot.
        let trials: Vec<Vec<f64>> = (0..batch)
            .map(|i| {
                // Pick three distinct donors, none equal to i.
                let pick = |rng: &mut Rng64| loop {
                    let k = rng.index(pop_size);
                    if k != i {
                        return k;
                    }
                };
                let (a, b, c) = (pick(&mut rng), pick(&mut rng), pick(&mut rng));
                let forced = rng.index(n);
                // Dither the differential weight per trial — keeps separable
                // multimodal landscapes (Rastrigin-like extraction objectives)
                // from stagnating at a fixed step ratio.
                let weight = config.weight * rng.uniform(0.7, 1.3);
                let mut trial = population[i].clone();
                for (d, slot) in trial.iter_mut().enumerate() {
                    if d == forced || rng.chance(config.crossover) {
                        *slot = population[a][d] + weight * (population[b][d] - population[c][d]);
                    }
                }
                bounds.clamp(&trial)
            })
            .collect();

        // Optional surrogate screening: serial, before the parallel
        // batch. A skipped trial leaves its parent untouched; the
        // verdicts are booleans only, so no predicted value can reach
        // `values` (prune, never propagate).
        let (trials, trial_idx): (Vec<Vec<f64>>, Vec<usize>) = match screen.as_deref_mut() {
            Some(scr) => {
                let keep = scr.screen_scalar(&trials, &values[..batch]);
                trials
                    .into_iter()
                    .enumerate()
                    .filter(|(i, _)| keep[*i])
                    .map(|(i, t)| (t, i))
                    .unzip()
            }
            None => {
                let idx = (0..trials.len()).collect();
                (trials, idx)
            }
        };

        // Parallel batch evaluation — pure, RNG-free.
        let trial_values = par_map(&trials, |t| f(t));
        evals += trials.len();
        if let Some(scr) = screen.as_deref_mut() {
            for (t, &v) in trials.iter().zip(&trial_values) {
                scr.observe(t, &[v]);
            }
        }

        for ((i, trial), v) in trial_idx.into_iter().zip(trials).zip(trial_values) {
            if v <= values[i] {
                population[i] = trial;
                values[i] = v;
            }
        }
        generation += 1;
        if rfkit_obs::enabled() {
            // Telemetry reads the post-acceptance population; it never
            // feeds back into the search.
            let best = values.iter().copied().fold(f64::INFINITY, f64::min);
            let worst = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            rfkit_obs::event(
                "opt.de.gen",
                &[
                    ("gen", generation as f64),
                    ("best", best),
                    ("spread", worst - best),
                    ("evals", evals as f64),
                ],
            );
        }
        if batch < pop_size {
            rfkit_obs::event("opt.de.truncated", &[("evals", evals as f64)]);
            break; // budget exhausted mid-generation
        }

        let best_now = values.iter().copied().fold(f64::INFINITY, f64::min);
        if (best_prev - best_now).abs() <= config.f_tol * best_now.abs().max(1.0) {
            stall += 1;
            if stall >= config.stall_generations {
                converged = true;
                break;
            }
        } else {
            stall = 0;
        }
        best_prev = best_now;
    }

    let (best_idx, &best_val) = values
        .iter()
        .enumerate()
        .min_by(|a, b| rfkit_num::total_cmp_f64(a.1, b.1))
        .expect("non-empty population");
    OptResult {
        x: population[best_idx].clone(),
        value: best_val,
        evaluations: evals,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn rastrigin(x: &[f64]) -> f64 {
        10.0 * x.len() as f64
            + x.iter()
                .map(|v| v * v - 10.0 * (2.0 * PI * v).cos())
                .sum::<f64>()
    }

    fn ackley(x: &[f64]) -> f64 {
        let n = x.len() as f64;
        let s1: f64 = x.iter().map(|v| v * v).sum::<f64>() / n;
        let s2: f64 = x.iter().map(|v| (2.0 * PI * v).cos()).sum::<f64>() / n;
        -20.0 * (-0.2 * s1.sqrt()).exp() - s2.exp() + 20.0 + std::f64::consts::E
    }

    #[test]
    fn escapes_rastrigin_local_minima() {
        let b = Bounds::uniform(3, -5.12, 5.12);
        let r = differential_evolution(rastrigin, &b, &DeConfig::default());
        assert!(r.value < 1e-6, "value = {}", r.value);
        for xi in &r.x {
            assert!(xi.abs() < 1e-3);
        }
    }

    #[test]
    fn solves_ackley() {
        let b = Bounds::uniform(4, -32.0, 32.0);
        let cfg = DeConfig {
            max_evals: 60_000,
            ..Default::default()
        };
        let r = differential_evolution(ackley, &b, &cfg);
        assert!(r.value < 1e-4, "value = {}", r.value);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let b = Bounds::uniform(2, -5.0, 5.0);
        let cfg = DeConfig {
            max_evals: 2000,
            seed: 42,
            ..Default::default()
        };
        let r1 = differential_evolution(rastrigin, &b, &cfg);
        let r2 = differential_evolution(rastrigin, &b, &cfg);
        assert_eq!(r1.x, r2.x);
        assert_eq!(r1.value, r2.value);
    }

    #[test]
    fn different_seeds_differ() {
        let b = Bounds::uniform(2, -5.0, 5.0);
        let short = DeConfig {
            max_evals: 300,
            seed: 1,
            ..Default::default()
        };
        let r1 = differential_evolution(rastrigin, &b, &short);
        let r2 = differential_evolution(
            rastrigin,
            &b,
            &DeConfig {
                seed: 2,
                ..short.clone()
            },
        );
        assert_ne!(r1.x, r2.x);
    }

    #[test]
    fn respects_budget() {
        let b = Bounds::uniform(2, -5.0, 5.0);
        let cfg = DeConfig {
            max_evals: 123,
            ..Default::default()
        };
        let r = differential_evolution(rastrigin, &b, &cfg);
        assert!(r.evaluations <= 123);
    }

    #[test]
    fn all_results_inside_bounds() {
        let b = Bounds::new(vec![1.0, -2.0], vec![2.0, -1.0]).unwrap();
        // Minimum outside the box; result must sit on the boundary.
        let r = differential_evolution(|x| x.iter().map(|v| v * v).sum(), &b, &DeConfig::default());
        assert!(b.contains(&r.x));
        assert!((r.x[0] - 1.0).abs() < 1e-9);
        assert!((r.x[1] + 1.0).abs() < 1e-9);
    }

    fn screen(min_train: usize) -> rfkit_surrogate::SurrogateScreen {
        rfkit_surrogate::SurrogateScreen::new(
            2,
            1,
            rfkit_surrogate::SurrogateConfig {
                min_train,
                explore: 0.0,
                explore_min: 0.0,
                ..Default::default()
            },
        )
    }

    #[test]
    fn cold_screen_matches_unscreened_exactly() {
        // A screen that never gathers enough points to fit must leave
        // the run bit-identical to the unscreened path.
        let b = Bounds::uniform(2, -5.0, 5.0);
        let cfg = DeConfig {
            max_evals: 1500,
            seed: 9,
            ..Default::default()
        };
        let plain = differential_evolution(rastrigin, &b, &cfg);
        let mut scr = screen(usize::MAX);
        let screened = differential_evolution_screened(rastrigin, &b, &cfg, &mut scr);
        assert_eq!(plain.x, screened.x);
        assert_eq!(plain.value, screened.value);
        assert_eq!(plain.evaluations, screened.evaluations);
        assert!(!scr.has_model());
        assert!(scr.stats().fallbacks > 0);
    }

    #[test]
    fn armed_screen_prunes_and_still_solves() {
        let b = Bounds::uniform(2, -5.0, 5.0);
        let cfg = DeConfig {
            max_evals: 4000,
            seed: 5,
            ..Default::default()
        };
        let sphere = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let mut scr = screen(0);
        let r = differential_evolution_screened(sphere, &b, &cfg, &mut scr);
        assert!(scr.stats().rejected > 0, "screen never pruned anything");
        assert!(
            r.evaluations < 4000,
            "screening should save evaluations within the budget"
        );
        assert!(r.value < 1e-6, "value = {}", r.value);
    }

    #[test]
    #[should_panic(expected = "crossover")]
    fn validates_crossover() {
        let b = Bounds::uniform(2, 0.0, 1.0);
        differential_evolution(
            |x| x[0],
            &b,
            &DeConfig {
                crossover: 1.5,
                ..Default::default()
            },
        );
    }
}
