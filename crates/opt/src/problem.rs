//! Problem definitions shared by every optimizer: box bounds, results and
//! evaluation counting.

use rfkit_num::rng::Rng64;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Axis-aligned box bounds for a parameter vector.
///
/// # Examples
///
/// ```
/// use rfkit_opt::Bounds;
/// let b = Bounds::new(vec![0.0, -1.0], vec![1.0, 1.0]).unwrap();
/// assert_eq!(b.clamp(&[2.0, 0.5]), vec![1.0, 0.5]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Bounds {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

/// Error constructing [`Bounds`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundsError {
    /// `lo` and `hi` have different lengths.
    LengthMismatch,
    /// Some `lo[i] > hi[i]`.
    Inverted(usize),
    /// The bounds are empty.
    Empty,
}

impl std::fmt::Display for BoundsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundsError::LengthMismatch => write!(f, "lo and hi lengths differ"),
            BoundsError::Inverted(i) => write!(f, "lo > hi at index {i}"),
            BoundsError::Empty => write!(f, "bounds are empty"),
        }
    }
}

impl std::error::Error for BoundsError {}

impl Bounds {
    /// Creates bounds from lower and upper vectors.
    ///
    /// # Errors
    ///
    /// See [`BoundsError`].
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Result<Self, BoundsError> {
        if lo.len() != hi.len() {
            return Err(BoundsError::LengthMismatch);
        }
        if lo.is_empty() {
            return Err(BoundsError::Empty);
        }
        for (i, (l, h)) in lo.iter().zip(&hi).enumerate() {
            if l > h {
                return Err(BoundsError::Inverted(i));
            }
        }
        Ok(Bounds { lo, hi })
    }

    /// The same `[lo, hi]` interval in every dimension.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `lo > hi`.
    pub fn uniform(dim: usize, lo: f64, hi: f64) -> Self {
        Bounds::new(vec![lo; dim], vec![hi; dim]).expect("valid uniform bounds")
    }

    /// Problem dimensionality.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower bound vector.
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper bound vector.
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Clamps `x` into the box component-wise.
    pub fn clamp(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .map(|(&v, (&l, &h))| v.clamp(l, h))
            .collect()
    }

    /// `true` when `x` lies inside the box (inclusive).
    pub fn contains(&self, x: &[f64]) -> bool {
        x.len() == self.dim()
            && x.iter()
                .zip(self.lo.iter().zip(&self.hi))
                .all(|(&v, (&l, &h))| v >= l && v <= h)
    }

    /// Uniform random point inside the box.
    pub fn sample(&self, rng: &mut Rng64) -> Vec<f64> {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(&l, &h)| if l == h { l } else { rng.uniform(l, h) })
            .collect()
    }

    /// The box center.
    pub fn center(&self) -> Vec<f64> {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(&l, &h)| 0.5 * (l + h))
            .collect()
    }

    /// Per-dimension span `hi − lo`.
    pub fn span(&self) -> Vec<f64> {
        self.lo.iter().zip(&self.hi).map(|(&l, &h)| h - l).collect()
    }
}

/// Outcome of a scalar optimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Number of objective evaluations consumed.
    pub evaluations: usize,
    /// Whether the run met its convergence criterion (vs. hitting the
    /// evaluation budget).
    pub converged: bool,
}

/// Wraps an objective closure and counts evaluations — used by the
/// extraction-convergence experiment to plot error versus evaluations.
///
/// Thread-safe so it can sit behind the `Fn + Sync` objective bound the
/// parallel optimizers require: the counter is atomic and the
/// improvement trace sits behind a mutex.
pub struct CountingObjective<F> {
    f: F,
    count: AtomicUsize,
    /// Trace of `(evaluations, best_so_far)` pairs plus the running best,
    /// recorded whenever the best value improves.
    state: Mutex<(Vec<(usize, f64)>, f64)>,
}

impl<F: Fn(&[f64]) -> f64> CountingObjective<F> {
    /// Wraps `f`.
    pub fn new(f: F) -> Self {
        CountingObjective {
            f,
            count: AtomicUsize::new(0),
            state: Mutex::new((Vec::new(), f64::INFINITY)),
        }
    }

    /// Evaluates the wrapped objective, recording the call.
    pub fn eval(&self, x: &[f64]) -> f64 {
        let v = (self.f)(x);
        let n = self.count.fetch_add(1, Ordering::Relaxed) + 1;
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if v < state.1 {
            state.1 = v;
            state.0.push((n, v));
        }
        v
    }

    /// Number of evaluations so far.
    pub fn count(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// Improvement trace as `(evaluations, best_value)` pairs.
    pub fn trace(&self) -> Vec<(usize, f64)> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .0
            .clone()
    }

    /// Best value seen.
    pub fn best(&self) -> f64 {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert_eq!(
            Bounds::new(vec![0.0], vec![1.0, 2.0]).unwrap_err(),
            BoundsError::LengthMismatch
        );
        assert_eq!(
            Bounds::new(vec![2.0], vec![1.0]).unwrap_err(),
            BoundsError::Inverted(0)
        );
        assert_eq!(Bounds::new(vec![], vec![]).unwrap_err(), BoundsError::Empty);
    }

    #[test]
    fn clamp_and_contains() {
        let b = Bounds::uniform(3, -1.0, 1.0);
        assert_eq!(b.clamp(&[-5.0, 0.0, 5.0]), vec![-1.0, 0.0, 1.0]);
        assert!(b.contains(&[0.0, 0.5, -1.0]));
        assert!(!b.contains(&[0.0, 1.5, 0.0]));
        assert!(!b.contains(&[0.0, 0.0])); // wrong dim
    }

    #[test]
    fn sample_stays_inside() {
        let b = Bounds::new(vec![1.0, -10.0, 5.0], vec![2.0, 10.0, 5.0]).unwrap();
        let mut rng = Rng64::new(7);
        for _ in 0..100 {
            let x = b.sample(&mut rng);
            assert!(b.contains(&x), "{x:?}");
        }
    }

    #[test]
    fn degenerate_dimension_sampling() {
        // lo == hi must not panic and must return the fixed value.
        let b = Bounds::new(vec![3.0], vec![3.0]).unwrap();
        let mut rng = Rng64::new(1);
        assert_eq!(b.sample(&mut rng), vec![3.0]);
    }

    #[test]
    fn center_and_span() {
        let b = Bounds::new(vec![0.0, -2.0], vec![4.0, 2.0]).unwrap();
        assert_eq!(b.center(), vec![2.0, 0.0]);
        assert_eq!(b.span(), vec![4.0, 4.0]);
    }

    #[test]
    fn counting_objective_counts_and_traces() {
        let co = CountingObjective::new(|x: &[f64]| x[0] * x[0]);
        assert_eq!(co.eval(&[3.0]), 9.0);
        assert_eq!(co.eval(&[2.0]), 4.0);
        assert_eq!(co.eval(&[5.0]), 25.0); // worse: no trace entry
        assert_eq!(co.count(), 3);
        assert_eq!(co.trace(), vec![(1, 9.0), (2, 4.0)]);
        assert_eq!(co.best(), 4.0);
    }
}
