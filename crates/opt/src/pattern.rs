//! Hooke–Jeeves pattern search.
//!
//! The improved goal-attainment method minimizes the *exact* (non-smooth)
//! attainment function `max_i (f_i − g_i)/w_i`; gradient-free pattern search
//! handles the kinks where the active objective switches, which defeats
//! smooth quasi-Newton methods.

use crate::problem::{Bounds, OptResult};

/// Configuration for [`pattern_search`].
#[derive(Debug, Clone, PartialEq)]
pub struct PatternConfig {
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// Initial mesh size as a fraction of each bound span.
    pub initial_step: f64,
    /// Stop when the mesh shrinks below this fraction of the span.
    pub min_step: f64,
    /// Mesh contraction factor on a failed poll.
    pub contraction: f64,
}

impl Default for PatternConfig {
    fn default() -> Self {
        PatternConfig {
            max_evals: 5000,
            initial_step: 0.1,
            min_step: 1e-9,
            contraction: 0.5,
        }
    }
}

/// Minimizes `f` inside `bounds` from `x0` by coordinate polling with
/// pattern (accelerating) moves.
///
/// # Panics
///
/// Panics if `x0.len() != bounds.dim()`.
///
/// # Examples
///
/// ```
/// use rfkit_opt::{pattern_search, Bounds, PatternConfig};
/// let b = Bounds::uniform(2, -5.0, 5.0);
/// // A non-smooth objective: |x| + |y| — pattern search shrugs at the kink.
/// let r = pattern_search(|x| x[0].abs() + x[1].abs(), &[3.0, -2.0], &b, &PatternConfig::default());
/// assert!(r.value < 1e-6);
/// ```
pub fn pattern_search(
    mut f: impl FnMut(&[f64]) -> f64,
    x0: &[f64],
    bounds: &Bounds,
    config: &PatternConfig,
) -> OptResult {
    let n = bounds.dim();
    assert_eq!(x0.len(), n, "start point dimension mismatch");
    let span = bounds.span();

    let mut evals = 0usize;
    let mut x = bounds.clamp(x0);
    let mut fx = {
        evals += 1;
        f(&x)
    };
    let mut step = config.initial_step;
    let mut converged = false;

    // Remember the previous base point for pattern (extrapolation) moves.
    let mut prev = x.clone();

    while evals < config.max_evals {
        // Poll the 2n coordinate neighbours plus the two all-coordinate
        // diagonals. The diagonals matter for minimax objectives, where the
        // descent direction at a kink can be invisible to axis moves (both
        // active terms tie and any single-coordinate change leaves the max
        // unchanged).
        let mut improved = false;
        let mut best_neighbor = x.clone();
        let mut best_val = fx;
        let mut poll_dirs: Vec<Vec<f64>> = Vec::with_capacity(2 * n + 2);
        for d in 0..n {
            for sign in [1.0, -1.0] {
                let mut dir = vec![0.0; n];
                dir[d] = sign;
                poll_dirs.push(dir);
            }
        }
        let diag_scale = 1.0 / (n as f64).sqrt();
        poll_dirs.push(vec![diag_scale; n]);
        poll_dirs.push(vec![-diag_scale; n]);
        for dir in &poll_dirs {
            if evals >= config.max_evals {
                break;
            }
            let y: Vec<f64> = x
                .iter()
                .zip(dir)
                .zip(&span)
                .map(|((xi, di), s)| xi + di * step * s)
                .collect();
            let y = bounds.clamp(&y);
            if y == x {
                continue;
            }
            evals += 1;
            let fy = f(&y);
            if fy < best_val {
                best_val = fy;
                best_neighbor = y;
                improved = true;
            }
        }
        if improved {
            // Pattern move: jump along the improving direction.
            let pattern: Vec<f64> = best_neighbor
                .iter()
                .zip(&prev)
                .map(|(b, p)| b + (b - p))
                .collect();
            prev = x;
            x = best_neighbor;
            fx = best_val;
            let pattern = bounds.clamp(&pattern);
            if pattern != x && evals < config.max_evals {
                evals += 1;
                let fp = f(&pattern);
                if fp < fx {
                    prev = x.clone();
                    x = pattern;
                    fx = fp;
                }
            }
        } else {
            step *= config.contraction;
            if step < config.min_step {
                converged = true;
                break;
            }
        }
    }

    OptResult {
        x,
        value: fx,
        evaluations: evals,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_smooth_quadratic() {
        let b = Bounds::uniform(3, -10.0, 10.0);
        let r = pattern_search(
            |x| x.iter().map(|v| (v - 1.0) * (v - 1.0)).sum(),
            &[5.0, -5.0, 0.0],
            &b,
            &PatternConfig::default(),
        );
        assert!(r.value < 1e-10, "value = {}", r.value);
        assert!(r.converged);
    }

    #[test]
    fn handles_minimax_kinks() {
        // max(|x−1|, |y+2|) has a non-differentiable valley.
        let f = |x: &[f64]| (x[0] - 1.0).abs().max((x[1] + 2.0).abs());
        let b = Bounds::uniform(2, -5.0, 5.0);
        let r = pattern_search(f, &[4.0, 4.0], &b, &PatternConfig::default());
        assert!(r.value < 1e-6, "value = {}", r.value);
        assert!((r.x[0] - 1.0).abs() < 1e-5);
        assert!((r.x[1] + 2.0).abs() < 1e-5);
    }

    #[test]
    fn constrained_corner_solution() {
        let f = |x: &[f64]| -(x[0] + x[1]); // maximize x+y
        let b = Bounds::uniform(2, 0.0, 1.0);
        let r = pattern_search(f, &[0.2, 0.2], &b, &PatternConfig::default());
        assert!((r.x[0] - 1.0).abs() < 1e-9);
        assert!((r.x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn budget_respected() {
        let b = Bounds::uniform(2, -1.0, 1.0);
        let cfg = PatternConfig {
            max_evals: 30,
            ..Default::default()
        };
        let r = pattern_search(|x| x[0] * x[0] + x[1] * x[1], &[1.0, 1.0], &b, &cfg);
        assert!(r.evaluations <= 30);
    }

    #[test]
    fn already_optimal_start_converges_quickly() {
        let b = Bounds::uniform(1, -1.0, 1.0);
        let r = pattern_search(|x| x[0] * x[0], &[0.0], &b, &PatternConfig::default());
        assert!(r.converged);
        assert!(r.value < 1e-12);
    }
}
