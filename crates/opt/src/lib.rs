//! # rfkit-opt
//!
//! Scalar and multi-objective optimization for the rfkit suite, written
//! from scratch:
//!
//! * direct methods: [`nelder_mead`], [`pattern_search`],
//!   [`levenberg_marquardt`];
//! * meta-heuristics: [`differential_evolution`], [`simulated_annealing`],
//!   [`particle_swarm`];
//! * multi-objective: Pareto utilities ([`pareto`]), weighted-sum and
//!   ε-constraint baselines ([`scalarize`]), NSGA-II ([`nsga2`]) and the
//!   goal-attainment method in standard and improved form ([`goal`]) —
//!   the paper's methodological contribution;
//! * surrogate-screened variants ([`differential_evolution_screened`],
//!   [`particle_swarm_screened`], [`nsga2_screened`]) that consult an
//!   `rfkit-surrogate` response-surface model serially before each
//!   parallel batch, pruning candidates whose optimistic outlook is
//!   already beaten — predictions only veto evaluations, they never
//!   enter results.
//!
//! ## Example: trade off two competing objectives
//!
//! ```
//! use rfkit_opt::{improved_goal_attainment, Bounds, GoalConfig, GoalProblem};
//!
//! // Minimize both x² and (x−2)² — the Pareto set is x ∈ [0, 2].
//! let objectives = |x: &[f64]| vec![x[0] * x[0], (x[0] - 2.0) * (x[0] - 2.0)];
//! let problem = GoalProblem::new(
//!     &objectives,
//!     vec![0.0, 0.0],      // aspire to both being 0
//!     vec![1.0, 1.0],      // equal priority
//!     Bounds::uniform(1, -1.0, 3.0),
//! );
//! let r = improved_goal_attainment(&problem, &GoalConfig::default());
//! assert!((r.x[0] - 1.0).abs() < 1e-2); // the balanced trade-off
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod de;
pub mod goal;
mod lm;
mod nelder_mead;
mod nsga2;
pub mod pareto;
mod pattern;
mod problem;
mod pso;
mod sa;
pub mod scalarize;

pub use de::{differential_evolution, differential_evolution_screened, DeConfig};
pub use goal::{
    auto_weights, improved_goal_attainment, standard_goal_attainment, trace_front, GoalConfig,
    GoalProblem, GoalResult, NON_FINITE_PENALTY,
};
pub use lm::{levenberg_marquardt, LmConfig};
pub use nelder_mead::{nelder_mead, NelderMeadConfig};
pub use nsga2::{nsga2, nsga2_screened, Individual, Nsga2Config, Nsga2Result};
pub use pattern::{pattern_search, PatternConfig};
pub use problem::{Bounds, BoundsError, CountingObjective, OptResult};
pub use pso::{particle_swarm, particle_swarm_screened, PsoConfig};
pub use sa::{simulated_annealing, SaConfig};
