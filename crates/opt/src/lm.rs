//! Levenberg–Marquardt nonlinear least squares.
//!
//! The final "direct" refinement step of the identification procedure fits
//! model parameters to measured residuals; LM is the standard tool. The
//! Jacobian is computed by forward differences, the damping parameter by
//! the usual multiplicative adaptation, and box bounds by projection.

use crate::problem::{Bounds, OptResult};
use rfkit_num::RMatrix;

/// Configuration for [`levenberg_marquardt`].
#[derive(Debug, Clone, PartialEq)]
pub struct LmConfig {
    /// Maximum residual-vector evaluations (Jacobian columns count).
    pub max_evals: usize,
    /// Converge when the relative reduction of the cost falls below this.
    pub f_tol: f64,
    /// Converge when the step norm (relative to bound spans) falls below
    /// this.
    pub x_tol: f64,
    /// Initial damping parameter λ.
    pub lambda0: f64,
}

impl Default for LmConfig {
    fn default() -> Self {
        LmConfig {
            max_evals: 2000,
            f_tol: 1e-12,
            x_tol: 1e-10,
            lambda0: 1e-3,
        }
    }
}

/// Minimizes `0.5·‖r(x)‖²` over the box `bounds` starting at `x0`.
///
/// `residuals` maps a parameter vector to a residual vector of fixed
/// length.
///
/// # Panics
///
/// Panics if `x0.len() != bounds.dim()` or the residual length varies
/// between calls.
///
/// # Examples
///
/// ```
/// use rfkit_opt::{levenberg_marquardt, Bounds, LmConfig};
/// // Fit y = a·exp(b·t) to noiseless data from a=2, b=-1.
/// let t: Vec<f64> = (0..10).map(|i| i as f64 * 0.3).collect();
/// let y: Vec<f64> = t.iter().map(|&ti| 2.0 * (-ti).exp()).collect();
/// let b = Bounds::new(vec![0.1, -5.0], vec![10.0, 0.0]).unwrap();
/// let r = levenberg_marquardt(
///     |p: &[f64]| t.iter().zip(&y).map(|(&ti, &yi)| p[0] * (p[1] * ti).exp() - yi).collect(),
///     &[1.0, -0.5],
///     &b,
///     &LmConfig::default(),
/// );
/// assert!((r.x[0] - 2.0).abs() < 1e-6);
/// assert!((r.x[1] + 1.0).abs() < 1e-6);
/// ```
pub fn levenberg_marquardt(
    mut residuals: impl FnMut(&[f64]) -> Vec<f64>,
    x0: &[f64],
    bounds: &Bounds,
    config: &LmConfig,
) -> OptResult {
    let n = bounds.dim();
    assert_eq!(x0.len(), n, "start point dimension mismatch");
    let span = bounds.span();

    let mut evals = 0usize;
    let mut x = bounds.clamp(x0);
    let mut r = {
        evals += 1;
        residuals(&x)
    };
    let m = r.len();
    let cost = |r: &[f64]| 0.5 * r.iter().map(|v| v * v).sum::<f64>();
    let mut current_cost = cost(&r);
    let mut lambda = config.lambda0;
    let mut converged = false;
    let mut iteration = 0u64;

    while evals + n < config.max_evals {
        iteration += 1;
        // Forward-difference Jacobian (m×n).
        let mut jac = RMatrix::zeros(m, n);
        for j in 0..n {
            let h = (f64::EPSILON.sqrt() * x[j].abs().max(1e-8 * span[j].max(1e-12))).max(1e-14);
            let mut xp = x.clone();
            // Step inward if at the upper bound.
            let h = if xp[j] + h > bounds.hi()[j] { -h } else { h };
            xp[j] += h;
            evals += 1;
            let rp = residuals(&xp);
            assert_eq!(rp.len(), m, "residual length must not vary");
            for i in 0..m {
                jac[(i, j)] = (rp[i] - r[i]) / h;
            }
        }
        // Normal equations: (JᵀJ + λ·diag(JᵀJ))·δ = −Jᵀr.
        let jt = jac.transpose();
        let jtj = jt.matmul(&jac).expect("dimensions chain");
        let jtr = jt.matvec(&r);
        let mut improved = false;
        for _ in 0..10 {
            let mut a = jtj.clone();
            for d in 0..n {
                let diag = jtj[(d, d)];
                a[(d, d)] = diag + lambda * diag.max(1e-12);
            }
            let delta = match a.solve(&jtr.iter().map(|v| -v).collect::<Vec<_>>()) {
                Ok(d) => d,
                Err(_) => {
                    lambda *= 10.0;
                    continue;
                }
            };
            let x_new = bounds.clamp(
                &x.iter()
                    .zip(&delta)
                    .map(|(xi, di)| xi + di)
                    .collect::<Vec<_>>(),
            );
            if evals >= config.max_evals {
                break;
            }
            evals += 1;
            let r_new = residuals(&x_new);
            let new_cost = cost(&r_new);
            if new_cost < current_cost {
                // Accept, relax damping.
                let rel_reduction = (current_cost - new_cost) / current_cost.max(1e-300);
                let step_norm = x_new
                    .iter()
                    .zip(&x)
                    .zip(&span)
                    .map(|((a, b), s)| ((a - b) / s.max(1e-300)).abs())
                    .fold(0.0, f64::max);
                x = x_new;
                r = r_new;
                current_cost = new_cost;
                lambda = (lambda * 0.3).max(1e-12);
                improved = true;
                if rel_reduction < config.f_tol || step_norm < config.x_tol {
                    converged = true;
                }
                break;
            }
            lambda *= 10.0;
            if lambda > 1e12 {
                break;
            }
        }
        rfkit_obs::event(
            "opt.lm.iter",
            &[
                ("iter", iteration as f64),
                ("cost", current_cost),
                ("lambda", lambda),
                ("evals", evals as f64),
            ],
        );
        if converged || !improved {
            converged = converged || !improved && current_cost.is_finite();
            break;
        }
    }

    OptResult {
        x,
        value: current_cost,
        evaluations: evals,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_least_squares_exact() {
        // r = A x − b with A well conditioned: one LM step solves it.
        let residuals = |x: &[f64]| {
            vec![
                2.0 * x[0] + x[1] - 5.0,
                x[0] + 3.0 * x[1] - 10.0,
                x[0] - x[1] + 1.0,
            ]
        };
        let b = Bounds::uniform(2, -100.0, 100.0);
        let r = levenberg_marquardt(residuals, &[0.0, 0.0], &b, &LmConfig::default());
        // Normal-equations solution: x = (1.3, 2.8), cost = 0.25.
        assert!((r.value - 0.25).abs() < 1e-10, "cost = {}", r.value);
        assert!((r.x[0] - 1.3).abs() < 1e-5);
        assert!((r.x[1] - 2.8).abs() < 1e-5);
        assert!(r.converged);
    }

    #[test]
    fn fits_exponential_decay() {
        let t: Vec<f64> = (0..20).map(|i| i as f64 * 0.2).collect();
        let y: Vec<f64> = t.iter().map(|&ti| 3.0 * (-1.5 * ti).exp() + 0.5).collect();
        let residuals = |p: &[f64]| -> Vec<f64> {
            t.iter()
                .zip(&y)
                .map(|(&ti, &yi)| p[0] * (p[1] * ti).exp() + p[2] - yi)
                .collect()
        };
        let b = Bounds::new(vec![0.1, -10.0, -5.0], vec![10.0, 0.0, 5.0]).unwrap();
        let r = levenberg_marquardt(residuals, &[1.0, -0.5, 0.0], &b, &LmConfig::default());
        assert!((r.x[0] - 3.0).abs() < 1e-5, "a = {}", r.x[0]);
        assert!((r.x[1] + 1.5).abs() < 1e-5, "b = {}", r.x[1]);
        assert!((r.x[2] - 0.5).abs() < 1e-5, "c = {}", r.x[2]);
    }

    #[test]
    fn rosenbrock_as_least_squares() {
        let residuals = |x: &[f64]| vec![10.0 * (x[1] - x[0] * x[0]), 1.0 - x[0]];
        let b = Bounds::uniform(2, -5.0, 5.0);
        let r = levenberg_marquardt(residuals, &[-1.2, 1.0], &b, &LmConfig::default());
        assert!(r.value < 1e-12, "cost = {}", r.value);
        assert!((r.x[0] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn projection_keeps_iterates_in_bounds() {
        // Optimum at x = 3 but box caps at 2.
        let residuals = |x: &[f64]| vec![x[0] - 3.0];
        let b = Bounds::new(vec![0.0], vec![2.0]).unwrap();
        let r = levenberg_marquardt(residuals, &[1.0], &b, &LmConfig::default());
        assert!((r.x[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn budget_respected() {
        let residuals = |x: &[f64]| vec![10.0 * (x[1] - x[0] * x[0]), 1.0 - x[0]];
        let b = Bounds::uniform(2, -5.0, 5.0);
        let cfg = LmConfig {
            max_evals: 20,
            ..Default::default()
        };
        let r = levenberg_marquardt(residuals, &[-1.2, 1.0], &b, &cfg);
        assert!(r.evaluations <= 21);
    }

    #[test]
    fn start_at_upper_bound_steps_inward() {
        let residuals = |x: &[f64]| vec![x[0] * x[0] - 1.0];
        let b = Bounds::new(vec![0.0], vec![4.0]).unwrap();
        let r = levenberg_marquardt(residuals, &[4.0], &b, &LmConfig::default());
        assert!((r.x[0] - 1.0).abs() < 1e-6, "x = {}", r.x[0]);
    }
}
