//! The goal attainment method for multi-objective optimization — standard
//! and improved variants.
//!
//! Gembicki's goal attainment method finds, for a goal vector `g` and
//! weight vector `w`, the design minimizing the attainment factor γ subject
//! to `fᵢ(x) − wᵢ·γ ≤ gᵢ`. Sweeping `g` (or `w`) traces the Pareto front,
//! including its concave portions, which the weighted-sum method misses.
//!
//! Two solvers are provided:
//!
//! * [`standard_goal_attainment`] — the textbook numerical treatment: an
//!   auxiliary variable γ plus a quadratic penalty for the constraints,
//!   minimized by a single Nelder–Mead run from a user start. This is the
//!   baseline the paper improves on; it needs a penalty weight, stalls in
//!   local minima and can return dominated points when the penalty is
//!   mis-tuned.
//! * [`improved_goal_attainment`] — the paper's "substantial improvement"
//!   (reconstructed; see DESIGN.md): minimize the **exact** attainment
//!   function `Γ(x) = maxᵢ (fᵢ(x) − gᵢ)/wᵢ` directly — no γ variable, no
//!   penalty parameter — with a differential-evolution global phase
//!   followed by a pattern-search polish, optionally multistarted. Zero
//!   weights turn the corresponding objective into a hard `fᵢ ≤ gᵢ`
//!   constraint.

use crate::de::{differential_evolution, DeConfig};
use crate::nelder_mead::{nelder_mead, NelderMeadConfig};
use crate::pattern::{pattern_search, PatternConfig};
use crate::problem::Bounds;
use rfkit_par::{par_collect, par_map_cfg, ParConfig};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Attainment value assigned to an objective vector with any non-finite
/// component (a solver failure leaking NaN/∞ through an objective).
/// Finite — so it still orders against other candidates — but larger than
/// any value a real design produces, including the infeasibility
/// penalties upstream objective builders emit.
pub const NON_FINITE_PENALTY: f64 = 1e9;

/// A multi-objective goal-attainment problem instance.
pub struct GoalProblem<'a> {
    /// Vector objective `f(x)`; every component is minimized.
    pub objectives: &'a (dyn Fn(&[f64]) -> Vec<f64> + Sync),
    /// Goal (aspiration) level per objective.
    pub goals: Vec<f64>,
    /// Weight per objective; larger = softer. A zero weight makes the goal
    /// a hard constraint.
    pub weights: Vec<f64>,
    /// Design-variable box.
    pub bounds: Bounds,
}

impl<'a> GoalProblem<'a> {
    /// Creates a problem.
    ///
    /// # Panics
    ///
    /// Panics if goal/weight lengths differ, weights are negative, or all
    /// weights are zero.
    pub fn new(
        objectives: &'a (dyn Fn(&[f64]) -> Vec<f64> + Sync),
        goals: Vec<f64>,
        weights: Vec<f64>,
        bounds: Bounds,
    ) -> Self {
        assert_eq!(goals.len(), weights.len(), "goals/weights length mismatch");
        assert!(!goals.is_empty(), "need at least one objective");
        assert!(weights.iter().all(|&w| w >= 0.0), "weights must be >= 0");
        assert!(
            weights.iter().any(|&w| w > 0.0),
            "at least one weight must be positive"
        );
        GoalProblem {
            objectives,
            goals,
            weights,
            bounds,
        }
    }

    /// The exact attainment function
    /// `Γ(x) = maxᵢ (fᵢ(x) − gᵢ)/wᵢ` (hard-constraint terms with `wᵢ = 0`
    /// enter as a large violation penalty).
    pub fn attainment(&self, f_values: &[f64]) -> f64 {
        assert_eq!(f_values.len(), self.goals.len(), "objective count mismatch");
        // A NaN objective would otherwise vanish here: `f64::max` ignores
        // NaN, so both the γ fold and the `(f - g).max(0.0)` violation
        // term silently swallow it and a failed evaluation could grade as
        // attained. Map any non-finite component to a finite penalty that
        // dominates every legitimate value instead.
        if f_values.iter().any(|v| !v.is_finite()) {
            return NON_FINITE_PENALTY;
        }
        let mut gamma = f64::NEG_INFINITY;
        let mut violation = 0.0;
        for ((&f, &g), &w) in f_values.iter().zip(&self.goals).zip(&self.weights) {
            if w > 0.0 {
                gamma = gamma.max((f - g) / w);
            } else {
                violation += (f - g).max(0.0);
            }
        }
        gamma + 1e6 * violation
    }
}

/// Result of a goal-attainment solve.
#[derive(Debug, Clone, PartialEq)]
pub struct GoalResult {
    /// Best design found.
    pub x: Vec<f64>,
    /// Attainment factor γ at `x` (negative = goals over-attained).
    pub attainment: f64,
    /// Objective values at `x`.
    pub objectives: Vec<f64>,
    /// Objective-function evaluations used.
    pub evaluations: usize,
}

/// Configuration shared by both goal-attainment solvers.
#[derive(Debug, Clone, PartialEq)]
pub struct GoalConfig {
    /// Total objective-evaluation budget.
    pub max_evals: usize,
    /// Quadratic penalty weight for [`standard_goal_attainment`].
    pub penalty: f64,
    /// Number of global/local restarts for [`improved_goal_attainment`].
    pub multistart: usize,
    /// Fraction of the budget given to the global (DE) phase of the
    /// improved method.
    pub global_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GoalConfig {
    fn default() -> Self {
        GoalConfig {
            max_evals: 10_000,
            penalty: 1e4,
            multistart: 2,
            global_fraction: 0.6,
            seed: 0x60a1,
        }
    }
}

/// The textbook goal-attainment solve: auxiliary γ + quadratic penalty,
/// one Nelder–Mead descent from `start`.
///
/// # Panics
///
/// Panics if `start.len() != problem.bounds.dim()`.
pub fn standard_goal_attainment(
    problem: &GoalProblem<'_>,
    start: &[f64],
    config: &GoalConfig,
) -> GoalResult {
    let _span = rfkit_obs::span("opt.standard_goal");
    let n = problem.bounds.dim();
    assert_eq!(start.len(), n, "start dimension mismatch");
    let evals = AtomicUsize::new(0);

    // Augmented variables: (x, γ). γ is bounded loosely around the start's
    // own attainment value.
    let f_start = (problem.objectives)(start);
    evals.fetch_add(1, Ordering::Relaxed);
    let gamma0 = problem.attainment(&f_start).min(1e6);
    let gamma_span = 10.0 * (gamma0.abs() + 1.0);
    let mut lo = problem.bounds.lo().to_vec();
    let mut hi = problem.bounds.hi().to_vec();
    lo.push(gamma0 - gamma_span);
    hi.push(gamma0 + gamma_span);
    let aug_bounds = Bounds::new(lo, hi).expect("augmented bounds valid");

    let penalty = config.penalty;
    let objective = |xz: &[f64]| -> f64 {
        let (x, gamma) = xz.split_at(n);
        let gamma = gamma[0];
        evals.fetch_add(1, Ordering::Relaxed);
        let f = (problem.objectives)(x);
        let mut pen = 0.0;
        for ((&fi, &gi), &wi) in f.iter().zip(&problem.goals).zip(&problem.weights) {
            let slack = fi - wi * gamma - gi;
            if slack > 0.0 {
                pen += slack * slack;
            }
        }
        gamma + penalty * pen
    };

    let mut x0 = start.to_vec();
    x0.push(gamma0);
    let nm_cfg = NelderMeadConfig {
        max_evals: config.max_evals,
        ..Default::default()
    };
    let r = nelder_mead(objective, &x0, &aug_bounds, &nm_cfg);
    let x = r.x[..n].to_vec();
    let f = (problem.objectives)(&x);
    evals.fetch_add(1, Ordering::Relaxed);
    let attainment = problem.attainment(&f);
    let evaluations = evals.load(Ordering::Relaxed);
    rfkit_obs::event(
        "opt.goal.standard",
        &[("gamma", attainment), ("evals", evaluations as f64)],
    );
    GoalResult {
        x,
        attainment,
        objectives: f,
        evaluations,
    }
}

/// The improved goal-attainment solve: exact minimax attainment function,
/// DE global phase, pattern-search polish, multistart.
///
/// The independent restarts run in parallel through `rfkit-par` (each is
/// seeded from `config.seed + k`, so the result is identical at any thread
/// count); the winner is picked in restart order.
pub fn improved_goal_attainment(problem: &GoalProblem<'_>, config: &GoalConfig) -> GoalResult {
    let _span = rfkit_obs::span("opt.improved_goal");
    let evals = AtomicUsize::new(0);
    let gamma = |x: &[f64]| -> f64 {
        evals.fetch_add(1, Ordering::Relaxed);
        problem.attainment(&(problem.objectives)(x))
    };

    let starts = config.multistart.max(1);
    let per_start = config.max_evals / starts;
    let global_budget = ((per_start as f64) * config.global_fraction.clamp(0.0, 1.0)) as usize;
    let polish_budget = per_start.saturating_sub(global_budget);

    // Every restart is self-contained and deterministically seeded, so the
    // batch parallelizes; serial_threshold 0 because each item is an entire
    // optimization run, not a cheap evaluation.
    let runs_cfg = ParConfig {
        serial_threshold: 0,
        ..ParConfig::default()
    };
    let runs = par_collect(starts, &runs_cfg, |k| {
        let candidate = if global_budget > 0 {
            let de_cfg = DeConfig {
                max_evals: global_budget,
                seed: config.seed.wrapping_add(k as u64),
                ..Default::default()
            };
            differential_evolution(|x| gamma(x), &problem.bounds, &de_cfg).x
        } else {
            problem.bounds.center()
        };
        let ps_cfg = PatternConfig {
            max_evals: polish_budget.max(1),
            ..Default::default()
        };
        let polished = pattern_search(|x| gamma(x), &candidate, &problem.bounds, &ps_cfg);
        rfkit_obs::event(
            "opt.goal.start",
            &[("start", k as f64), ("gamma", polished.value)],
        );
        polished
    });

    let mut best_x: Option<Vec<f64>> = None;
    let mut best_gamma = f64::INFINITY;
    for polished in runs {
        if polished.value < best_gamma {
            best_gamma = polished.value;
            best_x = Some(polished.x);
        }
    }

    let x = best_x.expect("at least one start ran");
    let objectives = (problem.objectives)(&x);
    evals.fetch_add(1, Ordering::Relaxed);
    let attainment = problem.attainment(&objectives);
    let evaluations = evals.load(Ordering::Relaxed);
    rfkit_obs::event(
        "opt.goal.improved",
        &[("gamma", attainment), ("evals", evaluations as f64)],
    );
    GoalResult {
        attainment,
        x,
        objectives,
        evaluations,
    }
}

/// Traces a Pareto front by sweeping goal vectors: for each goal vector in
/// `goal_sweep` the improved method is run and the resulting objective
/// point collected.
///
/// The sweep points are independent solves and run in parallel through
/// `rfkit-par`; results come back in sweep order.
pub fn trace_front(
    objectives: &(dyn Fn(&[f64]) -> Vec<f64> + Sync),
    goal_sweep: &[Vec<f64>],
    weights: &[f64],
    bounds: &Bounds,
    config: &GoalConfig,
) -> Vec<GoalResult> {
    let _span = rfkit_obs::span("opt.trace_front");
    let sweep_cfg = ParConfig {
        serial_threshold: 0,
        ..ParConfig::default()
    };
    par_map_cfg(&sweep_cfg, goal_sweep, |g| {
        let problem = GoalProblem::new(objectives, g.clone(), weights.to_vec(), bounds.clone());
        improved_goal_attainment(&problem, config)
    })
}

/// Derives balanced weights from ideal (per-objective best) and nadir
/// (per-objective worst on the front) vectors: `wᵢ = nadirᵢ − idealᵢ`,
/// floored to a small positive value.
pub fn auto_weights(ideal: &[f64], nadir: &[f64]) -> Vec<f64> {
    assert_eq!(ideal.len(), nadir.len(), "ideal/nadir length mismatch");
    ideal
        .iter()
        .zip(nadir)
        .map(|(&i, &n)| (n - i).abs().max(1e-9))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Convex bi-objective toy: f1 = x², f2 = (x − 2)², Pareto set x ∈ [0, 2].
    fn convex_pair(x: &[f64]) -> Vec<f64> {
        vec![x[0] * x[0], (x[0] - 2.0) * (x[0] - 2.0)]
    }

    /// A strictly concave front (weighted sums only reach its endpoints).
    fn concave_pair(x: &[f64]) -> Vec<f64> {
        let t = x[0].clamp(0.0, 1.0);
        // Points on the unit circle f1² + f2² = 1 bulge away from the
        // origin: a concave front under minimization.
        vec![t, (1.0 - t * t).sqrt()]
    }

    #[test]
    fn exact_attainment_function() {
        let obj = |_: &[f64]| vec![0.0];
        let p = GoalProblem::new(
            &obj,
            vec![1.0, 2.0],
            vec![1.0, 2.0],
            Bounds::uniform(1, 0.0, 1.0),
        );
        // f = (3, 2): terms (3-1)/1 = 2, (2-2)/2 = 0 → Γ = 2.
        assert_eq!(p.attainment(&[3.0, 2.0]), 2.0);
        // Over-attained goals give negative Γ.
        assert!(p.attainment(&[0.0, 0.0]) < 0.0);
    }

    #[test]
    fn non_finite_objectives_are_penalized_not_swallowed() {
        let obj = |_: &[f64]| vec![0.0];
        let p = GoalProblem::new(
            &obj,
            vec![1.0, 2.0],
            vec![1.0, 0.0],
            Bounds::uniform(1, 0.0, 1.0),
        );
        // NaN in either a soft or a hard component must dominate every
        // legitimate candidate — without the guard, `f64::max` would
        // silently drop the NaN soft term and clamp the NaN violation
        // term to zero, grading a broken evaluation as attained.
        assert_eq!(p.attainment(&[f64::NAN, 0.0]), NON_FINITE_PENALTY);
        assert_eq!(p.attainment(&[0.0, f64::NAN]), NON_FINITE_PENALTY);
        assert_eq!(p.attainment(&[f64::INFINITY, 0.0]), NON_FINITE_PENALTY);
        // An infeasibility-penalty-scale candidate (the 1e3 the objective
        // builders emit) still orders below the non-finite penalty.
        assert!(p.attainment(&[1e3, 2.0]) < NON_FINITE_PENALTY);
    }

    #[test]
    fn hard_constraint_weight_zero() {
        let obj = |_: &[f64]| vec![0.0];
        let p = GoalProblem::new(
            &obj,
            vec![1.0, 2.0],
            vec![1.0, 0.0],
            Bounds::uniform(1, 0.0, 1.0),
        );
        // Violating the w=0 goal incurs the big penalty.
        assert!(p.attainment(&[0.0, 3.0]) > 1e5);
        // Satisfying it leaves only the soft term.
        assert_eq!(p.attainment(&[2.0, 1.5]), 1.0);
    }

    #[test]
    fn improved_reaches_balanced_point_on_convex_front() {
        let obj: &(dyn Fn(&[f64]) -> Vec<f64> + Sync) = &convex_pair;
        let p = GoalProblem::new(
            obj,
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            Bounds::uniform(1, -1.0, 3.0),
        );
        let r = improved_goal_attainment(&p, &GoalConfig::default());
        // Equal goals/weights → symmetric point x = 1, f = (1, 1), γ = 1.
        assert!((r.x[0] - 1.0).abs() < 1e-3, "x = {}", r.x[0]);
        assert!((r.attainment - 1.0).abs() < 1e-3);
    }

    #[test]
    fn standard_also_solves_easy_convex_case() {
        let obj: &(dyn Fn(&[f64]) -> Vec<f64> + Sync) = &convex_pair;
        let p = GoalProblem::new(
            obj,
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            Bounds::uniform(1, -1.0, 3.0),
        );
        let r = standard_goal_attainment(&p, &[0.5], &GoalConfig::default());
        assert!((r.x[0] - 1.0).abs() < 1e-2, "x = {}", r.x[0]);
    }

    #[test]
    fn weights_bias_the_attained_point() {
        let obj: &(dyn Fn(&[f64]) -> Vec<f64> + Sync) = &convex_pair;
        // Heavier weight on f1 → f1 allowed to be worse → x closer to 2.
        let p = GoalProblem::new(
            obj,
            vec![0.0, 0.0],
            vec![4.0, 1.0],
            Bounds::uniform(1, -1.0, 3.0),
        );
        let r = improved_goal_attainment(&p, &GoalConfig::default());
        assert!(r.x[0] > 1.2, "x = {}", r.x[0]);
        // And the attained point satisfies f1/4 = f2 (both active).
        assert!((r.objectives[0] / 4.0 - r.objectives[1]).abs() < 1e-2);
    }

    #[test]
    fn goal_sweep_traces_concave_front() {
        // Sweep goals along the f1 axis; the improved method must recover
        // circle points including the concave middle.
        let obj: &(dyn Fn(&[f64]) -> Vec<f64> + Sync) = &concave_pair;
        let bounds = Bounds::uniform(1, 0.0, 1.0);
        let sweep: Vec<Vec<f64>> = (1..10).map(|k| vec![k as f64 / 10.0, 0.0]).collect();
        let cfg = GoalConfig {
            max_evals: 3000,
            ..Default::default()
        };
        let results = trace_front(obj, &sweep, &[1e-9, 1.0], &bounds, &cfg);
        for (k, r) in results.iter().enumerate() {
            let f = &r.objectives;
            // On the circle: f1² + f2² = 1.
            let resid = (f[0].powi(2) + f[1].powi(2) - 1.0).abs();
            assert!(resid < 1e-3, "point {k} off the front: {f:?}");
            // Goal on f1 (hard-ish via tiny weight) honoured.
            assert!(f[0] <= sweep[k][0] + 1e-3);
        }
        // The middle of the sweep is in the concave region; check spread.
        let f1s: Vec<f64> = results.iter().map(|r| r.objectives[0]).collect();
        assert!(
            f1s.windows(2).all(|w| w[1] >= w[0] - 1e-6),
            "sweep is ordered"
        );
    }

    #[test]
    fn improved_beats_standard_on_multimodal_landscape() {
        // Objectives with parasitic local minima in x[1].
        let tricky = |x: &[f64]| -> Vec<f64> {
            let trap = 2.0 + (x[1] * 7.0).sin() * 2.0 + x[1] * x[1];
            vec![x[0] * x[0] + trap, (x[0] - 2.0) * (x[0] - 2.0) + trap]
        };
        let obj: &(dyn Fn(&[f64]) -> Vec<f64> + Sync) = &tricky;
        let bounds = Bounds::uniform(2, -3.0, 3.0);
        let goals = vec![0.0, 0.0];
        let weights = vec![1.0, 1.0];
        let cfg = GoalConfig {
            max_evals: 8000,
            ..Default::default()
        };
        let mut standard_wins = 0;
        let mut improved_wins = 0;
        for seed in 0..5u64 {
            let p = GoalProblem::new(obj, goals.clone(), weights.clone(), bounds.clone());
            // Standard starts from a "random-ish" corner-dependent point.
            let start = [-3.0 + (seed as f64) * 1.4, 3.0 - (seed as f64) * 1.3];
            let s = standard_goal_attainment(&p, &start, &cfg);
            let i = improved_goal_attainment(
                &p,
                &GoalConfig {
                    seed,
                    ..cfg.clone()
                },
            );
            if i.attainment < s.attainment - 1e-6 {
                improved_wins += 1;
            } else if s.attainment < i.attainment - 1e-6 {
                standard_wins += 1;
            }
        }
        assert!(
            improved_wins > standard_wins,
            "improved {improved_wins} vs standard {standard_wins}"
        );
    }

    #[test]
    fn auto_weights_from_anchor_points() {
        let w = auto_weights(&[0.5, 10.0], &[2.5, 14.0]);
        assert_eq!(w, vec![2.0, 4.0]);
        // Degenerate range floors instead of zeroing.
        let w2 = auto_weights(&[1.0], &[1.0]);
        assert!(w2[0] > 0.0);
    }

    #[test]
    #[should_panic(expected = "weights must be >= 0")]
    fn rejects_negative_weights() {
        let obj = |_: &[f64]| vec![0.0];
        GoalProblem::new(&obj, vec![0.0], vec![-1.0], Bounds::uniform(1, 0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn rejects_all_zero_weights() {
        let obj = |_: &[f64]| vec![0.0, 0.0];
        GoalProblem::new(
            &obj,
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            Bounds::uniform(1, 0.0, 1.0),
        );
    }
}
