//! NSGA-II — the evolutionary multi-objective baseline.
//!
//! The goal-attainment study compares against a population method that
//! approximates the whole Pareto front in one run: non-dominated sorting,
//! crowding-distance diversity, binary tournaments, simulated binary
//! crossover and polynomial mutation (Deb et al. 2002).
//!
//! Offspring variation (tournaments, SBX, mutation — all the randomness)
//! runs serially per generation; the resulting batch of candidate vectors
//! is then evaluated in parallel through `rfkit-par`, so fixed-seed runs
//! are identical at any thread count.

use crate::pareto::{crowding_distance, nondominated_sort};
use crate::problem::Bounds;
use rfkit_num::rng::Rng64;
use rfkit_par::par_map;
use rfkit_surrogate::SurrogateScreen;

/// Configuration for [`nsga2`].
#[derive(Debug, Clone, PartialEq)]
pub struct Nsga2Config {
    /// Population size (even; 0 selects `20 × dim` capped to 100).
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// SBX crossover probability.
    pub crossover_prob: f64,
    /// SBX distribution index (larger = offspring closer to parents).
    pub eta_crossover: f64,
    /// Per-gene mutation probability; 0 selects `1/dim`.
    pub mutation_prob: f64,
    /// Polynomial-mutation distribution index.
    pub eta_mutation: f64,
    /// Maximum objective evaluations; 0 means unlimited (the run is
    /// bounded by `generations` alone). When the budget runs out
    /// mid-generation the offspring batch is truncated and the run
    /// returns cleanly after one final environmental selection.
    pub max_evals: usize,
    /// Hypervolume reference point for the convergence history. When
    /// set on a 2-objective run, [`Nsga2Result::history`] records
    /// `(evaluations so far, first-front hypervolume)` after
    /// initialisation and after every generation — the
    /// evaluations-to-quality curve that benchmark protocols compare.
    /// `None` (the default) skips the bookkeeping.
    pub hv_reference: Option<[f64; 2]>,
    /// Design vectors injected into the initial population (warm
    /// start), e.g. a previous run's front. Up to `population` vectors
    /// are used in order; the remainder is sampled randomly as usual.
    /// Injected vectors are evaluated like any other individual — the
    /// warm start changes where the search begins, never what a result
    /// means.
    pub initial_population: Vec<Vec<f64>>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Nsga2Config {
    fn default() -> Self {
        Nsga2Config {
            population: 0,
            generations: 100,
            crossover_prob: 0.9,
            eta_crossover: 15.0,
            mutation_prob: 0.0,
            eta_mutation: 20.0,
            max_evals: 0,
            hv_reference: None,
            initial_population: Vec::new(),
            seed: 0x45a2,
        }
    }
}

/// One individual of the final population.
#[derive(Debug, Clone, PartialEq)]
pub struct Individual {
    /// Design vector.
    pub x: Vec<f64>,
    /// Objective values.
    pub objectives: Vec<f64>,
}

/// Result of an NSGA-II run.
#[derive(Debug, Clone, PartialEq)]
pub struct Nsga2Result {
    /// The final population's first (Pareto) front.
    pub front: Vec<Individual>,
    /// Total objective evaluations used.
    pub evaluations: usize,
    /// Convergence history `(evaluations, hypervolume)` per generation;
    /// empty unless [`Nsga2Config::hv_reference`] was set on a
    /// 2-objective run.
    pub history: Vec<(usize, f64)>,
}

/// Approximates the Pareto front of `objectives` over `bounds`.
///
/// # Examples
///
/// ```
/// use rfkit_opt::{nsga2, Bounds, Nsga2Config};
/// let obj = |x: &[f64]| vec![x[0] * x[0], (x[0] - 2.0) * (x[0] - 2.0)];
/// let r = nsga2(&obj, &Bounds::uniform(1, -2.0, 4.0), &Nsga2Config {
///     generations: 40, ..Default::default()
/// });
/// assert!(r.front.len() > 10);
/// ```
pub fn nsga2(
    objectives: &(dyn Fn(&[f64]) -> Vec<f64> + Sync),
    bounds: &Bounds,
    config: &Nsga2Config,
) -> Nsga2Result {
    nsga2_impl(objectives, bounds, config, None)
}

/// [`nsga2`] with a surrogate screen deciding, per offspring, whether
/// the true objectives are worth evaluating.
///
/// An offspring is pruned when its lower-confidence-bound vector —
/// optimistic in every objective at once — is still Pareto-dominated by
/// a parent: the true evaluation could then only produce a point that
/// environmental selection would discard. Screening runs serially
/// between variation and the parallel batch; pruned offspring never
/// exist as individuals, so every objective vector in the population
/// (and the returned front) comes from a true evaluation.
/// `evaluations` counts only true evaluations.
///
/// # Panics
///
/// Panics if the screen's dimensions disagree with `bounds.dim()` or
/// the objective count.
pub fn nsga2_screened(
    objectives: &(dyn Fn(&[f64]) -> Vec<f64> + Sync),
    bounds: &Bounds,
    config: &Nsga2Config,
    screen: &mut SurrogateScreen,
) -> Nsga2Result {
    nsga2_impl(objectives, bounds, config, Some(screen))
}

fn nsga2_impl(
    objectives: &(dyn Fn(&[f64]) -> Vec<f64> + Sync),
    bounds: &Bounds,
    config: &Nsga2Config,
    mut screen: Option<&mut SurrogateScreen>,
) -> Nsga2Result {
    let n = bounds.dim();
    let pop_size = if config.population == 0 {
        (20 * n).clamp(20, 100) & !1usize
    } else {
        (config.population.max(4)) & !1usize
    };
    let mutation_prob = if config.mutation_prob <= 0.0 {
        1.0 / n as f64
    } else {
        config.mutation_prob
    };
    let mut rng = Rng64::new(config.seed);
    let mut evals = 0usize;

    // Budget-capped initialisation; identical to the unbounded path
    // whenever `max_evals` covers at least one full population.
    let init_n = if config.max_evals == 0 {
        pop_size
    } else {
        pop_size.min(config.max_evals.max(2))
    };
    let init_xs: Vec<Vec<f64>> = config
        .initial_population
        .iter()
        .take(init_n)
        .inspect(|x| assert_eq!(x.len(), n, "warm-start vector dimension mismatch"))
        .cloned()
        .chain((config.initial_population.len()..init_n).map(|_| bounds.sample(&mut rng)))
        .collect();
    let init_objs = par_map(&init_xs, |x| objectives(x));
    evals += init_xs.len();
    if init_n < pop_size {
        rfkit_obs::event("opt.nsga2.truncated", &[("evals", evals as f64)]);
    }
    if let Some(scr) = screen.as_deref_mut() {
        for (x, f) in init_xs.iter().zip(&init_objs) {
            scr.observe(x, f);
        }
    }
    let mut pop: Vec<Individual> = init_xs
        .into_iter()
        .zip(init_objs)
        .map(|(x, objectives)| Individual { x, objectives })
        .collect();

    // Evaluations-to-quality curve, recorded after initialisation and
    // after every environmental selection when requested.
    let mut history: Vec<(usize, f64)> = Vec::new();
    let record = |pop: &[Individual], evals: usize, history: &mut Vec<(usize, f64)>| {
        let Some(reference) = config.hv_reference else {
            return;
        };
        if pop.first().is_none_or(|i| i.objectives.len() != 2) {
            return;
        }
        let objs: Vec<Vec<f64>> = pop.iter().map(|i| i.objectives.clone()).collect();
        let idx = crate::pareto::pareto_front_indices(&objs);
        let pts: Vec<Vec<f64>> = idx.iter().map(|&i| objs[i].clone()).collect();
        history.push((evals, crate::pareto::hypervolume_2d(&pts, reference)));
    };
    record(&pop, evals, &mut history);

    // Telemetry-only hypervolume reference for 2-objective runs, fixed
    // from the initial population so per-generation values are comparable.
    let hv_ref: Option<[f64; 2]> =
        if rfkit_obs::enabled() && pop.first().is_some_and(|i| i.objectives.len() == 2) {
            let mut m = [f64::NEG_INFINITY; 2];
            for ind in &pop {
                for (k, slot) in m.iter_mut().enumerate() {
                    *slot = slot.max(ind.objectives[k]);
                }
            }
            Some([
                m[0] + 0.1 * m[0].abs() + 1e-9,
                m[1] + 0.1 * m[1].abs() + 1e-9,
            ])
        } else {
            None
        };

    for generation in 0..config.generations {
        let remaining = if config.max_evals == 0 {
            usize::MAX
        } else {
            config.max_evals.saturating_sub(evals)
        };
        if remaining == 0 {
            break;
        }
        let batch = pop_size.min(remaining);
        // Rank + crowding of the current population.
        let objs: Vec<Vec<f64>> = pop.iter().map(|i| i.objectives.clone()).collect();
        let fronts = nondominated_sort(&objs);
        let mut rank = vec![0usize; pop.len()];
        let mut crowd = vec![0.0f64; pop.len()];
        for (r, front) in fronts.iter().enumerate() {
            let d = crowding_distance(&objs, front);
            for (k, &idx) in front.iter().enumerate() {
                rank[idx] = r;
                crowd[idx] = d[k];
            }
        }
        let tournament = |rng: &mut Rng64| -> usize {
            let a = rng.index(pop.len());
            let b = rng.index(pop.len());
            if rank[a] < rank[b] || (rank[a] == rank[b] && crowd[a] > crowd[b]) {
                a
            } else {
                b
            }
        };

        // Offspring variation: serial, all RNG draws happen here. The
        // batch equals `pop_size` until the eval budget runs short, so
        // the RNG sequence is unchanged for ample budgets.
        let mut child_xs: Vec<Vec<f64>> = Vec::with_capacity(batch);
        while child_xs.len() < batch {
            let p1 = tournament(&mut rng);
            let p2 = tournament(&mut rng);
            let (mut c1, mut c2) = sbx_crossover(
                &pop[p1].x,
                &pop[p2].x,
                bounds,
                config.crossover_prob,
                config.eta_crossover,
                &mut rng,
            );
            polynomial_mutation(
                &mut c1,
                bounds,
                mutation_prob,
                config.eta_mutation,
                &mut rng,
            );
            polynomial_mutation(
                &mut c2,
                bounds,
                mutation_prob,
                config.eta_mutation,
                &mut rng,
            );
            for c in [c1, c2] {
                if child_xs.len() < batch {
                    child_xs.push(c);
                }
            }
        }

        // Optional surrogate screening: serial, before the parallel
        // batch. A pruned offspring never becomes an Individual, so no
        // predicted value can enter the population or the front (prune,
        // never propagate); parents cover the vacated selection slots.
        let child_xs: Vec<Vec<f64>> = match screen.as_deref_mut() {
            Some(scr) => {
                let keep = scr.screen_multi(&child_xs, &objs);
                child_xs
                    .into_iter()
                    .zip(keep)
                    .filter_map(|(c, k)| k.then_some(c))
                    .collect()
            }
            None => child_xs,
        };

        // Parallel batch evaluation of the offspring.
        let child_objs = par_map(&child_xs, |x| objectives(x));
        evals += child_xs.len();
        if let Some(scr) = screen.as_deref_mut() {
            for (x, f) in child_xs.iter().zip(&child_objs) {
                scr.observe(x, f);
            }
        }
        let offspring: Vec<Individual> = child_xs
            .into_iter()
            .zip(child_objs)
            .map(|(x, objectives)| Individual { x, objectives })
            .collect();

        // Environmental selection on parents ∪ offspring.
        pop.extend(offspring);
        let objs: Vec<Vec<f64>> = pop.iter().map(|i| i.objectives.clone()).collect();
        let fronts = nondominated_sort(&objs);
        let mut next: Vec<Individual> = Vec::with_capacity(pop_size);
        for front in &fronts {
            if next.len() + front.len() <= pop_size {
                next.extend(front.iter().map(|&i| pop[i].clone()));
            } else {
                let d = crowding_distance(&objs, front);
                let mut order: Vec<usize> = (0..front.len()).collect();
                order.sort_by(|&a, &b| rfkit_num::total_cmp_f64(&d[b], &d[a]));
                for &k in &order {
                    if next.len() == pop_size {
                        break;
                    }
                    next.push(pop[front[k]].clone());
                }
            }
            if next.len() == pop_size {
                break;
            }
        }
        if rfkit_obs::enabled() {
            // Telemetry over the merged population's first front; never
            // read back by the search.
            let first = fronts.first().map(Vec::as_slice).unwrap_or(&[]);
            let mut fields = vec![
                ("gen", (generation + 1) as f64),
                ("front_size", first.len() as f64),
                ("evals", evals as f64),
            ];
            if let Some(reference) = hv_ref {
                let pts: Vec<Vec<f64>> = first.iter().map(|&i| pop[i].objectives.clone()).collect();
                fields.push(("hv", crate::pareto::hypervolume_2d(&pts, reference)));
            }
            rfkit_obs::event("opt.nsga2.gen", &fields);
        }
        pop = next;
        record(&pop, evals, &mut history);
        if batch < pop_size {
            rfkit_obs::event("opt.nsga2.truncated", &[("evals", evals as f64)]);
            break; // budget exhausted mid-generation
        }
    }

    let objs: Vec<Vec<f64>> = pop.iter().map(|i| i.objectives.clone()).collect();
    let fronts = nondominated_sort(&objs);
    let front = fronts
        .first()
        .map(|f| f.iter().map(|&i| pop[i].clone()).collect())
        .unwrap_or_default();
    Nsga2Result {
        front,
        evaluations: evals,
        history,
    }
}

/// Simulated binary crossover (SBX).
fn sbx_crossover(
    p1: &[f64],
    p2: &[f64],
    bounds: &Bounds,
    prob: f64,
    eta: f64,
    rng: &mut Rng64,
) -> (Vec<f64>, Vec<f64>) {
    let mut c1 = p1.to_vec();
    let mut c2 = p2.to_vec();
    if rng.next_f64() < prob {
        for d in 0..p1.len() {
            if rng.chance(0.5) || (p1[d] - p2[d]).abs() < 1e-14 {
                continue;
            }
            let u: f64 = rng.next_f64();
            let beta = if u <= 0.5 {
                (2.0 * u).powf(1.0 / (eta + 1.0))
            } else {
                (1.0 / (2.0 * (1.0 - u))).powf(1.0 / (eta + 1.0))
            };
            c1[d] = 0.5 * ((1.0 + beta) * p1[d] + (1.0 - beta) * p2[d]);
            c2[d] = 0.5 * ((1.0 - beta) * p1[d] + (1.0 + beta) * p2[d]);
        }
    }
    (bounds.clamp(&c1), bounds.clamp(&c2))
}

/// Polynomial mutation.
fn polynomial_mutation(x: &mut Vec<f64>, bounds: &Bounds, prob: f64, eta: f64, rng: &mut Rng64) {
    let span = bounds.span();
    for d in 0..x.len() {
        if rng.next_f64() >= prob || span[d] <= 0.0 {
            continue;
        }
        let u: f64 = rng.next_f64();
        let delta = if u < 0.5 {
            (2.0 * u).powf(1.0 / (eta + 1.0)) - 1.0
        } else {
            1.0 - (2.0 * (1.0 - u)).powf(1.0 / (eta + 1.0))
        };
        x[d] += delta * span[d];
    }
    *x = bounds.clamp(x);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto::{hypervolume_2d, pareto_front_indices};

    /// ZDT1-style convex benchmark in 3 variables.
    fn zdt1(x: &[f64]) -> Vec<f64> {
        let f1 = x[0];
        let g = 1.0 + 9.0 * x[1..].iter().sum::<f64>() / (x.len() - 1) as f64;
        let f2 = g * (1.0 - (f1 / g).sqrt());
        vec![f1, f2]
    }

    fn concave_pair(x: &[f64]) -> Vec<f64> {
        let t = x[0].clamp(0.0, 1.0);
        // Points on the unit circle f1² + f2² = 1 bulge away from the
        // origin: a concave front under minimization.
        vec![t, (1.0 - t * t).sqrt()]
    }

    #[test]
    fn approximates_zdt1_front() {
        let obj: &(dyn Fn(&[f64]) -> Vec<f64> + Sync) = &zdt1;
        let bounds = Bounds::uniform(3, 0.0, 1.0);
        let cfg = Nsga2Config {
            generations: 120,
            ..Default::default()
        };
        let r = nsga2(obj, &bounds, &cfg);
        assert!(r.front.len() >= 20, "front size {}", r.front.len());
        // True front: f2 = 1 − sqrt(f1) with g = 1. Check closeness.
        for ind in &r.front {
            let expect = 1.0 - ind.objectives[0].max(0.0).sqrt();
            assert!(
                (ind.objectives[1] - expect).abs() < 0.05,
                "({}, {}) vs ideal {expect}",
                ind.objectives[0],
                ind.objectives[1]
            );
        }
        // Spread: both ends present.
        let f1s: Vec<f64> = r.front.iter().map(|i| i.objectives[0]).collect();
        assert!(f1s.iter().cloned().fold(f64::INFINITY, f64::min) < 0.1);
        assert!(f1s.iter().cloned().fold(f64::NEG_INFINITY, f64::max) > 0.9);
    }

    #[test]
    fn covers_concave_front_unlike_weighted_sum() {
        let obj: &(dyn Fn(&[f64]) -> Vec<f64> + Sync) = &concave_pair;
        let bounds = Bounds::uniform(1, 0.0, 1.0);
        let cfg = Nsga2Config {
            generations: 60,
            ..Default::default()
        };
        let r = nsga2(obj, &bounds, &cfg);
        let interior = r
            .front
            .iter()
            .filter(|i| i.objectives[0] > 0.1 && i.objectives[0] < 0.9)
            .count();
        assert!(interior > 5, "NSGA-II must populate the concave interior");
    }

    #[test]
    fn front_is_internally_nondominated() {
        let obj: &(dyn Fn(&[f64]) -> Vec<f64> + Sync) = &zdt1;
        let bounds = Bounds::uniform(3, 0.0, 1.0);
        let r = nsga2(
            obj,
            &bounds,
            &Nsga2Config {
                generations: 30,
                ..Default::default()
            },
        );
        let objs: Vec<Vec<f64>> = r.front.iter().map(|i| i.objectives.clone()).collect();
        assert_eq!(pareto_front_indices(&objs).len(), objs.len());
    }

    #[test]
    fn hypervolume_grows_with_generations() {
        let obj: &(dyn Fn(&[f64]) -> Vec<f64> + Sync) = &zdt1;
        let bounds = Bounds::uniform(3, 0.0, 1.0);
        let short = nsga2(
            obj,
            &bounds,
            &Nsga2Config {
                generations: 5,
                seed: 7,
                ..Default::default()
            },
        );
        let long = nsga2(
            obj,
            &bounds,
            &Nsga2Config {
                generations: 80,
                seed: 7,
                ..Default::default()
            },
        );
        let hv = |r: &Nsga2Result| {
            let pts: Vec<Vec<f64>> = r.front.iter().map(|i| i.objectives.clone()).collect();
            hypervolume_2d(&pts, [1.5, 10.0])
        };
        assert!(hv(&long) > hv(&short), "{} vs {}", hv(&long), hv(&short));
    }

    #[test]
    fn cold_screen_matches_unscreened_exactly() {
        let obj: &(dyn Fn(&[f64]) -> Vec<f64> + Sync) = &zdt1;
        let bounds = Bounds::uniform(3, 0.0, 1.0);
        let cfg = Nsga2Config {
            generations: 15,
            seed: 23,
            ..Default::default()
        };
        let plain = nsga2(obj, &bounds, &cfg);
        let mut scr = rfkit_surrogate::SurrogateScreen::new(
            3,
            2,
            rfkit_surrogate::SurrogateConfig {
                min_train: usize::MAX,
                ..Default::default()
            },
        );
        let screened = nsga2_screened(obj, &bounds, &cfg, &mut scr);
        assert_eq!(plain.front, screened.front);
        assert_eq!(plain.evaluations, screened.evaluations);
    }

    #[test]
    fn armed_screen_prunes_and_keeps_front_quality() {
        let obj: &(dyn Fn(&[f64]) -> Vec<f64> + Sync) = &zdt1;
        let bounds = Bounds::uniform(3, 0.0, 1.0);
        let cfg = Nsga2Config {
            generations: 120,
            seed: 31,
            ..Default::default()
        };
        let plain = nsga2(obj, &bounds, &cfg);
        let mut scr = rfkit_surrogate::SurrogateScreen::new(
            3,
            2,
            rfkit_surrogate::SurrogateConfig {
                explore: 0.05,
                explore_min: 0.01,
                ..Default::default()
            },
        );
        let screened = nsga2_screened(obj, &bounds, &cfg, &mut scr);
        assert!(scr.stats().rejected > 0, "screen never pruned anything");
        assert!(
            screened.evaluations < plain.evaluations,
            "screened {} vs plain {}",
            screened.evaluations,
            plain.evaluations
        );
        let hv = |r: &Nsga2Result| {
            let pts: Vec<Vec<f64>> = r.front.iter().map(|i| i.objectives.clone()).collect();
            hypervolume_2d(&pts, [1.5, 10.0])
        };
        let (hp, hs) = (hv(&plain), hv(&screened));
        assert!(
            hs > 0.95 * hp,
            "screened hypervolume {hs} collapsed vs plain {hp}"
        );
    }

    #[test]
    fn deterministic_with_seed() {
        let obj: &(dyn Fn(&[f64]) -> Vec<f64> + Sync) = &zdt1;
        let bounds = Bounds::uniform(3, 0.0, 1.0);
        let cfg = Nsga2Config {
            generations: 10,
            seed: 11,
            ..Default::default()
        };
        let r1 = nsga2(obj, &bounds, &cfg);
        let r2 = nsga2(obj, &bounds, &cfg);
        assert_eq!(r1.front, r2.front);
        assert_eq!(r1.evaluations, r2.evaluations);
    }
}
