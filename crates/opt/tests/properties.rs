//! Property-based tests for the optimization crate: invariants that must
//! hold for any objective/bounds/seed combination.

use proptest::prelude::*;
use rfkit_opt::pareto::{
    crowding_distance, dominates, hypervolume_2d, nondominated_sort, pareto_front_indices,
};
use rfkit_opt::{
    differential_evolution, nelder_mead, pattern_search, Bounds, DeConfig, GoalProblem,
    NelderMeadConfig, PatternConfig,
};

fn small_bounds() -> impl Strategy<Value = Bounds> {
    (1usize..4).prop_flat_map(|dim| {
        proptest::collection::vec((-10.0..0.0f64, 0.1..10.0f64), dim).prop_map(|pairs| {
            let lo: Vec<f64> = pairs.iter().map(|(l, _)| *l).collect();
            let hi: Vec<f64> = pairs.iter().map(|(l, w)| l + w).collect();
            Bounds::new(lo, hi).expect("constructed valid")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn optimizers_respect_bounds(bounds in small_bounds(), seed in 0u64..100) {
        // Quadratic with minimum far outside the box: the answer must sit
        // inside anyway.
        let f = |x: &[f64]| x.iter().map(|v| (v - 100.0) * (v - 100.0)).sum::<f64>();
        let de = differential_evolution(f, &bounds, &DeConfig {
            max_evals: 500, seed, ..Default::default()
        });
        prop_assert!(bounds.contains(&de.x), "DE left the box: {:?}", de.x);
        let nm = nelder_mead(f, &bounds.center(), &bounds, &NelderMeadConfig {
            max_evals: 300, ..Default::default()
        });
        prop_assert!(bounds.contains(&nm.x));
        let ps = pattern_search(f, &bounds.center(), &bounds, &PatternConfig {
            max_evals: 300, ..Default::default()
        });
        prop_assert!(bounds.contains(&ps.x));
    }

    #[test]
    fn optimizer_result_never_worse_than_start(bounds in small_bounds(), seed in 0u64..100) {
        let f = |x: &[f64]| x.iter().map(|v| v.sin() + v * v * 0.1).sum::<f64>();
        let start = bounds.center();
        let f_start = f(&start);
        let nm = nelder_mead(f, &start, &bounds, &NelderMeadConfig {
            max_evals: 200, ..Default::default()
        });
        prop_assert!(nm.value <= f_start + 1e-12);
        let ps = pattern_search(f, &start, &bounds, &PatternConfig {
            max_evals: 200, ..Default::default()
        });
        prop_assert!(ps.value <= f_start + 1e-12);
        let _ = seed;
    }

    #[test]
    fn dominance_is_irreflexive_and_antisymmetric(
        a in proptest::collection::vec(-10.0..10.0f64, 2..5),
        b in proptest::collection::vec(-10.0..10.0f64, 2..5),
    ) {
        prop_assert!(!dominates(&a, &a), "no vector dominates itself");
        if a.len() == b.len() && dominates(&a, &b) {
            prop_assert!(!dominates(&b, &a), "dominance must be antisymmetric");
        }
    }

    #[test]
    fn pareto_front_members_are_mutually_nondominated(
        pts in proptest::collection::vec(
            proptest::collection::vec(-5.0..5.0f64, 2), 1..20)
    ) {
        let front = pareto_front_indices(&pts);
        prop_assert!(!front.is_empty(), "a finite set always has a front");
        for &i in &front {
            for &j in &front {
                if i != j {
                    prop_assert!(!dominates(&pts[i], &pts[j]));
                }
            }
        }
    }

    #[test]
    fn nondominated_sort_partitions_everything(
        pts in proptest::collection::vec(
            proptest::collection::vec(-5.0..5.0f64, 2), 1..20)
    ) {
        let fronts = nondominated_sort(&pts);
        let total: usize = fronts.iter().map(|f| f.len()).sum();
        prop_assert_eq!(total, pts.len(), "every point in exactly one front");
        // Front 0 equals the plain Pareto front.
        let mut f0 = fronts[0].clone();
        let mut reference = pareto_front_indices(&pts);
        f0.sort_unstable();
        reference.sort_unstable();
        prop_assert_eq!(f0, reference);
    }

    #[test]
    fn crowding_distances_nonnegative(
        pts in proptest::collection::vec(
            proptest::collection::vec(-5.0..5.0f64, 2), 2..15)
    ) {
        let front: Vec<usize> = (0..pts.len()).collect();
        let d = crowding_distance(&pts, &front);
        prop_assert!(d.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn hypervolume_monotone_under_point_addition(
        pts in proptest::collection::vec(
            proptest::collection::vec(0.0..4.0f64, 2), 1..10),
        extra in proptest::collection::vec(0.0..4.0f64, 2),
    ) {
        let hv_before = hypervolume_2d(&pts, [5.0, 5.0]);
        let mut bigger = pts.clone();
        bigger.push(extra);
        let hv_after = hypervolume_2d(&bigger, [5.0, 5.0]);
        prop_assert!(hv_after >= hv_before - 1e-12, "{hv_after} < {hv_before}");
    }

    #[test]
    fn attainment_scales_with_weights(
        f1 in -5.0..5.0f64,
        f2 in -5.0..5.0f64,
        w in 0.1..10.0f64,
    ) {
        let obj = move |_: &[f64]| vec![0.0, 0.0];
        let p1 = GoalProblem::new(&obj, vec![0.0, 0.0], vec![1.0, 1.0], Bounds::uniform(1, 0.0, 1.0));
        let pw = GoalProblem::new(&obj, vec![0.0, 0.0], vec![w, w], Bounds::uniform(1, 0.0, 1.0));
        let g1 = p1.attainment(&[f1, f2]);
        let gw = pw.attainment(&[f1, f2]);
        // Scaling every weight by w divides Γ by w.
        prop_assert!((gw - g1 / w).abs() < 1e-9 * g1.abs().max(1.0));
    }

    #[test]
    fn attainment_monotone_in_objectives(
        f1 in -5.0..5.0f64,
        f2 in -5.0..5.0f64,
        bump in 0.0..3.0f64,
    ) {
        let obj = move |_: &[f64]| vec![0.0, 0.0];
        let p = GoalProblem::new(&obj, vec![0.0, 0.0], vec![1.0, 2.0], Bounds::uniform(1, 0.0, 1.0));
        // Worsening any objective can only raise Γ.
        prop_assert!(p.attainment(&[f1 + bump, f2]) >= p.attainment(&[f1, f2]) - 1e-12);
        prop_assert!(p.attainment(&[f1, f2 + bump]) >= p.attainment(&[f1, f2]) - 1e-12);
    }

    #[test]
    fn de_is_deterministic_per_seed(bounds in small_bounds(), seed in 0u64..50) {
        let f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let cfg = DeConfig { max_evals: 400, seed, ..Default::default() };
        let a = differential_evolution(f, &bounds, &cfg);
        let b = differential_evolution(f, &bounds, &cfg);
        prop_assert_eq!(a.x, b.x);
        prop_assert_eq!(a.evaluations, b.evaluations);
    }
}
