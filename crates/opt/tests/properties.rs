//! Property-style tests for the optimization crate: invariants that must
//! hold for any objective/bounds/seed combination. Cases are generated
//! from a fixed-seed `Rng64` stream (the workspace builds offline, so no
//! proptest), which keeps every run reproducible.

use rfkit_num::rng::Rng64;
use rfkit_opt::pareto::{
    crowding_distance, dominates, hypervolume_2d, nondominated_sort, pareto_front_indices,
};
use rfkit_opt::{
    differential_evolution, nelder_mead, pattern_search, Bounds, DeConfig, GoalProblem,
    NelderMeadConfig, PatternConfig,
};

/// Random box with 1–3 dimensions, lo in [-10, 0), span in [0.1, 10).
fn small_bounds(rng: &mut Rng64) -> Bounds {
    let dim = 1 + rng.index(3);
    let mut lo = Vec::with_capacity(dim);
    let mut hi = Vec::with_capacity(dim);
    for _ in 0..dim {
        let l = rng.uniform(-10.0, 0.0);
        lo.push(l);
        hi.push(l + rng.uniform(0.1, 10.0));
    }
    Bounds::new(lo, hi).expect("constructed valid")
}

/// Random point set: `count` points of dimension `dim` in [lo, hi).
fn point_set(rng: &mut Rng64, count: usize, dim: usize, lo: f64, hi: f64) -> Vec<Vec<f64>> {
    (0..count)
        .map(|_| (0..dim).map(|_| rng.uniform(lo, hi)).collect())
        .collect()
}

#[test]
fn optimizers_respect_bounds() {
    let mut rng = Rng64::new(0x0b1d);
    for case in 0..24u64 {
        let bounds = small_bounds(&mut rng);
        // Quadratic with minimum far outside the box: the answer must sit
        // inside anyway.
        let f = |x: &[f64]| x.iter().map(|v| (v - 100.0) * (v - 100.0)).sum::<f64>();
        let de = differential_evolution(
            f,
            &bounds,
            &DeConfig {
                max_evals: 500,
                seed: case,
                ..Default::default()
            },
        );
        assert!(bounds.contains(&de.x), "DE left the box: {:?}", de.x);
        let nm = nelder_mead(
            f,
            &bounds.center(),
            &bounds,
            &NelderMeadConfig {
                max_evals: 300,
                ..Default::default()
            },
        );
        assert!(bounds.contains(&nm.x));
        let ps = pattern_search(
            f,
            &bounds.center(),
            &bounds,
            &PatternConfig {
                max_evals: 300,
                ..Default::default()
            },
        );
        assert!(bounds.contains(&ps.x));
    }
}

#[test]
fn optimizer_result_never_worse_than_start() {
    let mut rng = Rng64::new(0x57a7);
    for _ in 0..24 {
        let bounds = small_bounds(&mut rng);
        let f = |x: &[f64]| x.iter().map(|v| v.sin() + v * v * 0.1).sum::<f64>();
        let start = bounds.center();
        let f_start = f(&start);
        let nm = nelder_mead(
            f,
            &start,
            &bounds,
            &NelderMeadConfig {
                max_evals: 200,
                ..Default::default()
            },
        );
        assert!(nm.value <= f_start + 1e-12);
        let ps = pattern_search(
            f,
            &start,
            &bounds,
            &PatternConfig {
                max_evals: 200,
                ..Default::default()
            },
        );
        assert!(ps.value <= f_start + 1e-12);
    }
}

#[test]
fn dominance_is_irreflexive_and_antisymmetric() {
    let mut rng = Rng64::new(0xd0a1);
    for _ in 0..100 {
        let dim = 2 + rng.index(3);
        let a: Vec<f64> = (0..dim).map(|_| rng.uniform(-10.0, 10.0)).collect();
        let b: Vec<f64> = (0..dim).map(|_| rng.uniform(-10.0, 10.0)).collect();
        assert!(!dominates(&a, &a), "no vector dominates itself");
        if dominates(&a, &b) {
            assert!(!dominates(&b, &a), "dominance must be antisymmetric");
        }
    }
}

#[test]
fn pareto_front_members_are_mutually_nondominated() {
    let mut rng = Rng64::new(0xfade);
    for _ in 0..50 {
        let count = 1 + rng.index(19);
        let pts = point_set(&mut rng, count, 2, -5.0, 5.0);
        let front = pareto_front_indices(&pts);
        assert!(!front.is_empty(), "a finite set always has a front");
        for &i in &front {
            for &j in &front {
                if i != j {
                    assert!(!dominates(&pts[i], &pts[j]));
                }
            }
        }
    }
}

#[test]
fn nondominated_sort_partitions_everything() {
    let mut rng = Rng64::new(0x50f7);
    for _ in 0..50 {
        let count = 1 + rng.index(19);
        let pts = point_set(&mut rng, count, 2, -5.0, 5.0);
        let fronts = nondominated_sort(&pts);
        let total: usize = fronts.iter().map(|f| f.len()).sum();
        assert_eq!(total, pts.len(), "every point in exactly one front");
        // Front 0 equals the plain Pareto front.
        let mut f0 = fronts[0].clone();
        let mut reference = pareto_front_indices(&pts);
        f0.sort_unstable();
        reference.sort_unstable();
        assert_eq!(f0, reference);
    }
}

#[test]
fn crowding_distances_nonnegative() {
    let mut rng = Rng64::new(0xc0de);
    for _ in 0..50 {
        let count = 2 + rng.index(13);
        let pts = point_set(&mut rng, count, 2, -5.0, 5.0);
        let front: Vec<usize> = (0..pts.len()).collect();
        let d = crowding_distance(&pts, &front);
        assert!(d.iter().all(|&v| v >= 0.0));
    }
}

#[test]
fn hypervolume_monotone_under_point_addition() {
    let mut rng = Rng64::new(0x6e0);
    for _ in 0..50 {
        let count = 1 + rng.index(9);
        let pts = point_set(&mut rng, count, 2, 0.0, 4.0);
        let extra: Vec<f64> = (0..2).map(|_| rng.uniform(0.0, 4.0)).collect();
        let hv_before = hypervolume_2d(&pts, [5.0, 5.0]);
        let mut bigger = pts.clone();
        bigger.push(extra);
        let hv_after = hypervolume_2d(&bigger, [5.0, 5.0]);
        assert!(hv_after >= hv_before - 1e-12, "{hv_after} < {hv_before}");
    }
}

#[test]
fn attainment_scales_with_weights() {
    let mut rng = Rng64::new(0xa77a);
    let obj = |_: &[f64]| vec![0.0, 0.0];
    for _ in 0..100 {
        let f1 = rng.uniform(-5.0, 5.0);
        let f2 = rng.uniform(-5.0, 5.0);
        let w = rng.uniform(0.1, 10.0);
        let p1 = GoalProblem::new(
            &obj,
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            Bounds::uniform(1, 0.0, 1.0),
        );
        let pw = GoalProblem::new(
            &obj,
            vec![0.0, 0.0],
            vec![w, w],
            Bounds::uniform(1, 0.0, 1.0),
        );
        let g1 = p1.attainment(&[f1, f2]);
        let gw = pw.attainment(&[f1, f2]);
        // Scaling every weight by w divides Γ by w.
        assert!((gw - g1 / w).abs() < 1e-9 * g1.abs().max(1.0));
    }
}

#[test]
fn attainment_monotone_in_objectives() {
    let mut rng = Rng64::new(0x4040);
    let obj = |_: &[f64]| vec![0.0, 0.0];
    for _ in 0..100 {
        let f1 = rng.uniform(-5.0, 5.0);
        let f2 = rng.uniform(-5.0, 5.0);
        let bump = rng.uniform(0.0, 3.0);
        let p = GoalProblem::new(
            &obj,
            vec![0.0, 0.0],
            vec![1.0, 2.0],
            Bounds::uniform(1, 0.0, 1.0),
        );
        // Worsening any objective can only raise Γ.
        assert!(p.attainment(&[f1 + bump, f2]) >= p.attainment(&[f1, f2]) - 1e-12);
        assert!(p.attainment(&[f1, f2 + bump]) >= p.attainment(&[f1, f2]) - 1e-12);
    }
}

#[test]
fn de_is_deterministic_per_seed() {
    let mut rng = Rng64::new(0xde7e);
    for seed in 0..24u64 {
        let bounds = small_bounds(&mut rng);
        let f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let cfg = DeConfig {
            max_evals: 400,
            seed,
            ..Default::default()
        };
        let a = differential_evolution(f, &bounds, &cfg);
        let b = differential_evolution(f, &bounds, &cfg);
        assert_eq!(a.x, b.x);
        assert_eq!(a.evaluations, b.evaluations);
    }
}
