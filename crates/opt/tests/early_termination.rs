//! Budgets smaller than one generation/swarm/population must terminate
//! cleanly — no panic, no infinite loop — and, with tracing armed, leave
//! a truncation event in the trace.
//!
//! One `#[test]` only: trace arming is process-global (the sink and the
//! armed flag are statics), so splitting this into several tests would
//! race on the shared trace file under the parallel test runner.

use rfkit_opt::{
    differential_evolution, nsga2, particle_swarm, Bounds, DeConfig, Nsga2Config, PsoConfig,
};

fn sphere(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum()
}

#[test]
fn tiny_budgets_terminate_cleanly_and_emit_truncation_events() {
    let trace = std::env::temp_dir().join(format!(
        "rfkit_early_termination_{}.jsonl",
        std::process::id()
    ));
    rfkit_obs::init(&rfkit_obs::TraceConfig {
        trace: true,
        log: false,
        out: Some(trace.clone()),
        ..rfkit_obs::TraceConfig::default()
    });

    let bounds = Bounds::new(vec![-5.0; 3], vec![5.0; 3]).expect("bounds");

    // DE: budget of 3 is below the minimum population of 4; DE still
    // evaluates the minimal population, so accept a small overshoot.
    let de = differential_evolution(
        sphere,
        &bounds,
        &DeConfig {
            population: 8,
            max_evals: 3,
            seed: 1,
            ..Default::default()
        },
    );
    assert!(de.value.is_finite());
    assert!(
        de.evaluations <= 4,
        "DE overran its tiny budget: {}",
        de.evaluations
    );
    assert!(!de.converged);

    // PSO: the initial swarm evaluation is capped exactly at the budget.
    let pso = particle_swarm(
        sphere,
        &bounds,
        &PsoConfig {
            swarm: 10,
            max_evals: 3,
            seed: 1,
            ..Default::default()
        },
    );
    assert!(pso.value.is_finite());
    assert_eq!(pso.evaluations, 3);

    // NSGA-II: budget below one population truncates the initial batch
    // and returns after one environmental selection.
    let objectives: &(dyn Fn(&[f64]) -> Vec<f64> + Sync) =
        &|x: &[f64]| vec![sphere(x), (x[0] - 1.0).powi(2)];
    let ns = nsga2(
        objectives,
        &bounds,
        &Nsga2Config {
            population: 12,
            generations: 50,
            max_evals: 5,
            seed: 1,
            ..Default::default()
        },
    );
    assert!(!ns.front.is_empty());
    assert!(
        ns.evaluations <= 5,
        "NSGA-II overran its budget: {}",
        ns.evaluations
    );

    rfkit_obs::flush();
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    for needle in [
        "\"opt.de.truncated\"",
        "\"opt.pso.truncated\"",
        "\"opt.nsga2.truncated\"",
    ] {
        assert!(text.contains(needle), "missing {needle} in trace:\n{text}");
    }
    let _ = std::fs::remove_file(&trace);
}
