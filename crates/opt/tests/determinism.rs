//! The parallel-evaluation determinism guarantee: a fixed seed must yield
//! bit-identical optimizer output at any `RFKIT_THREADS` setting, because
//! all RNG draws live in the serial generation loops and `rfkit-par`
//! returns results in input order.
//!
//! Everything lives in one `#[test]` because `RFKIT_THREADS` is process
//! state and the test harness runs separate tests concurrently.

use rfkit_opt::{
    differential_evolution, differential_evolution_screened, nsga2, nsga2_screened, particle_swarm,
    particle_swarm_screened, Bounds, DeConfig, Nsga2Config, PsoConfig,
};
use rfkit_surrogate::{SurrogateConfig, SurrogateScreen};
use std::f64::consts::PI;

/// Screen config that fits early and prunes aggressively, with the
/// exploration draws armed — the hardest determinism case.
fn screen_cfg(seed: u64) -> SurrogateConfig {
    SurrogateConfig {
        explore: 0.2,
        explore_min: 0.05,
        kappa: 1.0,
        seed,
        ..Default::default()
    }
}

fn rastrigin(x: &[f64]) -> f64 {
    10.0 * x.len() as f64
        + x.iter()
            .map(|v| v * v - 10.0 * (2.0 * PI * v).cos())
            .sum::<f64>()
}

fn zdt1(x: &[f64]) -> Vec<f64> {
    let f1 = x[0];
    let g = 1.0 + 9.0 * x[1..].iter().sum::<f64>() / (x.len() - 1) as f64;
    let f2 = g * (1.0 - (f1 / g).sqrt());
    vec![f1, f2]
}

/// DC operating point of a self-biased FET stage. Exercises the netlist
/// node interning and the MNA branch-current assignment, both of which
/// must stamp in a deterministic order (sorted maps, never a hasher).
fn dc_operating_point() -> Vec<f64> {
    use rfkit_circuit::{solve_dc, Circuit};
    use rfkit_device::dc::{Angelov, DcModel};
    let mut c = Circuit::new();
    c.vsource("vdd", "gnd", 5.0)
        .resistor("vdd", "drain", 50.0)
        .inductor("drain", "out", 10e-9)
        .resistor("out", "gnd", 500.0)
        .resistor("g", "gnd", 10000.0)
        .resistor("s", "gnd", 10.0)
        .capacitor("s", "gnd", 1e-9)
        .fet(
            "g",
            "drain",
            "s",
            Box::new(Angelov),
            Angelov.default_params(),
        );
    let sol = solve_dc(&c).expect("bias point converges");
    // The robust fallback ladder is the engine behind `solve_dc`; calling
    // it directly with the default policy must agree bit-for-bit,
    // including the stage/attempt provenance (first rung, first try).
    let robust = rfkit_circuit::solve_dc_robust(&c, &Default::default()).expect("robust path");
    assert_eq!(sol, robust, "legacy and robust DC paths diverged");
    let mut out = sol.voltages;
    out.extend(sol.fet_currents);
    out
}

#[test]
fn fixed_seed_output_identical_at_1_and_4_threads() {
    // Arm tracing for the whole comparison: telemetry is write-only with
    // respect to the numerics, so the bit-identical contract must hold
    // with the sink recording (this is the strongest form of the
    // determinism guarantee the observability layer promises).
    let trace = std::env::temp_dir().join(format!(
        "rfkit_determinism_trace_{}.jsonl",
        std::process::id()
    ));
    rfkit_obs::init(&rfkit_obs::TraceConfig {
        trace: true,
        log: false,
        out: Some(trace.clone()),
        ..rfkit_obs::TraceConfig::default()
    });

    let run_all = || {
        let b = Bounds::uniform(3, -5.12, 5.12);
        let de = differential_evolution(
            rastrigin,
            &b,
            &DeConfig {
                max_evals: 3000,
                seed: 0xd5,
                ..Default::default()
            },
        );
        let pso = particle_swarm(
            rastrigin,
            &b,
            &PsoConfig {
                max_evals: 3000,
                seed: 0xd6,
                ..Default::default()
            },
        );
        let moo = nsga2(
            &zdt1,
            &Bounds::uniform(3, 0.0, 1.0),
            &Nsga2Config {
                generations: 20,
                seed: 0xd7,
                ..Default::default()
            },
        );
        let dc = dc_operating_point();
        // Surrogate-screened runs: every screening decision (LCB
        // comparisons, ε-greedy draws, refit cadence) happens in the
        // serial loop, so the bit-identity contract must survive with a
        // fresh screen per run.
        let mut de_scr = SurrogateScreen::new(3, 1, screen_cfg(0xa1));
        let de_s = differential_evolution_screened(
            rastrigin,
            &b,
            &DeConfig {
                max_evals: 3000,
                seed: 0xd5,
                ..Default::default()
            },
            &mut de_scr,
        );
        let mut pso_scr = SurrogateScreen::new(3, 1, screen_cfg(0xa2));
        let pso_s = particle_swarm_screened(
            rastrigin,
            &b,
            &PsoConfig {
                max_evals: 3000,
                seed: 0xd6,
                ..Default::default()
            },
            &mut pso_scr,
        );
        let mut moo_scr = SurrogateScreen::new(3, 2, screen_cfg(0xa3));
        let moo_s = nsga2_screened(
            &zdt1,
            &Bounds::uniform(3, 0.0, 1.0),
            &Nsga2Config {
                generations: 25,
                seed: 0xd7,
                ..Default::default()
            },
            &mut moo_scr,
        );
        let screen_stats = (de_scr.stats(), pso_scr.stats(), moo_scr.stats());
        (de, pso, moo, dc, de_s, pso_s, moo_s, screen_stats)
    };

    std::env::set_var("RFKIT_THREADS", "1");
    let (de_1, pso_1, moo_1, dc_1, des_1, psos_1, moos_1, stats_1) = run_all();
    std::env::set_var("RFKIT_THREADS", "4");
    let (de_4, pso_4, moo_4, dc_4, des_4, psos_4, moos_4, stats_4) = run_all();
    std::env::remove_var("RFKIT_THREADS");

    // Bit-identical, not approximately equal.
    assert_eq!(de_1.x, de_4.x, "DE best point differs across thread counts");
    assert_eq!(de_1.value, de_4.value);
    assert_eq!(de_1.evaluations, de_4.evaluations);

    assert_eq!(
        pso_1.x, pso_4.x,
        "PSO best point differs across thread counts"
    );
    assert_eq!(pso_1.value, pso_4.value);

    assert_eq!(
        moo_1.front, moo_4.front,
        "NSGA-II front differs across thread counts"
    );
    assert_eq!(moo_1.evaluations, moo_4.evaluations);

    assert_eq!(
        dc_1, dc_4,
        "DC operating point differs across thread counts"
    );

    // Surrogate-armed runs: same contract, screening enabled.
    assert_eq!(
        des_1.x, des_4.x,
        "screened DE best point differs across thread counts"
    );
    assert_eq!(des_1.value, des_4.value);
    assert_eq!(des_1.evaluations, des_4.evaluations);
    assert_eq!(
        psos_1.x, psos_4.x,
        "screened PSO best point differs across thread counts"
    );
    assert_eq!(psos_1.value, psos_4.value);
    assert_eq!(psos_1.evaluations, psos_4.evaluations);
    assert_eq!(
        moos_1.front, moos_4.front,
        "screened NSGA-II front differs across thread counts"
    );
    assert_eq!(moos_1.evaluations, moos_4.evaluations);
    // Decision-by-decision identity, not just final results.
    assert_eq!(
        stats_1, stats_4,
        "screen decision counters differ across thread counts"
    );
    // The screens were genuinely armed: models fitted and pruning
    // happened, otherwise this exercise proves nothing.
    assert!(
        stats_1.0.fits > 0 && stats_1.0.rejected > 0,
        "DE screen idle"
    );
    assert!(stats_1.2.fits > 0, "NSGA-II screen never fitted");

    rfkit_obs::flush();
    let meta = std::fs::metadata(&trace).expect("armed run wrote a trace");
    assert!(meta.len() > 0, "trace file is empty despite armed run");
    let _ = std::fs::remove_file(&trace);
}
