//! Intra-procedural dataflow over the [`parser`](crate::parser) AST:
//! per-function scope/symbol tables, def-use chains, loop-nesting
//! depth, and escapes-into-closure tracking.
//!
//! The analysis is deliberately lexical: a definition's liveness range
//! runs from its binding line to its last use (or, for RAII guards, to
//! the end of its enclosing block), and loop depth is the static
//! nesting of `for`/`while`/`loop` bodies. That is exactly the
//! granularity the semantic lints need — flagging an allocation *site*
//! inside a hot loop, or a lock guard whose lexical extent crosses a
//! solver call — without pretending to be a borrow checker.

use crate::parser::{self, Ast, Block, Expr, ExprKind, Item, Span, Stmt};
use crate::tokenizer::TokKind;
use std::collections::BTreeMap;

/// How a call site names its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `path::to::fn(…)`.
    Call,
    /// `recv.method(…)`.
    Method,
    /// `name!(…)`.
    Macro,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Call flavour.
    pub kind: CallKind,
    /// Full callee path for `Call` (`Vec::new`), macro name for
    /// `Macro`, method name for `Method`.
    pub name: String,
    /// Leftmost identifier of the receiver chain for method calls
    /// (`ws` in `ws.plan().solve()`), empty otherwise.
    pub recv_root: String,
    /// String literal arguments, unquoted, in positional order (`None`
    /// for non-literal arguments).
    pub str_args: Vec<Option<String>>,
    /// Identifiers appearing anywhere in the argument list.
    pub arg_idents: Vec<String>,
    /// True when any argument contains a numeric/string literal.
    pub has_literal_arg: bool,
    /// 1-based line of the call.
    pub line: u32,
    /// 1-based column of the call.
    pub col: u32,
    /// Number of enclosing `for`/`while`/`loop` bodies.
    pub loop_depth: u32,
    /// Identifiers from enclosing loop headers (`for f in freqs` adds
    /// `f` and `freqs`), innermost last.
    pub loop_header_idents: Vec<String>,
    /// True when the call sits inside a closure body.
    pub in_closure: bool,
}

/// One definition (parameter or `let` binding).
#[derive(Debug, Clone)]
pub struct Def {
    /// Bound name.
    pub name: String,
    /// Line of the binding.
    pub line: u32,
    /// `path::to::ctor` when the initializer is (or ends in) a call;
    /// method name when it ends in a method call.
    pub init_call: String,
    /// Identifiers referenced anywhere in the initializer.
    pub init_idents: Vec<String>,
    /// String/number literal presence in the initializer arguments.
    pub init_has_literal: bool,
    /// Lines of every use (def-use chain), in source order.
    pub uses: Vec<u32>,
    /// True when some use occurs inside a closure defined after the
    /// binding (the value escapes into the closure's environment).
    pub escapes_into_closure: bool,
    /// Last line of the block the definition lives in (lexical scope
    /// end — the latest line the binding can be live on).
    pub scope_end: u32,
    /// True when the definition is a function parameter.
    pub is_param: bool,
}

/// Dataflow summary of one function.
#[derive(Debug)]
pub struct FnAnalysis {
    /// Function name.
    pub name: String,
    /// Source extent.
    pub span: Span,
    /// True when marked `// rfkit-hot` (directly; reachability-based
    /// hotness is computed by [`hot_set`]).
    pub hot_marker: bool,
    /// True when marked `// rfkit-cold` — excluded from hot-set
    /// propagation even if reachable from a hot entry.
    pub cold_marker: bool,
    /// Definitions (params first, then lets in source order).
    pub defs: Vec<Def>,
    /// Every call site in the body.
    pub calls: Vec<CallSite>,
}

impl FnAnalysis {
    /// Names of same-file functions this function calls (plain calls
    /// and single-segment paths only — exactly what a same-file call
    /// graph can resolve).
    pub fn callees(&self) -> impl Iterator<Item = &str> {
        self.calls.iter().filter_map(|c| match c.kind {
            CallKind::Call if !c.name.contains("::") => Some(c.name.as_str()),
            CallKind::Method => Some(c.name.as_str()),
            _ => None,
        })
    }
}

/// Analyzes every function in `ast` (including associated functions).
pub fn analyze(ast: &Ast) -> Vec<FnAnalysis> {
    let mut out = Vec::new();
    parser::for_each_fn(&ast.items, &mut |f| {
        out.push(analyze_fn(f));
    });
    out
}

/// Computes the set of "hot" function names for a file: functions with
/// a `// rfkit-hot` marker, functions named in `seeds`, plus every
/// same-file function transitively reachable from those through plain
/// calls and method calls (associated functions are resolved by bare
/// name). This is what "`sweep_batch`-reachable bodies" means at
/// file granularity. A `// rfkit-cold`-marked function stops the
/// propagation: it and everything only reachable through it stay cold
/// (for once-per-batch structural work like plan repathing).
pub fn hot_set(fns: &[FnAnalysis], seeds: &[&str]) -> Vec<String> {
    let defined: BTreeMap<&str, &FnAnalysis> = fns.iter().map(|f| (f.name.as_str(), f)).collect();
    let mut hot: Vec<String> = Vec::new();
    let mut work: Vec<&str> = Vec::new();
    for f in fns {
        if (f.hot_marker || seeds.contains(&f.name.as_str())) && !f.cold_marker {
            work.push(f.name.as_str());
        }
    }
    while let Some(name) = work.pop() {
        if hot.iter().any(|h| h == name) {
            continue;
        }
        hot.push(name.to_string());
        if let Some(f) = defined.get(name) {
            for callee in f.callees() {
                if let Some(next) = defined.get(callee) {
                    if !next.cold_marker && !hot.iter().any(|h| h == callee) {
                        work.push(callee);
                    }
                }
            }
        }
    }
    hot.sort();
    hot
}

// ---- walker --------------------------------------------------------

struct Walker {
    defs: Vec<Def>,
    calls: Vec<CallSite>,
    /// Scope stack: maps name -> def index. A `None` frame marks a
    /// closure boundary.
    scopes: Vec<Option<BTreeMap<String, usize>>>,
    loop_depth: u32,
    loop_header_idents: Vec<String>,
    closure_depth: u32,
}

fn analyze_fn(item: &Item) -> FnAnalysis {
    let mut w = Walker {
        defs: Vec::new(),
        calls: Vec::new(),
        scopes: vec![Some(BTreeMap::new())],
        loop_depth: 0,
        loop_header_idents: Vec::new(),
        closure_depth: 0,
    };
    let scope_end = item.span.end_line;
    for p in &item.params {
        w.bind(
            p.clone(),
            item.span.line,
            String::new(),
            Vec::new(),
            false,
            scope_end,
            true,
        );
    }
    if let Some(body) = &item.body {
        w.walk_block(body);
    }
    FnAnalysis {
        name: item.name.clone(),
        span: item.span,
        hot_marker: item.hot,
        cold_marker: item.cold,
        defs: w.defs,
        calls: w.calls,
    }
}

impl Walker {
    #[allow(clippy::too_many_arguments)]
    fn bind(
        &mut self,
        name: String,
        line: u32,
        init_call: String,
        init_idents: Vec<String>,
        init_has_literal: bool,
        scope_end: u32,
        is_param: bool,
    ) {
        let idx = self.defs.len();
        self.defs.push(Def {
            name: name.clone(),
            line,
            init_call,
            init_idents,
            init_has_literal,
            uses: Vec::new(),
            escapes_into_closure: false,
            scope_end,
            is_param,
        });
        if let Some(Some(top)) = self.scopes.last_mut() {
            top.insert(name, idx);
        }
    }

    /// Resolves a name through the scope stack; records whether the
    /// lookup crossed a closure boundary.
    fn resolve(&self, name: &str) -> Option<(usize, bool)> {
        let mut crossed = false;
        for frame in self.scopes.iter().rev() {
            match frame {
                None => crossed = true,
                Some(map) => {
                    if let Some(&idx) = map.get(name) {
                        return Some((idx, crossed));
                    }
                }
            }
        }
        None
    }

    fn use_ident(&mut self, name: &str, line: u32) {
        if let Some((idx, crossed)) = self.resolve(name) {
            self.defs[idx].uses.push(line);
            if crossed {
                self.defs[idx].escapes_into_closure = true;
            }
        }
    }

    fn walk_block(&mut self, b: &Block) {
        self.scopes.push(Some(BTreeMap::new()));
        for s in &b.stmts {
            match s {
                Stmt::Let { names, init, span } => {
                    let mut init_call = String::new();
                    let mut init_idents = Vec::new();
                    let mut init_has_literal = false;
                    if let Some(e) = init {
                        self.walk_expr(e);
                        init_call = trailing_call_name(e);
                        collect_idents(e, &mut init_idents);
                        init_has_literal = contains_literal(e);
                    }
                    for n in names {
                        self.bind(
                            n.clone(),
                            span.line,
                            init_call.clone(),
                            init_idents.clone(),
                            init_has_literal,
                            b.span.end_line,
                            false,
                        );
                    }
                }
                Stmt::Expr(e) => self.walk_expr(e),
                Stmt::Item(_) => {
                    // Nested items are analyzed as their own functions
                    // by `analyze`; their bodies do not touch this
                    // function's scope.
                }
            }
        }
        self.scopes.pop();
    }

    fn walk_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Path(segs) => {
                if segs.len() == 1 {
                    self.use_ident(&segs[0], e.span.line);
                }
            }
            ExprKind::Lit(..) | ExprKind::Atom(_) => {}
            ExprKind::Call { callee, args } => {
                // A plain-path callee is a call name, not a variable
                // use; anything else (e.g. a closure variable being
                // invoked) is walked normally.
                let path = parser::callee_path(callee);
                if path.is_empty() {
                    self.walk_expr(callee);
                } else if let ExprKind::Path(segs) = &callee.kind {
                    if segs.len() == 1 {
                        // Calling a local closure counts as a use.
                        if self.resolve(&segs[0]).is_some() {
                            self.use_ident(&segs[0], e.span.line);
                        }
                    }
                }
                self.record_call(CallKind::Call, path, String::new(), args, e.span);
                for a in args {
                    self.walk_expr(a);
                }
            }
            ExprKind::MethodCall { recv, method, args } => {
                self.walk_expr(recv);
                self.record_call(
                    CallKind::Method,
                    method.clone(),
                    receiver_root(recv),
                    args,
                    e.span,
                );
                for a in args {
                    self.walk_expr(a);
                }
            }
            ExprKind::Field { recv, .. } => self.walk_expr(recv),
            ExprKind::Macro { name, args } => {
                self.record_call(CallKind::Macro, name.clone(), String::new(), args, e.span);
                for a in args {
                    self.walk_expr(a);
                }
            }
            ExprKind::Loop {
                bindings,
                header,
                body,
                .. // `for`/`while`/`loop` all nest the same.
            } => {
                let mut header_idents = Vec::new();
                if let Some(h) = header {
                    self.walk_expr(h);
                    collect_idents(h, &mut header_idents);
                }
                header_idents.extend(bindings.iter().cloned());
                let added = header_idents.len();
                self.loop_header_idents.append(&mut header_idents);
                self.scopes.push(Some(BTreeMap::new()));
                for bnd in bindings {
                    self.bind(
                        bnd.clone(),
                        e.span.line,
                        String::new(),
                        Vec::new(),
                        false,
                        body.span.end_line,
                        false,
                    );
                }
                self.loop_depth += 1;
                self.walk_block(body);
                self.loop_depth -= 1;
                self.scopes.pop();
                self.loop_header_idents
                    .truncate(self.loop_header_idents.len() - added);
            }
            ExprKind::Closure { params, body } => {
                self.scopes.push(None); // closure boundary
                self.scopes.push(Some(BTreeMap::new()));
                for p in params {
                    self.bind(
                        p.clone(),
                        e.span.line,
                        String::new(),
                        Vec::new(),
                        false,
                        body.span.end_line,
                        false,
                    );
                }
                self.closure_depth += 1;
                self.walk_expr(body);
                self.closure_depth -= 1;
                self.scopes.pop();
                self.scopes.pop();
            }
            ExprKind::If { cond, then, els } => {
                self.walk_expr(cond);
                self.walk_block(then);
                if let Some(els) = els {
                    self.walk_expr(els);
                }
            }
            ExprKind::Match { scrutinee, arms } => {
                self.walk_expr(scrutinee);
                // Arm patterns can bind (`Some(v) => v`); those binds
                // are invisible here, so arm-local names simply fail
                // to resolve — a miss, never a false chain.
                for a in arms {
                    self.walk_expr(a);
                }
            }
            ExprKind::Block(b) => self.walk_block(b),
            ExprKind::Assign { target, value } => {
                self.walk_expr(target);
                self.walk_expr(value);
            }
            ExprKind::Group(parts) => {
                for p in parts {
                    self.walk_expr(p);
                }
            }
        }
    }

    fn record_call(
        &mut self,
        kind: CallKind,
        name: String,
        recv_root: String,
        args: &[Expr],
        span: Span,
    ) {
        let mut str_args = Vec::new();
        let mut arg_idents = Vec::new();
        let mut has_literal_arg = false;
        for a in args {
            str_args.push(string_literal(a));
            collect_idents(a, &mut arg_idents);
            has_literal_arg |= contains_literal(a);
        }
        self.calls.push(CallSite {
            kind,
            name,
            recv_root,
            str_args,
            arg_idents,
            has_literal_arg,
            line: span.line,
            col: span.col,
            loop_depth: self.loop_depth,
            loop_header_idents: self.loop_header_idents.clone(),
            in_closure: self.closure_depth > 0,
        });
    }
}

/// The call name an initializer "ends in": `Rng64::new(…)` -> that
/// path; `cfg.rng().fork()` -> `fork`; a plain path or literal -> "".
fn trailing_call_name(e: &Expr) -> String {
    match &e.kind {
        ExprKind::Call { callee, .. } => parser::callee_path(callee),
        ExprKind::MethodCall { method, .. } => method.clone(),
        ExprKind::Group(parts) => parts.last().map(trailing_call_name).unwrap_or_default(),
        _ => String::new(),
    }
}

/// Leftmost identifier of a receiver chain (`ws` in
/// `ws.plan().solve()`), or "" when the chain roots in a call/literal.
fn receiver_root(e: &Expr) -> String {
    match &e.kind {
        ExprKind::Path(segs) => segs.first().cloned().unwrap_or_default(),
        ExprKind::MethodCall { recv, .. } | ExprKind::Field { recv, .. } => receiver_root(recv),
        ExprKind::Call { callee, .. } => receiver_root(callee),
        _ => String::new(),
    }
}

/// Unquoted string literal when `e` is one.
fn string_literal(e: &Expr) -> Option<String> {
    match &e.kind {
        ExprKind::Lit(TokKind::Str, text) => Some(unquote(text)),
        _ => None,
    }
}

/// Strips quotes and `r#`/`b` prefixes from a string literal token.
pub fn unquote(text: &str) -> String {
    let t = text
        .trim_start_matches('b')
        .trim_start_matches('r')
        .trim_matches('#');
    t.trim_matches('"').to_string()
}

/// Collects every identifier (single-segment and path heads) in an
/// expression — used for "does this expression mention X" queries.
fn collect_idents(e: &Expr, out: &mut Vec<String>) {
    match &e.kind {
        ExprKind::Path(segs) => out.extend(segs.iter().cloned()),
        ExprKind::Lit(..) | ExprKind::Atom(_) => {}
        ExprKind::Call { callee, args } => {
            collect_idents(callee, out);
            for a in args {
                collect_idents(a, out);
            }
        }
        ExprKind::MethodCall { recv, method, args } => {
            collect_idents(recv, out);
            out.push(method.clone());
            for a in args {
                collect_idents(a, out);
            }
        }
        ExprKind::Field { recv, name } => {
            collect_idents(recv, out);
            out.push(name.clone());
        }
        ExprKind::Macro { args, .. } => {
            for a in args {
                collect_idents(a, out);
            }
        }
        ExprKind::Loop { header, body, .. } => {
            if let Some(h) = header {
                collect_idents(h, out);
            }
            collect_block_idents(body, out);
        }
        ExprKind::Closure { body, .. } => collect_idents(body, out),
        ExprKind::If { cond, then, els } => {
            collect_idents(cond, out);
            collect_block_idents(then, out);
            if let Some(els) = els {
                collect_idents(els, out);
            }
        }
        ExprKind::Match { scrutinee, arms } => {
            collect_idents(scrutinee, out);
            for a in arms {
                collect_idents(a, out);
            }
        }
        ExprKind::Block(b) => collect_block_idents(b, out),
        ExprKind::Assign { target, value } => {
            collect_idents(target, out);
            collect_idents(value, out);
        }
        ExprKind::Group(parts) => {
            for p in parts {
                collect_idents(p, out);
            }
        }
    }
}

fn collect_block_idents(b: &Block, out: &mut Vec<String>) {
    for s in &b.stmts {
        match s {
            Stmt::Let { init, .. } => {
                if let Some(e) = init {
                    collect_idents(e, out);
                }
            }
            Stmt::Expr(e) => collect_idents(e, out),
            Stmt::Item(_) => {}
        }
    }
}

/// True when the expression contains any numeric or string literal.
fn contains_literal(e: &Expr) -> bool {
    let mut found = false;
    visit(e, &mut |x| {
        if matches!(x.kind, ExprKind::Lit(..)) {
            found = true;
        }
    });
    found
}

/// Generic pre-order expression visitor.
pub fn visit(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match &e.kind {
        ExprKind::Path(_) | ExprKind::Lit(..) | ExprKind::Atom(_) => {}
        ExprKind::Call { callee, args } => {
            visit(callee, f);
            for a in args {
                visit(a, f);
            }
        }
        ExprKind::MethodCall { recv, args, .. } => {
            visit(recv, f);
            for a in args {
                visit(a, f);
            }
        }
        ExprKind::Field { recv, .. } => visit(recv, f),
        ExprKind::Macro { args, .. } => {
            for a in args {
                visit(a, f);
            }
        }
        ExprKind::Loop { header, body, .. } => {
            if let Some(h) = header {
                visit(h, f);
            }
            visit_block(body, f);
        }
        ExprKind::Closure { body, .. } => visit(body, f),
        ExprKind::If { cond, then, els } => {
            visit(cond, f);
            visit_block(then, f);
            if let Some(els) = els {
                visit(els, f);
            }
        }
        ExprKind::Match { scrutinee, arms } => {
            visit(scrutinee, f);
            for a in arms {
                visit(a, f);
            }
        }
        ExprKind::Block(b) => visit_block(b, f),
        ExprKind::Assign { target, value } => {
            visit(target, f);
            visit(value, f);
        }
        ExprKind::Group(parts) => {
            for p in parts {
                visit(p, f);
            }
        }
    }
}

/// Visits every expression in a block.
pub fn visit_block(b: &Block, f: &mut impl FnMut(&Expr)) {
    for s in &b.stmts {
        match s {
            Stmt::Let { init, .. } => {
                if let Some(e) = init {
                    visit(e, f);
                }
            }
            Stmt::Expr(e) => visit(e, f),
            Stmt::Item(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::tokenizer::tokenize;

    fn analyze_src(src: &str) -> Vec<FnAnalysis> {
        analyze(&parse(&tokenize(src)))
    }

    #[test]
    fn def_use_chains_and_scopes() {
        let fns = analyze_src(
            "fn f(a: f64) {\n    let x = a + 1.0;\n    let y = x * 2.0;\n    use_it(y);\n    { let x = 9.0; drop(x); }\n}\n",
        );
        let f = &fns[0];
        let x = f
            .defs
            .iter()
            .find(|d| d.name == "x" && d.line == 2)
            .unwrap();
        assert_eq!(x.uses, vec![3]);
        let a = f.defs.iter().find(|d| d.name == "a").unwrap();
        assert!(a.is_param);
        assert_eq!(a.uses, vec![2]);
        // The shadowing inner x has its own use.
        let x2 = f
            .defs
            .iter()
            .find(|d| d.name == "x" && d.line == 5)
            .unwrap();
        assert_eq!(x2.uses, vec![5]);
    }

    #[test]
    fn loop_depth_and_headers() {
        let fns = analyze_src(
            "fn f(freqs: &[f64]) {\n    setup();\n    for f in freqs {\n        inner(*f);\n        while go() {\n            deep();\n        }\n    }\n}\n",
        );
        let f = &fns[0];
        let call = |n: &str| f.calls.iter().find(|c| c.name == n).unwrap();
        assert_eq!(call("setup").loop_depth, 0);
        assert_eq!(call("inner").loop_depth, 1);
        assert!(call("inner").loop_header_idents.contains(&"freqs".into()));
        assert_eq!(call("deep").loop_depth, 2);
        // `go()` is evaluated in the while header: depth 1 (inside the
        // for body), and its own body is depth 2.
        assert_eq!(call("go").loop_depth, 1);
    }

    #[test]
    fn closure_escape_is_tracked() {
        let fns = analyze_src(
            "fn f() {\n    let rng = Rng64::new(42);\n    let esc = move || rng.next_u64();\n    let local = 3;\n    direct(local);\n}\n",
        );
        let f = &fns[0];
        let rng = f.defs.iter().find(|d| d.name == "rng").unwrap();
        assert!(rng.escapes_into_closure);
        assert_eq!(rng.init_call, "Rng64::new");
        assert!(rng.init_has_literal);
        let local = f.defs.iter().find(|d| d.name == "local").unwrap();
        assert!(!local.escapes_into_closure);
    }

    #[test]
    fn calls_capture_string_args_and_receiver_roots() {
        let fns = analyze_src(
            "fn f(ws: &mut Ws) {\n    let c = rfkit_obs::Counter::new(\"a.b.c\");\n    ws.plan().solve_into(&rhs, &mut x);\n}\n",
        );
        let f = &fns[0];
        let new = f
            .calls
            .iter()
            .find(|c| c.name == "rfkit_obs::Counter::new")
            .unwrap();
        assert_eq!(new.str_args, vec![Some("a.b.c".into())]);
        let solve = f.calls.iter().find(|c| c.name == "solve_into").unwrap();
        assert_eq!(solve.kind, CallKind::Method);
        assert_eq!(solve.recv_root, "ws");
    }

    #[test]
    fn hot_set_propagates_through_same_file_calls() {
        let fns = analyze_src(
            "// rfkit-hot\nfn hot_entry() { helper(); }\nfn helper() { leaf(); }\nfn leaf() {}\nfn cold() { leaf(); }\n",
        );
        let hot = hot_set(&fns, &[]);
        assert_eq!(hot, ["helper", "hot_entry", "leaf"]);
        let seeded = hot_set(&fns, &["cold"]);
        assert!(seeded.contains(&"cold".to_string()));
    }

    #[test]
    fn cold_marker_stops_hot_propagation() {
        let fns = analyze_src(
            "// rfkit-hot\nfn hot_entry() { structural(); kernel(); }\n// rfkit-cold\nfn structural() { graph_walk(); }\nfn graph_walk() {}\nfn kernel() {}\n",
        );
        let hot = hot_set(&fns, &[]);
        assert_eq!(hot, ["hot_entry", "kernel"]);
    }

    #[test]
    fn guard_scope_end_covers_block() {
        let fns = analyze_src(
            "fn f(m: &Mutex<u32>) {\n    let _g = m.lock();\n    solve_dc(&c);\n    other();\n}\n",
        );
        let f = &fns[0];
        let g = f.defs.iter().find(|d| d.name == "_g").unwrap();
        assert_eq!(g.init_call, "lock");
        assert!(g.scope_end >= 4);
    }
}
