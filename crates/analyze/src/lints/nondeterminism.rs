//! `nondeterminism`: hasher-seeded containers and wall-clock types in
//! the numeric crates. The workspace's headline guarantee is that a
//! fixed seed reproduces results bit-for-bit at any thread count;
//! `HashMap` iteration order (random per process) and wall-clock reads
//! both silently break it. `BTreeMap`/`BTreeSet` and the seeded
//! `rfkit_opt` RNG are the sanctioned alternatives.

use crate::report::{Finding, Severity};
use crate::source::{FileKind, SourceFile};
use crate::tokenizer::TokKind;

/// Lint name.
pub const NAME: &str = "nondeterminism";
/// One-line description.
pub const DESCRIPTION: &str =
    "HashMap/HashSet/RandomState/Instant/SystemTime in numeric crates break \
     bit-for-bit reproducibility";

/// Crates whose results feed the paper's figures and tables; these must
/// be bit-for-bit reproducible.
const NUMERIC_CRATES: [&str; 10] = [
    "num",
    "twoport",
    "passive",
    "device",
    "circuit",
    "opt",
    "extract",
    "core",
    "robust",
    "surrogate",
];

/// Offending type names, with the sanctioned replacement.
const BANNED: [(&str, &str); 5] = [
    ("HashMap", "BTreeMap (deterministic iteration order)"),
    ("HashSet", "BTreeSet (deterministic iteration order)"),
    ("RandomState", "a seeded RNG from rfkit_opt"),
    (
        "Instant",
        "seed-driven logic; wall time is not reproducible",
    ),
    (
        "SystemTime",
        "seed-driven logic; wall time is not reproducible",
    ),
];

/// Runs the lint over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if !NUMERIC_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    if !matches!(file.kind, FileKind::Lib | FileKind::Bin) {
        return;
    }
    for t in file.toks.iter().filter(|t| !t.is_comment()) {
        if t.kind != TokKind::Ident || file.in_test_region(t.line) {
            continue;
        }
        if let Some((name, instead)) = BANNED.iter().find(|(n, _)| t.text == *n) {
            out.push(Finding {
                lint: NAME,
                severity: Severity::Warning,
                file: file.rel.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{name}` in a numeric crate breaks run-to-run determinism; use {instead}"
                ),
                suppressed: false,
                suggestion: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::parse(rel, src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_hashmap_in_numeric_crate() {
        let src = "use std::collections::HashMap;\npub fn f() { let _m: HashMap<u32, u32> = HashMap::new(); }\n";
        let hits = run("crates/circuit/src/netlist.rs", src);
        assert_eq!(hits.len(), 3);
        assert!(hits[0].message.contains("BTreeMap"));
    }

    #[test]
    fn flags_wall_clock_types() {
        let src = "pub fn f() { let _t = std::time::Instant::now(); }";
        let hits = run("crates/opt/src/de.rs", src);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("wall time"));
    }

    #[test]
    fn quiet_outside_numeric_crates_and_in_tests() {
        let src =
            "use std::collections::HashMap;\npub fn f() -> HashMap<u32, u32> { HashMap::new() }\n";
        assert!(run("crates/bench/src/lib.rs", src).is_empty());
        assert!(run("crates/par/src/lib.rs", src).is_empty());
        assert!(run("crates/circuit/tests/t.rs", src).is_empty());
        let in_test_mod = "\
#[cfg(test)]
mod tests {
    use std::collections::HashSet;
    #[test]
    fn t() { let _s: HashSet<u32> = HashSet::new(); }
}
";
        assert!(run("crates/num/src/lib.rs", in_test_mod).is_empty());
    }

    #[test]
    fn quiet_on_btreemap() {
        let src = "use std::collections::BTreeMap;\npub fn f() -> BTreeMap<u32, u32> { BTreeMap::new() }\n";
        assert!(run("crates/circuit/src/netlist.rs", src).is_empty());
    }
}
