//! The lint registry. Each lint lives in its own module and exposes
//! `NAME`, `DESCRIPTION`, and `check(&SourceFile, &mut Vec<Finding>)`.

pub mod alloc_in_hot_loop;
pub mod dense_solve_in_sweep;
pub mod expired_suppression;
pub mod fault_hook_coverage;
pub mod float_eq;
pub mod lock_across_solve;
pub mod nan_unsafe_sort;
pub mod nondeterminism;
pub mod obs_span_leak;
pub mod surrogate_leak;
pub mod swallowed_error;
pub mod todo_markers;
pub mod unsafe_outside_par;
pub mod unseeded_rng_flow;
pub mod unwrap_in_lib;

use crate::report::Finding;
use crate::source::SourceFile;

/// A registered lint: its name, one-line description, and entry point.
pub struct Lint {
    /// Kebab-case lint name, used in diagnostics and `rfkit-allow(...)`.
    pub name: &'static str,
    /// One-line description for `--list-lints`.
    pub description: &'static str,
    /// The check function.
    pub check: fn(&SourceFile, &mut Vec<Finding>),
}

/// Every lint the engine runs, in a fixed order.
pub fn all() -> Vec<Lint> {
    vec![
        Lint {
            name: float_eq::NAME,
            description: float_eq::DESCRIPTION,
            check: float_eq::check,
        },
        Lint {
            name: nan_unsafe_sort::NAME,
            description: nan_unsafe_sort::DESCRIPTION,
            check: nan_unsafe_sort::check,
        },
        Lint {
            name: unwrap_in_lib::NAME,
            description: unwrap_in_lib::DESCRIPTION,
            check: unwrap_in_lib::check,
        },
        Lint {
            name: nondeterminism::NAME,
            description: nondeterminism::DESCRIPTION,
            check: nondeterminism::check,
        },
        Lint {
            name: unsafe_outside_par::NAME,
            description: unsafe_outside_par::DESCRIPTION,
            check: unsafe_outside_par::check,
        },
        Lint {
            name: obs_span_leak::NAME,
            description: obs_span_leak::DESCRIPTION,
            check: obs_span_leak::check,
        },
        Lint {
            name: swallowed_error::NAME,
            description: swallowed_error::DESCRIPTION,
            check: swallowed_error::check,
        },
        Lint {
            name: todo_markers::NAME,
            description: todo_markers::DESCRIPTION,
            check: todo_markers::check,
        },
        Lint {
            name: dense_solve_in_sweep::NAME,
            description: dense_solve_in_sweep::DESCRIPTION,
            check: dense_solve_in_sweep::check,
        },
        Lint {
            name: alloc_in_hot_loop::NAME,
            description: alloc_in_hot_loop::DESCRIPTION,
            check: alloc_in_hot_loop::check,
        },
        Lint {
            name: lock_across_solve::NAME,
            description: lock_across_solve::DESCRIPTION,
            check: lock_across_solve::check,
        },
        Lint {
            name: unseeded_rng_flow::NAME,
            description: unseeded_rng_flow::DESCRIPTION,
            check: unseeded_rng_flow::check,
        },
        Lint {
            name: surrogate_leak::NAME,
            description: surrogate_leak::DESCRIPTION,
            check: surrogate_leak::check,
        },
        Lint {
            name: fault_hook_coverage::NAME,
            description: fault_hook_coverage::DESCRIPTION,
            check: fault_hook_coverage::check,
        },
        Lint {
            name: expired_suppression::NAME,
            description: expired_suppression::DESCRIPTION,
            check: expired_suppression::check,
        },
    ]
}
