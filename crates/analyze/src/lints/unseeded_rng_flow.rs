//! `unseeded-rng-flow`: an in-tree RNG constructed without a literal
//! or propagated seed. Bit-for-bit reproducibility (PR 1/4) depends on
//! every random stream being derived from an explicit seed: a literal,
//! a config field, or a fork of an already-seeded generator. An RNG
//! built from anything else (a hash, an address, a counter that varies
//! by thread schedule) silently breaks determinism where it is hardest
//! to debug — optimizer state that only diverges across runs.
//!
//! Flagged: `Rng64::new(…)` / `SplitMix64::new(…)` call sites whose
//! arguments contain neither a literal nor a seed-carrying identifier
//! (`seed`, `rng`, `fork`, `cfg`, `config`, `stream`). One def-use hop
//! is honored: `let s = cfg.seed; let r = Rng64::new(s)` is fine
//! because `s` was initialized from a seed-ish source.

use crate::dataflow::{CallKind, FnAnalysis};
use crate::report::{Finding, Severity};
use crate::source::{FileKind, SourceFile};

/// Lint name.
pub const NAME: &str = "unseeded-rng-flow";
/// One-line description.
pub const DESCRIPTION: &str = "RNG constructed without a literal or propagated seed (warning)";

/// In-tree RNG constructor paths (matched on trailing segments).
const RNG_CTORS: [&str; 2] = ["Rng64::new", "SplitMix64::new"];

fn seedish(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    ["seed", "rng", "fork", "cfg", "config", "stream", "entropy"]
        .iter()
        .any(|k| lower.contains(k))
}

fn is_rng_ctor(path: &str) -> bool {
    RNG_CTORS
        .iter()
        .any(|c| path == *c || path.ends_with(&format!("::{c}")))
}

/// True when `ident` was itself initialized from a seed-ish source in
/// this function (the one def-use hop).
fn ident_carries_seed(f: &FnAnalysis, ident: &str, before_line: u32) -> bool {
    f.defs.iter().any(|d| {
        d.name == ident
            && d.line <= before_line
            && (d.init_has_literal
                || d.init_idents.iter().any(|i| seedish(i))
                || seedish(&d.init_call))
    })
}

/// Runs the lint over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.kind != FileKind::Lib {
        return;
    }
    for f in &file.fns {
        if file.in_test_region(f.span.line) {
            continue;
        }
        for c in &f.calls {
            if c.kind != CallKind::Call || !is_rng_ctor(&c.name) || file.in_test_region(c.line) {
                continue;
            }
            let seeded = c.has_literal_arg
                || c.arg_idents.iter().any(|a| seedish(a))
                || c.arg_idents
                    .iter()
                    .any(|a| ident_carries_seed(f, a, c.line));
            if !seeded {
                out.push(Finding {
                    lint: NAME,
                    severity: Severity::Warning,
                    file: file.rel.clone(),
                    line: c.line,
                    col: c.col,
                    message: format!(
                        "`{}` constructed without a literal or propagated seed in `{}`; \
                         derive the stream from an explicit seed (literal, config field, \
                         or fork of a seeded rng) to keep runs bit-identical",
                        c.name, f.name
                    ),
                    suppressed: false,
                    suggestion: None,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_unseeded_construction() {
        let src = "\
pub fn init(counter: u64) -> Rng64 {
    Rng64::new(counter)
}
";
        let hits = run(src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("Rng64::new"));
    }

    #[test]
    fn flags_splitmix_from_address_hash() {
        let src = "\
pub fn init(ptr_hash: u64) -> SplitMix64 {
    let base = ptr_hash ^ mask;
    SplitMix64::new(base)
}
";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn quiet_with_literal_or_seed_ident() {
        assert!(run("pub fn f() -> Rng64 { Rng64::new(42) }\n").is_empty());
        assert!(run("pub fn f(seed: u64) -> Rng64 { Rng64::new(seed) }\n").is_empty());
        assert!(run("pub fn f(cfg: &Cfg) -> Rng64 { Rng64::new(cfg.seed_base) }\n").is_empty());
        // Mixing in an offset keeps the literal visible.
        assert!(run("pub fn f(k: u64) -> Rng64 { Rng64::new(k ^ 0x9e37) }\n").is_empty());
    }

    #[test]
    fn one_hop_seed_propagation_is_honored() {
        let src = "\
pub fn f(cfg: &Cfg) -> Rng64 {
    let base = cfg.seed_base + 1;
    Rng64::new(base)
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn quiet_in_tests_and_non_rng_news() {
        assert!(run("pub fn f() -> Vec<f64> { Vec::new() }\n").is_empty());
        let test = "\
#[cfg(test)]
mod tests {
    fn t(x: u64) { let r = Rng64::new(x); }
}
";
        assert!(run(test).is_empty());
    }
}
