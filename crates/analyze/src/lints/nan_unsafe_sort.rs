//! `nan-unsafe-sort`: `partial_cmp(..).unwrap()` (or `.expect(..)`)
//! inside a sort/min/max/binary-search comparator. One NaN anywhere in
//! the data panics the whole run — after hours of optimization, in the
//! worst case. `rfkit_num::total_cmp_f64` gives a total order that is
//! also deterministic across platforms.

use crate::report::{Finding, Severity};
use crate::source::SourceFile;
use crate::tokenizer::{Tok, TokKind};

/// Lint name.
pub const NAME: &str = "nan-unsafe-sort";
/// One-line description.
pub const DESCRIPTION: &str = "partial_cmp().unwrap() inside a comparator panics on NaN; use \
     rfkit_num::total_cmp_f64";

/// Comparator-taking methods whose closure argument we inspect.
const METHODS: [&str; 5] = [
    "sort_by",
    "sort_unstable_by",
    "min_by",
    "max_by",
    "binary_search_by",
];

/// Runs the lint over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    let code: Vec<&Tok> = file.toks.iter().filter(|t| !t.is_comment()).collect();
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident || !METHODS.contains(&t.text.as_str()) {
            continue;
        }
        if !code.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            continue;
        }
        // Walk the argument list to its matching close paren.
        let mut depth = 0i32;
        let mut has_partial_cmp = false;
        let mut has_unwrap = false;
        for tok in &code[i + 1..] {
            if tok.is_punct("(") {
                depth += 1;
            } else if tok.is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if tok.is_ident("partial_cmp") {
                has_partial_cmp = true;
            } else if tok.is_ident("unwrap") || tok.is_ident("expect") {
                has_unwrap = true;
            }
        }
        // `(|a, b| …)` closure head → the whole-closure replacement
        // `|a, b| rfkit_num::total_cmp_f64(a, b)` is machine-applicable.
        let suggestion = match (
            code.get(i + 2),
            code.get(i + 3),
            code.get(i + 4),
            code.get(i + 5),
            code.get(i + 6),
        ) {
            (Some(bar), Some(p1), Some(comma), Some(p2), Some(bar2))
                if bar.is_punct("|")
                    && p1.kind == TokKind::Ident
                    && comma.is_punct(",")
                    && p2.kind == TokKind::Ident
                    && bar2.is_punct("|") =>
            {
                Some(format!(
                    "|{a}, {b}| rfkit_num::total_cmp_f64({a}, {b})",
                    a = p1.text,
                    b = p2.text
                ))
            }
            _ => None,
        };
        if has_partial_cmp && has_unwrap {
            out.push(Finding {
                lint: NAME,
                severity: Severity::Warning,
                file: file.rel.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`partial_cmp().unwrap()` inside `{}` panics if any value is NaN; \
                     use rfkit_num::total_cmp_f64 for a NaN-safe total order",
                    t.text
                ),
                suppressed: false,
                suggestion,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_partial_cmp_unwrap_in_sort() {
        let hits = run("fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }");
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("total_cmp_f64"));
        assert_eq!(
            hits[0].suggestion.as_deref(),
            Some("|a, b| rfkit_num::total_cmp_f64(a, b)")
        );
    }

    #[test]
    fn no_suggestion_for_complex_closure_heads() {
        // Destructuring head: the whole-closure rewrite is not safe.
        let hits = run(
            "fn f(v: &mut [(f64, u32)]) { v.sort_by(|(a, _), (b, _)| a.partial_cmp(b).unwrap()); }",
        );
        assert_eq!(hits.len(), 1);
        assert!(hits[0].suggestion.is_none());
    }

    #[test]
    fn flags_expect_in_min_by() {
        let hits =
            run("fn f(v: &[f64]) { v.iter().min_by(|a, b| a.partial_cmp(b).expect(\"NaN\")); }");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].lint, NAME);
    }

    #[test]
    fn quiet_on_total_cmp() {
        let hits = run("fn f(v: &mut [f64]) { v.sort_by(rfkit_num::total_cmp_f64); }");
        assert!(hits.is_empty());
    }

    #[test]
    fn quiet_when_unwrap_is_outside_the_call() {
        let hits = run("fn f(v: &mut [Vec<f64>]) { v.sort_by(|a, b| a.len().cmp(&b.len())); let x = v.first().map(|r| r[0].partial_cmp(&0.0)); x.unwrap(); }");
        assert!(hits.is_empty(), "{hits:?}");
    }
}
