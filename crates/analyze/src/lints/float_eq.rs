//! `float-eq`: direct `==` / `!=` against a floating-point literal or
//! float constant. Exact float comparison is almost always a bug in
//! numeric code (it silently breaks under rounding, and `x == f64::NAN`
//! is *always* false). Intentional bit-exact zero guards should say so
//! with `rfkit_num::is_exact_zero`, which also documents that NaN must
//! not slip through.

use crate::report::{Finding, Severity};
use crate::source::SourceFile;
use crate::tokenizer::{Tok, TokKind};

/// Lint name.
pub const NAME: &str = "float-eq";
/// One-line description.
pub const DESCRIPTION: &str =
    "`==`/`!=` against a float literal or float constant; use a tolerance or \
     rfkit_num::is_exact_zero";

/// Float-typed constants commonly compared against.
const FLOAT_CONSTS: [&str; 4] = ["NAN", "INFINITY", "NEG_INFINITY", "EPSILON"];

fn is_floaty(t: &Tok) -> bool {
    t.kind == TokKind::Float
        || (t.kind == TokKind::Ident && FLOAT_CONSTS.contains(&t.text.as_str()))
}

/// Checks the operand starting at `code[j]`, looking through a unary
/// minus and a path prefix (`f64::INFINITY`, `std::f64::EPSILON`).
fn operand_is_floaty(code: &[&Tok], mut j: usize) -> bool {
    if code.get(j).is_some_and(|t| t.is_punct("-")) {
        j += 1;
    }
    while code.get(j).is_some_and(|t| t.kind == TokKind::Ident)
        && code.get(j + 1).is_some_and(|t| t.is_punct("::"))
    {
        j += 2;
    }
    code.get(j).copied().is_some_and(is_floaty)
}

fn is_zero_lit(t: &Tok) -> bool {
    t.kind == TokKind::Float
        && matches!(
            t.text.trim_end_matches("f64").trim_end_matches("f32"),
            "0.0" | "0." | "0.0_"
        )
}

/// Machine-applicable replacement for the `<ident> ==/!= 0.0` shape:
/// `rfkit_num::is_exact_zero(x)` (negated for `!=`). Other shapes have
/// no single right rewrite (the tolerance is context-dependent).
fn zero_guard_suggestion(code: &[&Tok], i: usize) -> Option<String> {
    let op = code[i];
    let (ident, lit) = (code.get(i.checked_sub(1)?)?, code.get(i + 1)?);
    let (ident, lit) =
        if ident.kind == TokKind::Ident && !FLOAT_CONSTS.contains(&ident.text.as_str()) {
            (ident, lit)
        } else if lit.kind == TokKind::Ident && !FLOAT_CONSTS.contains(&lit.text.as_str()) {
            (lit, ident)
        } else {
            return None;
        };
    if !is_zero_lit(lit) {
        return None;
    }
    let not = if op.is_punct("!=") { "!" } else { "" };
    Some(format!("{not}rfkit_num::is_exact_zero({})", ident.text))
}

/// Runs the lint over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    let code: Vec<&Tok> = file.toks.iter().filter(|t| !t.is_comment()).collect();
    for (i, t) in code.iter().enumerate() {
        if !(t.is_punct("==") || t.is_punct("!=")) {
            continue;
        }
        let prev_floaty = i > 0 && is_floaty(code[i - 1]);
        let next_floaty = operand_is_floaty(&code, i + 1);
        if prev_floaty || next_floaty {
            out.push(Finding {
                lint: NAME,
                severity: Severity::Warning,
                file: file.rel.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "exact float comparison `{}`; compare with a tolerance, or use \
                     rfkit_num::is_exact_zero for an intentional bit-zero guard",
                    t.text
                ),
                suppressed: false,
                suggestion: zero_guard_suggestion(&code, i),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_literal_and_const_comparisons() {
        let hits = run("fn f(x: f64) -> bool { x == 0.0 || x != 1.5e3 || x == f64::INFINITY }");
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].severity, Severity::Warning);
        assert!(hits[0].message.contains("is_exact_zero"));
        // Zero guard gets a machine-applicable rewrite; the others don't
        // (the right tolerance is context-dependent).
        assert_eq!(
            hits[0].suggestion.as_deref(),
            Some("rfkit_num::is_exact_zero(x)")
        );
        assert!(hits[1].suggestion.is_none());
        assert!(hits[2].suggestion.is_none());
    }

    #[test]
    fn zero_ne_suggestion_is_negated_and_side_agnostic() {
        let hits = run("fn f(x: f64) -> bool { x != 0.0 || 0.0 == x }");
        assert_eq!(hits.len(), 2);
        assert_eq!(
            hits[0].suggestion.as_deref(),
            Some("!rfkit_num::is_exact_zero(x)")
        );
        assert_eq!(
            hits[1].suggestion.as_deref(),
            Some("rfkit_num::is_exact_zero(x)")
        );
    }

    #[test]
    fn flags_negated_literal() {
        let hits = run("fn f(x: f64) -> bool { x == -1.0 }");
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn quiet_on_integers_and_tolerances() {
        let hits =
            run("fn f(x: f64, n: usize) -> bool { n == 0 && (x - 1.0).abs() < 1e-12 && n != 3 }");
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn quiet_on_float_vs_variable() {
        // Both sides are identifiers of unknown type: no type info, no lint.
        let hits = run("fn f(a: f64, b: f64) -> bool { a == b }");
        assert!(hits.is_empty());
    }
}
