//! `unsafe-outside-par`: the workspace confines `unsafe` to `rfkit-par`
//! (scoped-thread lifetime erasure), and every other library crate
//! carries `#![forbid(unsafe_code)]`. Any `unsafe` token elsewhere is an
//! error. Inside `crates/par`, each `unsafe` must carry a `SAFETY`
//! comment within the five lines above it, and the file must open with
//! an `UNSAFE AUDIT` header summarising the invariants.

use crate::report::{Finding, Severity};
use crate::source::{FileKind, SourceFile};

/// Lint name.
pub const NAME: &str = "unsafe-outside-par";
/// One-line description.
pub const DESCRIPTION: &str =
    "unsafe code outside crates/par is an error; inside par it must carry \
     SAFETY comments and an UNSAFE AUDIT header";

/// Runs the lint over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    let mut par_has_unsafe = false;
    for (i, t) in file.toks.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        if file.crate_name != "par" {
            out.push(Finding {
                lint: NAME,
                severity: Severity::Error,
                file: file.rel.clone(),
                line: t.line,
                col: t.col,
                message: "`unsafe` outside crates/par; every other crate is \
                          #![forbid(unsafe_code)] — move the code behind a safe \
                          rfkit-par API"
                    .to_string(),
                suppressed: false,
                suggestion: None,
            });
            continue;
        }
        par_has_unsafe = true;
        let has_safety_comment = file.toks[..i].iter().any(|c| {
            c.is_comment() && c.text.contains("SAFETY") && c.line + 5 >= t.line && c.line <= t.line
        });
        if !has_safety_comment {
            out.push(Finding {
                lint: NAME,
                severity: Severity::Warning,
                file: file.rel.clone(),
                line: t.line,
                col: t.col,
                message: "`unsafe` without a SAFETY comment in the five lines above it; \
                          state the invariant that makes this sound"
                    .to_string(),
                suppressed: false,
                suggestion: None,
            });
        }
    }
    if par_has_unsafe && file.kind == FileKind::Lib {
        let has_header = file
            .toks
            .iter()
            .any(|c| c.is_comment() && c.text.contains("UNSAFE AUDIT"));
        if !has_header {
            out.push(Finding {
                lint: NAME,
                severity: Severity::Warning,
                file: file.rel.clone(),
                line: 1,
                col: 1,
                message: "file uses `unsafe` but has no `UNSAFE AUDIT` header comment \
                          summarising the soundness argument"
                    .to_string(),
                suppressed: false,
                suggestion: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::parse(rel, src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn unsafe_outside_par_is_error() {
        let hits = run(
            "crates/num/src/matrix.rs",
            "pub fn f(p: *const f64) -> f64 { unsafe { *p } }",
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].severity, Severity::Error);
    }

    #[test]
    fn par_unsafe_needs_safety_comment_and_header() {
        let src = "\
pub fn f(p: *const f64) -> f64 {
    unsafe { *p }
}
";
        let hits = run("crates/par/src/lib.rs", src);
        // One for the missing SAFETY comment, one for the missing header.
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|h| h.severity == Severity::Warning));
    }

    #[test]
    fn quiet_when_audited() {
        let src = "\
// UNSAFE AUDIT: raw pointer reads are bounded by the caller's slice.
pub fn f(p: *const f64) -> f64 {
    // SAFETY: caller guarantees p is valid for reads.
    unsafe { *p }
}
";
        let hits = run("crates/par/src/lib.rs", src);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn safety_comment_too_far_above_does_not_count() {
        let src = "\
// UNSAFE AUDIT: see below.
// SAFETY: stale comment, nowhere near the block.
pub fn f(p: *const f64) -> f64 {
    let a = 1;
    let b = a + 1;
    let c = b + 1;
    let d = c + 1;
    let _ = d;
    unsafe { *p }
}
";
        let hits = run("crates/par/src/lib.rs", src);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("SAFETY"));
    }
}
