//! `fault-hook-coverage`: every solver entry point in `rfkit-circuit`
//! must reach a deterministic fault-injection site. The fault layer
//! (PR 5) only proves fault tolerance for paths that actually have a
//! `faults::inject` hook; a new `solve_*` entry added without one is a
//! blind spot where `rfkit-faults` CI passes vacuously.
//!
//! An *entry point* is a function named `solve*` or `sweep_batch` that
//! no other function in the same file calls (a call-graph root —
//! internal `solve_dense`-style helpers reached from a hooked
//! dispatcher are exempt). The entry must reach a `faults::inject`
//! call through the same-file call graph.

use crate::dataflow::{CallKind, FnAnalysis};
use crate::report::{Finding, Severity};
use crate::source::{FileKind, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// Lint name.
pub const NAME: &str = "fault-hook-coverage";
/// One-line description.
pub const DESCRIPTION: &str =
    "solver entry point in rfkit-circuit with no reachable faults::inject hook (warning)";

fn is_entry_name(name: &str) -> bool {
    name.starts_with("solve") || name == "sweep_batch"
}

fn is_inject_call(name: &str, kind: CallKind) -> bool {
    kind == CallKind::Call && (name == "inject" || name.ends_with("faults::inject"))
}

fn reaches_inject(fns: &BTreeMap<&str, &FnAnalysis>, entry: &FnAnalysis) -> bool {
    let mut seen = BTreeSet::new();
    let mut work = vec![entry];
    while let Some(f) = work.pop() {
        if !seen.insert(f.name.clone()) {
            continue;
        }
        for c in &f.calls {
            if is_inject_call(&c.name, c.kind) {
                return true;
            }
        }
        for callee in f.callees() {
            if let Some(next) = fns.get(callee) {
                if !seen.contains(callee) {
                    work.push(next);
                }
            }
        }
    }
    false
}

/// Runs the lint over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.kind != FileKind::Lib || file.crate_name != "circuit" {
        return;
    }
    let by_name: BTreeMap<&str, &FnAnalysis> =
        file.fns.iter().map(|f| (f.name.as_str(), f)).collect();
    // Names called by some other function in this file — their hook
    // obligation belongs to the dispatcher that calls them.
    let mut called: BTreeSet<&str> = BTreeSet::new();
    for f in &file.fns {
        for callee in f.callees() {
            if callee != f.name {
                called.insert(callee);
            }
        }
    }
    for f in &file.fns {
        // An accessor named `solve_*` (`solve_path_name`: one zero-arg
        // delegation, no locals) is not a solver — solvers pass the
        // system into kernels and bind intermediate state.
        let does_work =
            f.calls.iter().any(|c| !c.str_args.is_empty()) || f.defs.iter().any(|d| !d.is_param);
        if !is_entry_name(&f.name)
            || called.contains(f.name.as_str())
            || !does_work
            || file.in_test_region(f.span.line)
        {
            continue;
        }
        if !reaches_inject(&by_name, f) {
            out.push(Finding {
                lint: NAME,
                severity: Severity::Warning,
                file: file.rel.clone(),
                line: f.span.line,
                col: 1,
                message: format!(
                    "solver entry `{}` never reaches `faults::inject` in this file; add a \
                     deterministic fault hook so rfkit-faults CI exercises this path",
                    f.name
                ),
                suppressed: false,
                suggestion: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::parse(rel, src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_uncovered_solver_entry() {
        let src = "\
pub fn solve_noise(c: &Circuit) -> Result<f64, Error> {
    let sys = assemble(c);
    newton(&sys)
}
fn newton(sys: &System) -> Result<f64, Error> {
    Ok(0.0)
}
";
        let hits = run("crates/circuit/src/noise.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("solve_noise"));
    }

    #[test]
    fn quiet_when_hook_reached_transitively() {
        let src = "\
pub fn solve_dc(c: &Circuit) -> Result<f64, Error> {
    ladder(c)
}
fn ladder(c: &Circuit) -> Result<f64, Error> {
    newton_run(c)
}
fn newton_run(c: &Circuit) -> Result<f64, Error> {
    if rfkit_robust::faults::inject(\"dc.newton\", 1).is_some() {
        return Err(Error::Fault);
    }
    Ok(0.0)
}
";
        assert!(run("crates/circuit/src/dc.rs", src).is_empty());
    }

    #[test]
    fn internal_solve_helpers_are_exempt() {
        // solve_dense is called by sweep_batch, which owns the hook.
        let src = "\
pub fn sweep_batch(grid: &[f64]) {
    for g in grid {
        if faults::inject(\"ac.solve\", g.to_bits()).is_some() {
            continue;
        }
        solve_dense(*g);
    }
}
fn solve_dense(g: f64) {}
";
        assert!(run("crates/circuit/src/sweep.rs", src).is_empty());
    }

    #[test]
    fn only_circuit_lib_files_are_checked() {
        let src = "pub fn solve_x(c: &Circuit) -> f64 { newton(c) }\nfn newton(c: &Circuit) -> f64 { 0.0 }\n";
        assert!(run("crates/num/src/lib.rs", src).is_empty());
        assert!(run("crates/circuit/tests/t.rs", src).is_empty());
        assert!(!run("crates/circuit/src/x.rs", src).is_empty());
    }

    #[test]
    fn accessors_named_solve_are_exempt() {
        // Zero-arg delegation with no locals is an accessor, not a solver.
        let src = "\
pub fn solve_path_name(&self) -> &'static str {
    self.structure.path_name()
}
";
        assert!(run("crates/circuit/src/plan.rs", src).is_empty());
    }
}
