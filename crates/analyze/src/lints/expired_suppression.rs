//! `expired-suppression`: `rfkit-allow` markers whose `until` date has
//! passed, plus malformed expiry clauses. A suppression is a promise to
//! revisit; the expiry date makes that promise enforceable. Expired
//! markers still suppress their lint (so the diagnostic that surfaces
//! points at the stale date, not at already-reviewed code) but they
//! fail `--deny warnings` CI until re-justified with a fresh date or
//! removed.

use crate::report::{Finding, Severity};
use crate::source::{self, SourceFile};

/// Lint name.
pub const NAME: &str = "expired-suppression";
/// One-line description.
pub const DESCRIPTION: &str =
    "rfkit-allow marker past its `until` date or with a malformed expiry clause (error)";

/// Runs the lint over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    let today = source::today();
    for a in &file.allows {
        if a.malformed {
            out.push(Finding {
                lint: NAME,
                severity: Severity::Error,
                file: file.rel.clone(),
                line: a.line,
                col: 1,
                message: format!(
                    "malformed rfkit-allow clause for `{}`; use `rfkit-allow({}, until = \
                     \"YYYY-MM-DD\")`",
                    a.lint, a.lint
                ),
                suppressed: false,
                suggestion: None,
            });
        } else if let Some(until) = &a.until {
            // YYYY-MM-DD compares correctly as a plain string.
            if until.as_str() < today.as_str() {
                out.push(Finding {
                    lint: NAME,
                    severity: Severity::Error,
                    file: file.rel.clone(),
                    line: a.line,
                    col: 1,
                    message: format!(
                        "suppression of `{}` expired on {until}; re-justify with a new \
                         `until` date or fix the underlying finding",
                        a.lint
                    ),
                    suppressed: false,
                    suggestion: None,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        // Fix "today" so the test cannot rot.
        std::env::set_var("RFKIT_ANALYZE_TODAY", "2026-08-08");
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn expired_suppression_is_an_error() {
        let hits = run("let a = 0; // rfkit-allow(float-eq, until = \"2025-01-01\")\n");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].severity, Severity::Error);
        assert!(hits[0].message.contains("expired on 2025-01-01"));
    }

    #[test]
    fn future_and_undated_suppressions_are_quiet() {
        assert!(run("let a = 0; // rfkit-allow(float-eq, until = \"2030-01-01\")\n").is_empty());
        assert!(run("let a = 0; // rfkit-allow(float-eq)\n").is_empty());
    }

    #[test]
    fn malformed_clause_is_an_error() {
        let hits = run("let a = 0; // rfkit-allow(float-eq, until = someday)\n");
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("malformed"));
    }

    #[test]
    fn expiry_boundary_is_inclusive() {
        // A suppression is valid through its `until` day.
        assert!(run("let a = 0; // rfkit-allow(float-eq, until = \"2026-08-08\")\n").is_empty());
    }
}
