//! `unwrap-in-lib`: panicking escape hatches in library code. A bare
//! `.unwrap()` turns any edge case into a process abort with no context;
//! library code should return `Result` or, when an invariant genuinely
//! holds, say so with `.expect("why")`. `.expect(...)` and `panic!` are
//! reported at `Info` severity — they carry a documented invariant and
//! are acceptable, but the report should still surface where they live.

use crate::report::{Finding, Severity};
use crate::source::{FileKind, SourceFile};
use crate::tokenizer::Tok;

/// Lint name.
pub const NAME: &str = "unwrap-in-lib";
/// One-line description.
pub const DESCRIPTION: &str =
    ".unwrap() in library code (warning); .expect()/panic! surfaced at info";

/// Runs the lint over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.kind != FileKind::Lib {
        return;
    }
    let code: Vec<&Tok> = file.toks.iter().filter(|t| !t.is_comment()).collect();
    for (i, t) in code.iter().enumerate() {
        if file.in_test_region(t.line) {
            continue;
        }
        let method_call = |name: &str| {
            t.is_punct(".")
                && code.get(i + 1).is_some_and(|n| n.is_ident(name))
                && code.get(i + 2).is_some_and(|n| n.is_punct("("))
        };
        if method_call("unwrap") {
            out.push(Finding {
                lint: NAME,
                severity: Severity::Warning,
                file: file.rel.clone(),
                line: t.line,
                col: t.col,
                message: "`.unwrap()` in library code aborts with no context; return a \
                          Result or document the invariant with `.expect(\"...\")`"
                    .to_string(),
                suppressed: false,
                suggestion: None,
            });
        } else if method_call("expect") {
            out.push(Finding {
                lint: NAME,
                severity: Severity::Info,
                file: file.rel.clone(),
                line: t.line,
                col: t.col,
                message: "`.expect(...)` in library code; fine when the invariant holds, \
                          listed for audit"
                    .to_string(),
                suppressed: false,
                suggestion: None,
            });
        } else if t.is_ident("panic") && code.get(i + 1).is_some_and(|n| n.is_punct("!")) {
            out.push(Finding {
                lint: NAME,
                severity: Severity::Info,
                file: file.rel.clone(),
                line: t.line,
                col: t.col,
                message: "`panic!` in library code; fine for unreachable states, listed \
                          for audit"
                    .to_string(),
                suppressed: false,
                suggestion: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::parse(rel, src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn unwrap_is_warning_expect_and_panic_are_info() {
        let src = "\
pub fn f(o: Option<u32>) -> u32 {
    let a = o.unwrap();
    let b = o.expect(\"set by caller\");
    if a != b { panic!(\"unreachable\"); }
    a
}
";
        let hits = run("crates/x/src/lib.rs", src);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].severity, Severity::Warning);
        assert_eq!(hits[1].severity, Severity::Info);
        assert_eq!(hits[2].severity, Severity::Info);
    }

    #[test]
    fn quiet_in_tests_and_bins() {
        let src = "fn main() { Some(1).unwrap(); }";
        assert!(run("crates/x/src/bin/tool.rs", src).is_empty());
        assert!(run("crates/x/tests/t.rs", src).is_empty());
        let in_test_mod = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); }
}
";
        assert!(run("crates/x/src/lib.rs", in_test_mod).is_empty());
    }

    #[test]
    fn quiet_on_unwrap_or_variants() {
        let src = "pub fn f(o: Option<u32>) -> u32 { o.unwrap_or(0) + o.unwrap_or_else(|| 1) }";
        assert!(run("crates/x/src/lib.rs", src).is_empty());
    }
}
