//! `dense-solve-in-sweep`: O(n³) dense factorizations inside
//! per-frequency loops. Library code that calls `.inverse()`, `.lu()`,
//! `.lu_into()`, `.solve_matrix()` or `.solve_matrix_into()` directly in
//! a loop over a frequency grid re-pays the full dense factorization at
//! every point — exactly the cost the batched sweep engine
//! (`StampPlan::sweep_batch`, pivot reuse + banded/bordered kernels)
//! exists to amortize. Route grid sweeps through `sweep_batch` (or hoist
//! the factorization out of the loop) instead.
//!
//! A loop is considered a frequency sweep when its header (`for … in … {`)
//! mentions a grid-like identifier: anything containing `freq` or
//! `grid`, or named `band`, `sweep`, `points` or `omega`. Per-point
//! *solves with a pre-computed factorization* (`solve_into`,
//! `solve_in_place`) are fine and not flagged.

use crate::report::{Finding, Severity};
use crate::source::{FileKind, SourceFile};
use crate::tokenizer::{Tok, TokKind};

/// Lint name.
pub const NAME: &str = "dense-solve-in-sweep";
/// One-line description.
pub const DESCRIPTION: &str =
    "dense inverse()/full-LU factorization inside a per-frequency loop (warning)";

/// Dense-factorization entry points that should never sit in a sweep loop.
const DENSE_CALLS: [&str; 5] = [
    "inverse",
    "lu",
    "lu_into",
    "solve_matrix",
    "solve_matrix_into",
];

fn grid_like(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower.contains("freq")
        || lower.contains("grid")
        || lower == "band"
        || lower == "sweep"
        || lower == "points"
        || lower == "omega"
}

/// Runs the lint over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.kind != FileKind::Lib {
        return;
    }
    let code: Vec<&Tok> = file.toks.iter().filter(|t| !t.is_comment()).collect();
    let mut reported = vec![false; code.len()];
    let mut i = 0usize;
    while i < code.len() {
        if !code[i].is_ident("for") {
            i += 1;
            continue;
        }
        // Parse the loop header: `for <pat> in <expr> {`. An `impl T for
        // U {` header has no `in` before its `{` and is skipped. The
        // header scan is bounded so a stray `for` cannot run away.
        let mut open = None;
        let mut saw_in = false;
        let mut sweepy = false;
        for (j, t) in code.iter().enumerate().skip(i + 1).take(64) {
            if t.is_punct("{") {
                open = Some(j);
                break;
            }
            if t.is_ident("in") {
                saw_in = true;
            } else if saw_in && grid_like(ident_text(t)) {
                sweepy = true;
            }
        }
        let Some(open) = open else {
            i += 1;
            continue;
        };
        if !(saw_in && sweepy) {
            i += 1;
            continue;
        }
        // Find the matching close brace of the loop body.
        let mut depth = 0usize;
        let mut close = code.len();
        for (j, t) in code.iter().enumerate().skip(open) {
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    close = j;
                    break;
                }
            }
        }
        for j in open + 1..close {
            let t = code[j];
            if reported[j] || file.in_test_region(t.line) {
                continue;
            }
            let called = DENSE_CALLS.iter().find(|name| {
                t.is_punct(".")
                    && code.get(j + 1).is_some_and(|n| n.is_ident(name))
                    && code.get(j + 2).is_some_and(|n| n.is_punct("("))
            });
            if let Some(name) = called {
                reported[j] = true;
                out.push(Finding {
                    lint: NAME,
                    severity: Severity::Warning,
                    file: file.rel.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "`.{name}(...)` inside a per-frequency loop refactors the full dense \
                         system at every grid point; use `StampPlan::sweep_batch` or hoist \
                         the factorization out of the loop"
                    ),
                    suppressed: false,
                });
            }
        }
        i += 1;
    }
}

fn ident_text(t: &Tok) -> &str {
    if t.kind == TokKind::Ident {
        &t.text
    } else {
        ""
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::parse(rel, src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_dense_calls_in_freq_loops() {
        let src = "\
pub fn sweep(freqs: &[f64]) {
    for f in freqs {
        let y = assemble(*f);
        let inv = y.inverse();
        let mut ws = LuWorkspace::new();
        ws.lu_into(&y);
    }
}
";
        let hits = run("crates/x/src/lib.rs", src);
        assert_eq!(hits.len(), 2);
        assert!(hits[0].message.contains("inverse"));
        assert!(hits[1].message.contains("lu_into"));
        assert!(hits.iter().all(|h| h.severity == Severity::Warning));
    }

    #[test]
    fn flags_in_nested_and_enumerated_grids() {
        let src = "\
pub fn sweep(grid: &[f64]) {
    for (p, f) in grid.iter().enumerate() {
        if p > 0 {
            solver.solve_matrix(&rhs);
        }
    }
}
";
        let hits = run("crates/x/src/lib.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
    }

    #[test]
    fn quiet_outside_sweep_loops_and_on_cheap_solves() {
        // Non-grid loop: dense call allowed.
        let over_rows = "\
pub fn f(rows: &[Row]) {
    for r in rows {
        r.m.inverse();
    }
}
";
        assert!(run("crates/x/src/lib.rs", over_rows).is_empty());
        // Grid loop, but only factorization *reuse*: allowed.
        let reuse = "\
pub fn f(freqs: &[f64], ws: &LuWorkspace) {
    for f in freqs {
        ws.solve_into(&rhs(*f), &mut x);
        band.solve_in_place(&mut x);
    }
}
";
        assert!(run("crates/x/src/lib.rs", reuse).is_empty());
        // `impl T for U` is not a loop header.
        let impl_block = "\
impl Solve for Grid {
    fn go(&self) {
        self.m.inverse();
    }
}
";
        assert!(run("crates/x/src/lib.rs", impl_block).is_empty());
    }

    #[test]
    fn quiet_in_tests_and_bins() {
        let src = "\
fn main() {
    for f in freqs {
        y.inverse();
    }
}
";
        assert!(run("crates/x/src/bin/tool.rs", src).is_empty());
        assert!(run("crates/x/tests/t.rs", src).is_empty());
    }
}
