//! `dense-solve-in-sweep`: O(n³) dense factorizations inside
//! per-frequency loops. Library code that calls `.inverse()`, `.lu()`,
//! `.lu_into()`, `.solve_matrix()` or `.solve_matrix_into()` directly in
//! a loop over a frequency grid re-pays the full dense factorization at
//! every point — exactly the cost the batched sweep engine
//! (`StampPlan::sweep_batch`, pivot reuse + banded/bordered kernels)
//! exists to amortize. Route grid sweeps through `sweep_batch` (or hoist
//! the factorization out of the loop) instead.
//!
//! Runs over the dataflow layer: a call is flagged when its enclosing
//! loop *nest* (real nesting from the AST, not brace counting) has a
//! grid-like identifier in any loop header — anything containing
//! `freq` or `grid`, or named `band`, `sweep`, `points` or `omega`.
//! Per-point *solves with a pre-computed factorization* (`solve_into`,
//! `solve_in_place`) are fine and not flagged.

use crate::dataflow::CallKind;
use crate::report::{Finding, Severity};
use crate::source::{FileKind, SourceFile};

/// Lint name.
pub const NAME: &str = "dense-solve-in-sweep";
/// One-line description.
pub const DESCRIPTION: &str =
    "dense inverse()/full-LU factorization inside a per-frequency loop (warning)";

/// Dense-factorization entry points that should never sit in a sweep loop.
const DENSE_CALLS: [&str; 5] = [
    "inverse",
    "lu",
    "lu_into",
    "solve_matrix",
    "solve_matrix_into",
];

fn grid_like(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower.contains("freq")
        || lower.contains("grid")
        || lower == "band"
        || lower == "sweep"
        || lower == "points"
        || lower == "omega"
}

/// Runs the lint over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.kind != FileKind::Lib {
        return;
    }
    for f in &file.fns {
        if file.in_test_region(f.span.line) {
            continue;
        }
        for c in &f.calls {
            if c.kind != CallKind::Method
                || c.loop_depth == 0
                || !DENSE_CALLS.contains(&c.name.as_str())
                || file.in_test_region(c.line)
            {
                continue;
            }
            if !c.loop_header_idents.iter().any(|i| grid_like(i)) {
                continue;
            }
            out.push(Finding {
                lint: NAME,
                severity: Severity::Warning,
                file: file.rel.clone(),
                line: c.line,
                col: c.col,
                message: format!(
                    "`.{}(...)` inside a per-frequency loop refactors the full dense \
                     system at every grid point; use `StampPlan::sweep_batch` or hoist \
                     the factorization out of the loop",
                    c.name
                ),
                suppressed: false,
                suggestion: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::parse(rel, src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_dense_calls_in_freq_loops() {
        let src = "\
pub fn sweep(freqs: &[f64]) {
    for f in freqs {
        let y = assemble(*f);
        let inv = y.inverse();
        let mut ws = LuWorkspace::new();
        ws.lu_into(&y);
    }
}
";
        let hits = run("crates/x/src/lib.rs", src);
        assert_eq!(hits.len(), 2);
        assert!(hits[0].message.contains("inverse"));
        assert!(hits[1].message.contains("lu_into"));
        assert!(hits.iter().all(|h| h.severity == Severity::Warning));
    }

    #[test]
    fn flags_in_nested_and_enumerated_grids() {
        let src = "\
pub fn sweep(grid: &[f64]) {
    for (p, f) in grid.iter().enumerate() {
        if p > 0 {
            solver.solve_matrix(&rhs);
        }
    }
}
";
        let hits = run("crates/x/src/lib.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
    }

    #[test]
    fn flags_inner_loop_when_outer_is_the_grid() {
        // Brace counting used to need the dense call lexically inside
        // the grid loop's braces; real nesting sees through inner
        // non-grid loops too.
        let src = "\
pub fn sweep(freqs: &[f64], stages: &[Stage]) {
    for f in freqs {
        for s in stages {
            s.y.inverse();
        }
    }
}
";
        let hits = run("crates/x/src/lib.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
    }

    #[test]
    fn quiet_outside_sweep_loops_and_on_cheap_solves() {
        // Non-grid loop: dense call allowed.
        let over_rows = "\
pub fn f(rows: &[Row]) {
    for r in rows {
        r.m.inverse();
    }
}
";
        assert!(run("crates/x/src/lib.rs", over_rows).is_empty());
        // Grid loop, but only factorization *reuse*: allowed.
        let reuse = "\
pub fn f(freqs: &[f64], ws: &LuWorkspace) {
    for f in freqs {
        ws.solve_into(&rhs(*f), &mut x);
        band.solve_in_place(&mut x);
    }
}
";
        assert!(run("crates/x/src/lib.rs", reuse).is_empty());
        // `impl T for U` is not a loop header.
        let impl_block = "\
impl Solve for Grid {
    fn go(&self) {
        self.m.inverse();
    }
}
";
        assert!(run("crates/x/src/lib.rs", impl_block).is_empty());
        // A dense call after the grid loop closed: allowed.
        let after = "\
pub fn f(freqs: &[f64]) {
    for f in freqs {
        accumulate(*f);
    }
    total.inverse();
}
";
        assert!(run("crates/x/src/lib.rs", after).is_empty());
    }

    #[test]
    fn quiet_in_tests_and_bins() {
        let src = "\
fn main() {
    for f in freqs {
        y.inverse();
    }
}
";
        assert!(run("crates/x/src/bin/tool.rs", src).is_empty());
        assert!(run("crates/x/tests/t.rs", src).is_empty());
    }
}
