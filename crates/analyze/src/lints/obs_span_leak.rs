//! `obs-span-leak`: a tracing span bound to the wildcard pattern
//! (`let _ = rfkit_obs::span(..)`) drops at the end of the statement, so
//! the span records ~0 µs instead of the region it was meant to time.
//! The guard must live in a named binding (`let _span = ...`) whose drop
//! at scope exit closes the span.

use crate::report::{Finding, Severity};
use crate::source::SourceFile;
use crate::tokenizer::{Tok, TokKind};

/// Lint name.
pub const NAME: &str = "obs-span-leak";
/// One-line description.
pub const DESCRIPTION: &str = "`let _ = ...span(...)` drops the span guard immediately; bind it \
     to a named variable like `_span`";

/// Runs the lint over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    let code: Vec<&Tok> = file.toks.iter().filter(|t| !t.is_comment()).collect();
    for (i, t) in code.iter().enumerate() {
        if !t.is_ident("let") {
            continue;
        }
        // Exactly `let _ =` — named bindings (`_span`), patterns
        // (`let _ : T`), and tuple destructuring (`let (_, x)`) are fine.
        if !code.get(i + 1).is_some_and(|n| n.is_ident("_")) {
            continue;
        }
        if !code.get(i + 2).is_some_and(|n| n.is_punct("=")) {
            continue;
        }
        // Scan the initializer to its `;` (at bracket depth 0) for a call
        // to `span(...)` — covers `rfkit_obs::span(..)`, `obs::span(..)`
        // and a locally imported `span(..)`.
        let mut depth = 0i32;
        for (j, tok) in code[i + 3..].iter().enumerate() {
            if tok.is_punct("(") || tok.is_punct("[") || tok.is_punct("{") {
                depth += 1;
            } else if tok.is_punct(")") || tok.is_punct("]") || tok.is_punct("}") {
                depth -= 1;
            } else if tok.is_punct(";") && depth == 0 {
                break;
            } else if tok.kind == TokKind::Ident
                && tok.text == "span"
                && code.get(i + 3 + j + 1).is_some_and(|n| n.is_punct("("))
            {
                out.push(Finding {
                    lint: NAME,
                    severity: Severity::Warning,
                    file: file.rel.clone(),
                    line: t.line,
                    col: t.col,
                    message: "span guard bound to `_` drops immediately and records ~0 µs; \
                         bind it to a named variable (e.g. `let _span = ...`) so it closes \
                         at scope exit"
                        .to_string(),
                    suppressed: false,
                    suggestion: None,
                });
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_wildcard_span_binding() {
        let hits = run("fn f() { let _ = rfkit_obs::span(\"x\"); work(); }");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].lint, NAME);
        assert!(hits[0].message.contains("_span"));
    }

    #[test]
    fn flags_locally_imported_span() {
        let hits = run("fn f() { let _ = span(\"x\"); }");
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn quiet_on_named_guard() {
        let hits = run("fn f() { let _span = rfkit_obs::span(\"x\"); work(); }");
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn quiet_on_unrelated_wildcard_let() {
        let hits = run("fn f(device: u8, band: u8) { let _ = (device, band); }");
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn quiet_when_span_is_in_a_later_statement() {
        let hits = run("fn f() { let _ = init(); let _g = rfkit_obs::span(\"x\"); }");
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn quiet_on_span_field_access_without_call() {
        let hits = run("fn f(r: Rec) { let _ = r.span; }");
        assert!(hits.is_empty(), "{hits:?}");
    }
}
