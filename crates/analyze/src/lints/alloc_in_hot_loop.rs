//! `alloc-in-hot-loop`: heap allocation inside a loop in a hot
//! function. The batched sweep engine (PR 6) exists to keep the
//! per-frequency inner loop allocation-free: workspaces are sized once
//! and reused across grid points. An allocation that sneaks into a
//! `// rfkit-hot`-marked function — or anything reachable from
//! `sweep_batch` in the same file — silently re-pays malloc per point.
//!
//! Flagged at loop depth ≥ 1 in hot functions: `Vec::new`,
//! `Vec::with_capacity`, `vec![…]`, `Box::new`, `.to_vec()`,
//! `.collect()`, `String::new`, `format!(…)`, `.clone()` on
//! container-ish receivers is *not* flagged (too noisy; clones of
//! scalars dominate). Hoist the allocation into a workspace that the
//! caller owns, or pre-size it before entering the loop.

use crate::dataflow::{self, CallKind};
use crate::report::{Finding, Severity};
use crate::source::{FileKind, SourceFile};

/// Lint name.
pub const NAME: &str = "alloc-in-hot-loop";
/// One-line description.
pub const DESCRIPTION: &str =
    "heap allocation inside a loop of a `// rfkit-hot` (or sweep_batch-reachable) fn (warning)";

/// Function names that seed hotness in addition to explicit markers.
const HOT_SEEDS: [&str; 1] = ["sweep_batch"];

/// Allocating plain/assoc-fn call paths.
const ALLOC_CALLS: [&str; 5] = [
    "Vec::new",
    "Vec::with_capacity",
    "Box::new",
    "String::new",
    "String::with_capacity",
];

/// Allocating method names.
const ALLOC_METHODS: [&str; 3] = ["to_vec", "collect", "to_owned"];

/// Allocating macros.
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// Runs the lint over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.kind != FileKind::Lib {
        return;
    }
    let hot = dataflow::hot_set(&file.fns, &HOT_SEEDS);
    for f in &file.fns {
        if !hot.iter().any(|h| h == &f.name) || file.in_test_region(f.span.line) {
            continue;
        }
        for c in &f.calls {
            if c.loop_depth == 0 || file.in_test_region(c.line) {
                continue;
            }
            let what = match c.kind {
                CallKind::Call if ALLOC_CALLS.contains(&c.name.as_str()) => {
                    format!("`{}(...)`", c.name)
                }
                CallKind::Method if ALLOC_METHODS.contains(&c.name.as_str()) => {
                    format!("`.{}()`", c.name)
                }
                CallKind::Macro if ALLOC_MACROS.contains(&c.name.as_str()) => {
                    format!("`{}![...]`", c.name)
                }
                _ => continue,
            };
            out.push(Finding {
                lint: NAME,
                severity: Severity::Warning,
                file: file.rel.clone(),
                line: c.line,
                col: c.col,
                message: format!(
                    "{what} allocates inside a loop of hot fn `{}` (depth {}); hoist the \
                     buffer out of the loop or take a caller-owned workspace",
                    f.name, c.loop_depth
                ),
                suppressed: false,
                suggestion: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_allocs_in_marked_hot_loop() {
        let src = "\
// rfkit-hot
pub fn kernel(freqs: &[f64]) {
    for f in freqs {
        let mut buf = Vec::new();
        let v = xs.to_vec();
        let w: Vec<f64> = ys.iter().map(|y| y * f).collect();
        let b = vec![0.0; n];
        buf.push(*f);
    }
}
";
        let hits = run(src);
        assert_eq!(hits.len(), 4, "{hits:?}");
        assert!(hits.iter().all(|h| h.severity == Severity::Warning));
        assert!(hits[0].message.contains("hot fn `kernel`"));
    }

    #[test]
    fn flags_through_sweep_batch_reachability() {
        let src = "\
pub fn sweep_batch(grid: &[f64]) {
    for g in grid {
        helper(*g);
    }
}
fn helper(g: f64) {
    loop {
        let v = Box::new(g);
        break;
    }
}
";
        let hits = run(src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("helper"));
    }

    #[test]
    fn quiet_outside_loops_in_cold_fns_and_tests() {
        // Allocation before the loop in a hot fn: fine.
        let pre = "\
// rfkit-hot
pub fn kernel(freqs: &[f64]) {
    let mut buf = Vec::with_capacity(freqs.len());
    for f in freqs {
        buf.push(*f);
    }
}
";
        assert!(run(pre).is_empty());
        // Cold function: allocate freely.
        let cold = "\
pub fn setup(freqs: &[f64]) {
    for f in freqs {
        let v = vec![*f];
    }
}
";
        assert!(run(cold).is_empty());
        // Test regions are exempt even in hot fns.
        let test = "\
#[cfg(test)]
mod tests {
    // rfkit-hot
    fn t(xs: &[f64]) {
        for x in xs {
            let v = xs.to_vec();
        }
    }
}
";
        assert!(run(test).is_empty());
    }

    #[test]
    fn quiet_in_bins() {
        let src = "\
// rfkit-hot
fn main() {
    for f in freqs {
        let v = Vec::new();
    }
}
";
        let f = SourceFile::parse("crates/x/src/bin/tool.rs", src);
        let mut out = Vec::new();
        check(&f, &mut out);
        assert!(out.is_empty());
    }
}
