//! `todo-markers`: unfinished-work markers left in the tree. Comment
//! markers (the classic four all-caps words) and the `todo!` /
//! `unimplemented!` macros both mean a code path the paper's results
//! must not depend on; CI surfaces them so they cannot linger silently.

use crate::report::{Finding, Severity};
use crate::source::SourceFile;
use crate::tokenizer::Tok;

/// Lint name.
pub const NAME: &str = "todo-markers";
/// One-line description.
pub const DESCRIPTION: &str =
    "unfinished-work markers in comments, and todo!/unimplemented! macros";

/// The marker words, matched case-sensitively as whole words.
const MARKERS: [&str; 4] = ["TODO", "FIXME", "XXX", "HACK"];

/// Runs the lint over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    for t in &file.toks {
        if t.is_comment() {
            check_comment(file, t, out);
        }
    }
    let code: Vec<&Tok> = file.toks.iter().filter(|t| !t.is_comment()).collect();
    for (i, t) in code.iter().enumerate() {
        let is_marker_macro = (t.is_ident("todo") || t.is_ident("unimplemented"))
            && code.get(i + 1).is_some_and(|n| n.is_punct("!"));
        if is_marker_macro {
            out.push(Finding {
                lint: NAME,
                severity: Severity::Warning,
                file: file.rel.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}!` macro: this code path is unfinished and will panic if reached",
                    t.text
                ),
                suppressed: false,
                suggestion: None,
            });
        }
    }
}

/// Scans one comment token for marker words, word-by-word so `XXXX` or
/// `HACKy` never match.
fn check_comment(file: &SourceFile, t: &Tok, out: &mut Vec<Finding>) {
    for (line_off, line_text) in t.text.split('\n').enumerate() {
        for word in line_text.split(|c: char| !c.is_alphanumeric() && c != '_') {
            if let Some(marker) = MARKERS.iter().find(|m| word == **m) {
                out.push(Finding {
                    lint: NAME,
                    severity: Severity::Warning,
                    file: file.rel.clone(),
                    line: t.line + line_off as u32,
                    col: t.col,
                    message: format!(
                        "comment contains unfinished-work marker `{marker}`; finish the \
                         work or file it in ROADMAP.md"
                    ),
                    suppressed: false,
                    suggestion: None,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_comment_markers_with_correct_lines() {
        let src = "// TODO: finish\nfn f() {}\n/* line one\n FIXME here */\n";
        let hits = run(src);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].line, 1);
        assert_eq!(hits[1].line, 4);
        assert!(hits[1].message.contains("FIXME"));
    }

    #[test]
    fn flags_marker_macros() {
        let hits = run("fn f() { todo!() }\nfn g() { unimplemented!(\"later\") }\n");
        assert_eq!(hits.len(), 2);
        assert!(hits[0].message.contains("todo!"));
    }

    #[test]
    fn whole_word_matching_only() {
        let hits = run("// XXXX is a placeholder id, HACKy is an adjective, hack is lowercase\n");
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn quiet_on_markers_inside_strings() {
        // A lint engine that reports marker words from string literals
        // would flag its own message table.
        let hits = run("fn f() -> &'static str { \"TODO\" }\n");
        assert!(hits.is_empty());
    }
}
