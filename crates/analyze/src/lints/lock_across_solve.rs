//! `lock-across-solve`: a mutex guard held across a call into a
//! solver. Solver entry points (`solve_*`, `sweep_batch`, `newton_*`)
//! can run for milliseconds per call and — once `rfkit-serve` fans
//! requests across threads — a guard held across one serializes the
//! whole fleet and invites lock-order deadlocks with callbacks that
//! also take locks. Drop the guard (end its scope, or `drop(g)`)
//! before entering the solver, or copy what you need out of the
//! protected state first.
//!
//! Detection is lexical-RAII: a `let g = x.lock()` binding is live
//! from its line to the end of its enclosing scope unless an explicit
//! `drop(g)` appears first; any solver call strictly inside that range
//! is flagged.

use crate::dataflow::{CallKind, CallSite, Def, FnAnalysis};
use crate::report::{Finding, Severity};
use crate::source::{FileKind, SourceFile};

/// Lint name.
pub const NAME: &str = "lock-across-solve";
/// One-line description.
pub const DESCRIPTION: &str = "MutexGuard held live across a solver/eval call (warning)";

/// Guard-producing method names.
const LOCK_METHODS: [&str; 2] = ["lock", "try_lock"];

fn is_solver_call(c: &CallSite) -> bool {
    let last = c.name.rsplit("::").next().unwrap_or(&c.name);
    last.starts_with("solve") || last.starts_with("newton") || last == "sweep_batch"
}

/// The line an explicit `drop(<name>)` releases the guard on, if any.
fn drop_line(f: &FnAnalysis, d: &Def) -> Option<u32> {
    f.calls
        .iter()
        .filter(|c| {
            c.kind == CallKind::Call
                && c.name == "drop"
                && c.line >= d.line
                && c.arg_idents.iter().any(|a| a == &d.name)
        })
        .map(|c| c.line)
        .min()
}

/// Runs the lint over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.kind != FileKind::Lib {
        return;
    }
    for f in &file.fns {
        if file.in_test_region(f.span.line) {
            continue;
        }
        for d in &f.defs {
            // `state.lock().unwrap()` ends in `unwrap`, so check the
            // whole init chain for a lock call, not just the trailing
            // method. A block initializer (`let x = { …lock()… };`)
            // has no trailing call — any guard taken inside it already
            // died at the block's end, so it is not a guard binding.
            let locks = LOCK_METHODS.contains(&d.init_call.as_str())
                || (!d.init_call.is_empty()
                    && d.init_idents
                        .iter()
                        .any(|i| LOCK_METHODS.contains(&i.as_str())));
            if !locks {
                continue;
            }
            let live_end = drop_line(f, d).unwrap_or(d.scope_end);
            for c in f.calls.iter().filter(|c| is_solver_call(c)) {
                if c.line > d.line && c.line < live_end && !file.in_test_region(c.line) {
                    out.push(Finding {
                        lint: NAME,
                        severity: Severity::Warning,
                        file: file.rel.clone(),
                        line: c.line,
                        col: c.col,
                        message: format!(
                            "solver call `{}` runs while guard `{}` (locked at line {}) is \
                             still held; drop the guard or copy state out before solving",
                            c.name, d.name, d.line
                        ),
                        suppressed: false,
                        suggestion: None,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_guard_held_across_solver() {
        let src = "\
pub fn run(state: &Mutex<State>, c: &Circuit) {
    let g = state.lock().unwrap();
    let sol = solve_dc(c);
    g.record(sol);
}
";
        let hits = run(src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("guard `g`"));
        assert!(hits[0].message.contains("solve_dc"));
    }

    #[test]
    fn flags_method_solver_and_sweep_batch() {
        let src = "\
pub fn run(state: &Mutex<State>, plan: &mut StampPlan) {
    let g = state.lock().unwrap();
    plan.sweep_batch(&freqs, &mut out);
    drop(g);
}
";
        let hits = run(src);
        assert_eq!(hits.len(), 1, "{hits:?}");
    }

    #[test]
    fn quiet_when_guard_dropped_before_solve() {
        let src = "\
pub fn run(state: &Mutex<State>, c: &Circuit) {
    let g = state.lock().unwrap();
    let x0 = g.guess.clone();
    drop(g);
    let sol = solve_dc(c);
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn quiet_when_scope_ends_before_solve() {
        let src = "\
pub fn run(state: &Mutex<State>, c: &Circuit) {
    let x0 = {
        let g = state.lock().unwrap();
        g.guess.clone()
    };
    let sol = solve_dc(c);
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn quiet_without_locks_or_in_tests() {
        assert!(run("pub fn run(c: &Circuit) { let s = solve_dc(c); }\n").is_empty());
        let test = "\
#[cfg(test)]
mod tests {
    fn t(state: &Mutex<State>, c: &Circuit) {
        let g = state.lock().unwrap();
        solve_dc(c);
    }
}
";
        assert!(run(test).is_empty());
    }
}
