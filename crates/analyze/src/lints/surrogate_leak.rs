//! `surrogate-leak`: a surrogate-predicted value flowing into a result
//! artifact. The surrogate layer's load-bearing guarantee is
//! *prune-never-propagate*: model predictions may only veto a true
//! evaluation, never stand in for one. Every objective vector that
//! reaches a Pareto front, a report, or a design-cache entry must come
//! from a real band evaluation — a predicted value smuggled into any of
//! those corrupts recorded results in a way no downstream check can
//! detect (the numbers look plausible by construction).
//!
//! Flagged: an identifier initialized (directly or through a def-use
//! chain) from a surrogate prediction call (`predict`, `predict_into`,
//! `predict_lcb`, `lcb_into`) that then appears as an argument to a
//! store-like sink — `push`/`insert`/`extend`/`store` on a
//! front/population/cache/report-ish receiver, a `report`/`write`-named
//! call, or a screen's own `observe`/`seed_training` (feeding
//! predictions back into training silently compounds model error).
//! Comparisons and domination checks are exactly what predictions are
//! *for* and stay quiet.

use crate::dataflow::{CallKind, FnAnalysis};
use crate::report::{Finding, Severity};
use crate::source::{FileKind, SourceFile};
use std::collections::BTreeSet;

/// Lint name.
pub const NAME: &str = "surrogate-leak";
/// One-line description.
pub const DESCRIPTION: &str =
    "surrogate-predicted value stored into a front, report, cache, or training set (error)";

/// Prediction call names whose results are tainted.
const PREDICT_FNS: [&str; 4] = ["predict", "predict_into", "predict_lcb", "lcb_into"];

/// Store-like method names that count as sinks on result-ish receivers.
const STORE_METHODS: [&str; 4] = ["push", "insert", "extend", "store"];

/// Receiver roots (lowercased, substring match) that hold results.
const RESULT_RECEIVERS: [&str; 7] = [
    "front",
    "pareto",
    "cache",
    "report",
    "archive",
    "population",
    "pop",
];

/// Sinks that feed a model's own training set.
const TRAIN_METHODS: [&str; 2] = ["observe", "seed_training"];

fn is_predict_call(name: &str) -> bool {
    PREDICT_FNS
        .iter()
        .any(|p| name == *p || name.ends_with(&format!("::{p}")))
}

fn resultish(recv: &str) -> bool {
    let lower = recv.to_ascii_lowercase();
    RESULT_RECEIVERS.iter().any(|r| lower.contains(r))
}

/// Closure of identifiers carrying a predicted value: seeded by defs
/// initialized from a prediction call, propagated through defs whose
/// initializer mentions an already-tainted name.
fn tainted_idents(f: &FnAnalysis) -> BTreeSet<&str> {
    // A prediction may be post-processed in the same initializer
    // (`screen.predict_lcb(x).unwrap()` trails in `unwrap`), so any
    // mention of a prediction call in the initializer taints the
    // binding, not just the trailing call.
    let mut tainted: BTreeSet<&str> = f
        .defs
        .iter()
        .filter(|d| {
            is_predict_call(&d.init_call) || d.init_idents.iter().any(|i| is_predict_call(i))
        })
        .map(|d| d.name.as_str())
        .collect();
    loop {
        let before = tainted.len();
        for d in &f.defs {
            if !tainted.contains(d.name.as_str())
                && d.init_idents.iter().any(|i| tainted.contains(i.as_str()))
            {
                tainted.insert(d.name.as_str());
            }
        }
        if tainted.len() == before {
            break;
        }
    }
    tainted
}

/// What kind of sink a call is, if any.
fn sink_kind(name: &str, kind: CallKind, recv_root: &str) -> Option<&'static str> {
    let lower = name.to_ascii_lowercase();
    if kind == CallKind::Method && TRAIN_METHODS.contains(&lower.as_str()) {
        return Some("the surrogate training set");
    }
    if kind == CallKind::Method && STORE_METHODS.contains(&lower.as_str()) && resultish(recv_root) {
        return Some("a result container");
    }
    if lower.contains("report") || lower.contains("write") {
        return Some("a report/artifact writer");
    }
    None
}

/// Runs the lint over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.kind != FileKind::Lib {
        return;
    }
    for f in &file.fns {
        if file.in_test_region(f.span.line) {
            continue;
        }
        let tainted = tainted_idents(f);
        if tainted.is_empty() {
            continue;
        }
        for c in &f.calls {
            if file.in_test_region(c.line) {
                continue;
            }
            let Some(sink) = sink_kind(&c.name, c.kind, &c.recv_root) else {
                continue;
            };
            if let Some(arg) = c.arg_idents.iter().find(|a| tainted.contains(a.as_str())) {
                out.push(Finding {
                    lint: NAME,
                    severity: Severity::Error,
                    file: file.rel.clone(),
                    line: c.line,
                    col: c.col,
                    message: format!(
                        "surrogate-predicted value `{arg}` flows into {sink} via `{}` in \
                         `{}`; predictions may only prune evaluations — store the \
                         true-evaluated objectives instead (prune-never-propagate)",
                        c.name, f.name
                    ),
                    suppressed: false,
                    suggestion: None,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_prediction_pushed_into_front() {
        let src = "\
pub fn f(screen: &SurrogateScreen, x: &[f64], front: &mut Front) {
    let predicted = screen.predict_lcb(x).unwrap();
    front.push(predicted);
}
";
        let hits = run(src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("predicted"));
        assert!(hits[0].message.contains("prune-never-propagate"));
    }

    #[test]
    fn flags_chained_flow_into_cache_insert() {
        let src = "\
pub fn f(model: &ResponseSurface, cache: &mut Map, key: u64, x: &[f64]) {
    let mu = model.predict(x);
    let value = mu.clone();
    cache.insert(key, value);
}
";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn flags_prediction_fed_back_into_training() {
        let src = "\
pub fn f(screen: &mut SurrogateScreen, x: &[f64]) {
    let guess = screen.predict_lcb(x).unwrap();
    screen.observe(x, &guess);
}
";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn flags_prediction_in_report_writer() {
        let src = "\
pub fn f(model: &ResponseSurface, x: &[f64]) -> String {
    let nf = model.predict(x);
    write_report(&nf)
}
";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn quiet_when_predictions_only_compare() {
        let src = "\
pub fn f(screen: &mut SurrogateScreen, x: &[f64], incumbent: &[f64]) -> bool {
    let lcb = screen.predict_lcb(x).unwrap();
    dominates(incumbent, &lcb)
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn quiet_for_true_values_and_tests() {
        let src = "\
pub fn f(front: &mut Front, objs: Vec<f64>) {
    front.push(objs);
}
";
        assert!(run(src).is_empty());
        let test = "\
#[cfg(test)]
mod tests {
    fn t(screen: &SurrogateScreen, front: &mut Front, x: &[f64]) {
        let p = screen.predict_lcb(x).unwrap();
        front.push(p);
    }
}
";
        assert!(run(test).is_empty());
    }

    #[test]
    fn quiet_for_unrelated_push_on_plain_vec() {
        let src = "\
pub fn f(model: &ResponseSurface, x: &[f64]) -> Vec<f64> {
    let mu = model.predict(x);
    let mut scratch = Vec::new();
    scratch.push(1.0);
    mu
}
";
        assert!(run(src).is_empty());
    }
}
