//! `swallowed-solve-error`: solver results discarded without looking at
//! the error. The fault-tolerance layer (`rfkit-robust`) spends real
//! effort attaching provenance to every failure — which ladder stage,
//! which iteration, what residual — and a `let _ = solve_dc(...)` or
//! `circuit.solve(...).ok();` throws all of it away silently. Library
//! code must match on the result (or propagate it with `?`); deliberate
//! discards belong behind a `// rfkit-allow(swallowed-solve-error)` with
//! a reason.

use crate::report::{Finding, Severity};
use crate::source::{FileKind, SourceFile};
use crate::tokenizer::Tok;

/// Lint name.
pub const NAME: &str = "swallowed-solve-error";
/// One-line description.
pub const DESCRIPTION: &str =
    "solver Result discarded via `let _ = ...` or `.ok();` in library code";

/// Identifiers whose call results carry a solver error taxonomy worth
/// keeping. Matched exactly against call names inside the discarding
/// statement.
const SOLVER_IDENTS: [&str; 8] = [
    "solve",
    "solve_dc",
    "solve_dc_robust",
    "solve_into",
    "lu_into",
    "evaluate_robust",
    "evaluate_with",
    "yield_analysis_robust",
];

fn names_a_solver(toks: &[&Tok]) -> bool {
    toks.iter()
        .any(|t| SOLVER_IDENTS.iter().any(|s| t.is_ident(s)))
}

/// Runs the lint over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.kind != FileKind::Lib {
        return;
    }
    let code: Vec<&Tok> = file.toks.iter().filter(|t| !t.is_comment()).collect();
    for (i, t) in code.iter().enumerate() {
        if file.in_test_region(t.line) {
            continue;
        }
        // `let _ = <expr containing a solver call> ;` — the wildcard
        // binding is the classic "I know it can fail, don't care" shape.
        if t.is_ident("let")
            && code.get(i + 1).is_some_and(|n| n.is_ident("_"))
            && code.get(i + 2).is_some_and(|n| n.is_punct("="))
        {
            let stmt_end = code[i + 3..]
                .iter()
                .position(|n| n.is_punct(";"))
                .map(|p| i + 3 + p)
                .unwrap_or(code.len());
            if names_a_solver(&code[i + 3..stmt_end]) {
                out.push(Finding {
                    lint: NAME,
                    severity: Severity::Warning,
                    file: file.rel.clone(),
                    line: t.line,
                    col: t.col,
                    message: "`let _ = ...` discards a solver result and its error \
                              provenance (stage, iterations, residual); match on the \
                              error or propagate it"
                        .to_string(),
                    suppressed: false,
                    suggestion: None,
                });
            }
        }
        // `<solver call chain>.ok();` — converting to Option and dropping
        // it on the floor swallows the error the same way.
        if t.is_punct(".")
            && code.get(i + 1).is_some_and(|n| n.is_ident("ok"))
            && code.get(i + 2).is_some_and(|n| n.is_punct("("))
            && code.get(i + 3).is_some_and(|n| n.is_punct(")"))
            && code.get(i + 4).is_some_and(|n| n.is_punct(";"))
        {
            // Look back to the start of the statement for a solver name.
            let stmt_start = code[..i]
                .iter()
                .rposition(|n| n.is_punct(";") || n.is_punct("{") || n.is_punct("}"))
                .map(|p| p + 1)
                .unwrap_or(0);
            if names_a_solver(&code[stmt_start..i]) {
                out.push(Finding {
                    lint: NAME,
                    severity: Severity::Warning,
                    file: file.rel.clone(),
                    line: t.line,
                    col: t.col,
                    message: "`.ok();` on a solver result swallows the error taxonomy; \
                              match on the error or propagate it"
                        .to_string(),
                    suppressed: false,
                    suggestion: None,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::parse(rel, src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn wildcard_let_of_solver_result_is_flagged() {
        let src = "\
pub fn f(c: &Circuit) {
    let _ = solve_dc(c);
    let _ = c.solve_dc_robust(&policy);
}
";
        let hits = run("crates/x/src/lib.rs", src);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|h| h.severity == Severity::Warning));
        assert_eq!(hits[0].line, 2);
        assert_eq!(hits[1].line, 3);
    }

    #[test]
    fn ok_discard_of_solver_result_is_flagged() {
        let src = "\
pub fn f(m: &Matrix, rhs: &[f64]) {
    m.solve(rhs).ok();
}
";
        let hits = run("crates/x/src/lib.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn quiet_on_handled_results_and_unrelated_discards() {
        let src = "\
pub fn f(c: &Circuit) -> Result<(), DcError> {
    let sol = solve_dc(c)?;
    let _ = unrelated_cleanup();
    match solve_dc(c) {
        Ok(_) => {}
        Err(e) => log(e),
    }
    drop(sol);
    Ok(())
}
";
        assert!(run("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn quiet_in_tests_and_bins() {
        let src = "fn main() { let _ = solve_dc(&c); solve_dc(&c).ok(); }";
        assert!(run("crates/x/src/bin/tool.rs", src).is_empty());
        assert!(run("crates/x/tests/t.rs", src).is_empty());
        let in_test_mod = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let _ = solve_dc(&c); }
}
";
        assert!(run("crates/x/src/lib.rs", in_test_mod).is_empty());
    }

    #[test]
    fn ok_with_a_consumer_is_not_a_discard() {
        // `.ok()` feeding into a larger expression keeps the value.
        let src = "pub fn f(c: &Circuit) -> Option<DcSolution> { solve_dc(c).ok() }";
        assert!(run("crates/x/src/lib.rs", src).is_empty());
        let chained =
            "pub fn g(c: &Circuit) -> f64 { solve_dc(c).ok().map(|s| s.x[0]).unwrap_or(0.0) }";
        assert!(run("crates/x/src/lib.rs", chained).is_empty());
    }
}
