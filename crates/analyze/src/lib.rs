//! rfkit-analyze: a zero-dependency static-analysis engine for the
//! rfkit workspace.
//!
//! The workspace's numeric guarantees — NaN-safe ordering, bit-for-bit
//! reproducibility across thread counts, `unsafe` confined to
//! `rfkit-par` — are invariants a compiler cannot check. This crate
//! enforces them mechanically: a hand-rolled Rust lexer (no `syn`; the
//! zero-external-crate rule covers tooling too) feeds token-pattern
//! lints that walk every workspace source file and report findings as
//! `severity[lint] file:line:col: message` diagnostics plus a JSON
//! report under `results/ANALYZE.json`.
//!
//! Individual findings can be suppressed with a `// rfkit-allow(<lint>)`
//! comment on the offending line or the line directly above. CI runs
//! `cargo run -p rfkit-analyze -- --deny warnings`, so every suppression
//! is a reviewable artifact in the diff rather than a silent opt-out.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod contract;
pub mod dataflow;
pub mod lints;
pub mod parser;
pub mod report;
pub mod source;
pub mod tokenizer;

use report::Finding;
use source::SourceFile;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Runs every lint over one in-memory source file. `rel` is the
/// workspace-relative path, which determines the crate name and file
/// role (library, binary, test, example).
pub fn analyze_source(rel: &str, src: &str) -> Vec<Finding> {
    lint_file(&SourceFile::parse(rel, src))
}

/// Runs every per-file lint over an already-parsed file and applies
/// suppressions. The cross-artifact contract pass is separate — it
/// needs the whole tree (see [`analyze_tree`] / [`contract::check`]).
pub fn lint_file(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for lint in lints::all() {
        (lint.check)(file, &mut out);
    }
    for f in &mut out {
        f.suppressed = file.is_allowed(f.lint, f.line);
    }
    out.sort_by(|a, b| (a.line, a.col, a.lint).cmp(&(b.line, b.col, b.lint)));
    out
}

/// Walks the workspace rooted at `root` and analyzes every `.rs` file
/// under `src/`, `tests/`, and `examples/` of the root crate and each
/// `crates/*` member. Returns the findings plus the number of files
/// scanned. File order is sorted, so output is deterministic.
pub fn analyze_tree(root: &Path) -> io::Result<(Vec<Finding>, usize)> {
    let (findings, files) = analyze_tree_files(root)?;
    Ok((findings, files.len()))
}

/// Like [`analyze_tree`], but also returns the parsed [`SourceFile`]s
/// so callers (the CLI's `--dump-obs-names`, tests) can reuse the ASTs
/// without re-walking the tree. Per-file lints run first; the
/// cross-artifact contract pass appends its findings at the end, with
/// `rfkit-allow` suppressions applied for findings that land in parsed
/// source files.
pub fn analyze_tree_files(root: &Path) -> io::Result<(Vec<Finding>, Vec<SourceFile>)> {
    let paths = collect_rs_files(root)?;
    let mut files = Vec::with_capacity(paths.len());
    let mut findings = Vec::new();
    for path in &paths {
        let src = fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let file = SourceFile::parse(&rel, &src);
        findings.extend(lint_file(&file));
        files.push(file);
    }
    let mut drift = contract::check(root, &files);
    for f in &mut drift {
        if let Some(file) = files.iter().find(|s| s.rel == f.file) {
            f.suppressed = file.is_allowed(f.lint, f.line);
        }
    }
    findings.extend(drift);
    Ok((findings, files))
}

fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for top in ["src", "tests", "examples"] {
        walk(&root.join(top), &mut out)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members = Vec::new();
        for entry in fs::read_dir(&crates)? {
            let p = entry?.path();
            if p.is_dir() {
                members.push(p);
            }
        }
        members.sort();
        for m in &members {
            for sub in ["src", "tests", "examples"] {
                walk(&m.join(sub), &mut out)?;
            }
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries = Vec::new();
    for entry in fs::read_dir(dir)? {
        entries.push(entry?.path());
    }
    entries.sort();
    for p in entries {
        if p.is_dir() {
            walk(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use report::Severity;

    #[test]
    fn suppression_marks_but_keeps_findings() {
        let src = "\
pub fn f(x: f64) -> bool {
    x == 0.0 // rfkit-allow(float-eq)
}
pub fn g(x: f64) -> bool {
    x == 0.0
}
";
        let findings = analyze_source("crates/x/src/lib.rs", src);
        let float_eq: Vec<_> = findings.iter().filter(|f| f.lint == "float-eq").collect();
        assert_eq!(float_eq.len(), 2);
        assert!(float_eq[0].suppressed);
        assert!(!float_eq[1].suppressed);
    }

    #[test]
    fn suppression_only_covers_its_own_lint() {
        let src = "pub fn f(x: f64) -> bool { x == 0.0 } // rfkit-allow(todo-markers)\n";
        let findings = analyze_source("crates/x/src/lib.rs", src);
        assert!(findings
            .iter()
            .any(|f| f.lint == "float-eq" && !f.suppressed));
    }

    #[test]
    fn findings_are_sorted_by_position() {
        let src = "\
pub fn f(x: f64) -> bool { x == 2.0 }
pub fn g(o: Option<u32>) -> u32 { o.unwrap() }
";
        let findings = analyze_source("crates/x/src/lib.rs", src);
        assert!(findings.len() >= 2);
        assert!(findings.windows(2).all(|w| w[0].line <= w[1].line));
    }

    #[test]
    fn all_lints_have_distinct_names() {
        let names: Vec<_> = lints::all().iter().map(|l| l.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }

    #[test]
    fn severity_threshold_semantics() {
        // `--deny warnings` must also deny errors.
        assert!(Severity::Error >= Severity::Warning);
        assert!(Severity::Warning >= Severity::Warning);
        assert!(Severity::Info < Severity::Warning);
    }
}
