//! Cross-artifact contract checker: the `counter-name-drift` pass.
//!
//! The observability layer's names are load-bearing in four places at
//! once: the code that emits them (`rfkit_obs::Counter::new("…")`,
//! `span("…")`, …), the CI assertions that gate on them
//! (`rfkit-trace --expect NAME` in `ci.sh`), the recorded artifacts
//! under `results/` (`TRACE_*.jsonl` event streams and `PROFILE_*.json`
//! aggregate profiles), and the DESIGN.md telemetry name registry
//! that documents them. Nothing ties these together — a renamed
//! counter silently turns a `--expect` into a vacuous check and a
//! dashboard into a flat line. This pass extracts the emitted-name set
//! from the AST (string-literal first arguments of obs instrument
//! constructors and emitters) and diffs it against all three
//! artifacts; unknown, orphaned, or misspelled names are errors.
//!
//! The pass runs only when the workspace has a `ci.sh` (the fake
//! workspaces built by engine tests don't, and have no contract to
//! check).

use crate::dataflow::CallKind;
use crate::report::{Finding, Severity};
use crate::source::{FileKind, SourceFile};
use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

/// Lint name (shares the suppression / registry namespace).
pub const NAME: &str = "counter-name-drift";
/// One-line description.
pub const DESCRIPTION: &str =
    "obs name out of sync between code, ci.sh --expect, recorded traces, and DESIGN.md (error)";

/// One extracted emission site.
#[derive(Debug, Clone)]
pub struct Emission {
    /// Instrument name (the string literal).
    pub name: String,
    /// Emitting file (workspace-relative).
    pub file: String,
    /// 1-based line of the call.
    pub line: u32,
    /// `counter`, `hist`, `span`, or `event`.
    pub kind: &'static str,
}

/// Extracts every obs instrument name emitted by the workspace code.
/// Only string-literal names count (the in-tree convention); test
/// files, test regions, and the `analyze` crate (whose sources are
/// full of fixture name literals) are excluded. The `obs` crate itself
/// IS included: it emits real telemetry about the telemetry
/// (`obs.selftime.clamped`, `profile.flush`) that must stay in the
/// registry like any other name.
pub fn emitted_names(files: &[SourceFile]) -> Vec<Emission> {
    let mut out = Vec::new();
    for file in files {
        if file.kind == FileKind::Test || file.crate_name == "analyze" {
            continue;
        }
        for f in &file.fns {
            for c in &f.calls {
                if c.kind != CallKind::Call {
                    continue;
                }
                let kind = if c.name.ends_with("Counter::new") {
                    "counter"
                } else if c.name.ends_with("Hist::new") {
                    "hist"
                } else if c.name == "span" || c.name.ends_with("::span") {
                    "span"
                } else if c.name == "event" || c.name.ends_with("::event") {
                    "event"
                } else {
                    continue;
                };
                if file.in_test_region(c.line) {
                    continue;
                }
                if let Some(Some(name)) = c.str_args.first() {
                    out.push(Emission {
                        name: name.clone(),
                        file: file.rel.clone(),
                        line: c.line,
                        kind,
                    });
                }
            }
        }
        // `static OBS_X: Counter = Counter::new("…")` sits in item
        // position, outside any fn body — extract from static
        // initializers too.
        crate::parser::for_each_static(&file.ast.items, &mut |item| {
            let Some(init) = &item.init else { return };
            crate::dataflow::visit(init, &mut |e| {
                if let crate::parser::ExprKind::Call { callee, args } = &e.kind {
                    let path = crate::parser::callee_path(callee);
                    let kind = if path.ends_with("Counter::new") {
                        "counter"
                    } else if path.ends_with("Hist::new") {
                        "hist"
                    } else {
                        return;
                    };
                    if let Some(first) = args.first() {
                        if let crate::parser::ExprKind::Lit(crate::tokenizer::TokKind::Str, t) =
                            &first.kind
                        {
                            out.push(Emission {
                                name: crate::dataflow::unquote(t),
                                file: file.rel.clone(),
                                line: e.span.line,
                                kind,
                            });
                        }
                    }
                }
            });
        });
    }
    out
}

/// `--expect NAME` / `--expect-max NAME:N` / `--expect-min NAME:N`
/// assertions in ci.sh text, with 1-based line numbers.
pub fn ci_expectations(text: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        // Shell comments (including commented-out assertions and prose
        // that mentions the flags) are not active expectations.
        if line.trim_start().starts_with('#') {
            continue;
        }
        let mut rest = line;
        while let Some(pos) = rest.find("--expect") {
            rest = &rest[pos + "--expect".len()..];
            // `--expect-max NAME:N` / `--expect-min NAME:N` → strip the
            // bound suffix so only the name remains.
            rest = rest
                .strip_prefix("-max")
                .or_else(|| rest.strip_prefix("-min"))
                .unwrap_or(rest);
            let arg: String = rest
                .trim_start()
                .chars()
                .take_while(|c| !c.is_whitespace())
                .collect();
            if arg.is_empty() || arg.starts_with("--") {
                continue;
            }
            // `NAME:N` bound syntax → the name is before the colon.
            let name = arg.split(':').next().unwrap_or(&arg);
            if !name.is_empty() {
                out.push((name.to_string(), (i + 1) as u32));
            }
        }
    }
    out
}

/// Names documented in the DESIGN.md "Telemetry name registry" table:
/// first backticked token of each table row after the registry
/// heading, until the next heading.
pub fn registry_names(design_md: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut in_section = false;
    for (i, line) in design_md.lines().enumerate() {
        if line.starts_with('#') {
            in_section = line
                .to_ascii_lowercase()
                .contains("telemetry name registry");
            continue;
        }
        if !in_section || !line.trim_start().starts_with('|') {
            continue;
        }
        // `| `name` | kind | … |` — take the first backticked token.
        let mut parts = line.split('`');
        if parts.next().is_some() {
            if let Some(name) = parts.next() {
                let name = name.trim();
                if !name.is_empty() && !name.contains(' ') && name.contains('.') {
                    out.push((name.to_string(), (i + 1) as u32));
                }
            }
        }
    }
    out
}

fn finding(file: &str, line: u32, message: String) -> Finding {
    Finding {
        lint: NAME,
        severity: Severity::Error,
        file: file.to_string(),
        line,
        col: 1,
        message,
        suppressed: false,
        suggestion: None,
    }
}

/// Runs the full cross-artifact check. Returns no findings when the
/// workspace has no `ci.sh` (nothing to contract against).
pub fn check(root: &Path, files: &[SourceFile]) -> Vec<Finding> {
    let ci_path = root.join("ci.sh");
    let Ok(ci_text) = fs::read_to_string(&ci_path) else {
        return Vec::new();
    };
    let emissions = emitted_names(files);
    let emitted: BTreeSet<&str> = emissions.iter().map(|e| e.name.as_str()).collect();
    let mut out = Vec::new();

    // 1. Every ci.sh --expect name must be emitted somewhere.
    for (name, line) in ci_expectations(&ci_text) {
        if !emitted.contains(name.as_str()) {
            out.push(finding(
                "ci.sh",
                line,
                format!(
                    "ci.sh expects obs name `{name}` but no code emits it; the assertion \
                     is vacuous (renamed or removed instrument?)"
                ),
            ));
        }
    }

    // 2. Every recorded trace/profile name must still be emitted by the
    //    code. Traces are per-event JSONL; profiles are the aggregate
    //    documents written by RFKIT_TRACE_MODE=agg — both carry names.
    let results = root.join("results");
    if let Ok(entries) = fs::read_dir(&results) {
        let mut recorded: Vec<_> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name().and_then(|n| n.to_str()).is_some_and(|n| {
                    (n.starts_with("TRACE_") && n.ends_with(".jsonl"))
                        || (n.starts_with("PROFILE_") && n.ends_with(".json"))
                })
            })
            .collect();
        recorded.sort();
        for artifact in recorded {
            let is_profile = artifact
                .extension()
                .is_some_and(|e| e.to_str() == Some("json"));
            let names = if is_profile {
                rfkit_obs::registry::profile_names(&artifact)
            } else {
                rfkit_obs::registry::trace_names(&artifact)
            };
            let Ok(names) = names else { continue };
            let rel = format!(
                "results/{}",
                artifact.file_name().unwrap_or_default().to_string_lossy()
            );
            let what = if is_profile { "profile" } else { "trace" };
            for name in names {
                if !emitted.contains(name.as_str()) {
                    out.push(finding(
                        &rel,
                        1,
                        format!(
                            "recorded {what} names `{name}` but no code emits it; the {what} \
                             is stale or the instrument was renamed — regenerate via ci.sh"
                        ),
                    ));
                }
            }
        }
    }

    // 3/4. DESIGN.md registry ⊇ emitted and emitted ⊇ registry.
    if let Ok(design) = fs::read_to_string(root.join("DESIGN.md")) {
        let registry = registry_names(&design);
        // A registry that parses to nothing while the code emits names
        // means the table (or its heading) broke — the registry half of
        // the contract would silently go vacuous. Fail loudly instead.
        if registry.is_empty() && !emissions.is_empty() {
            out.push(finding(
                "DESIGN.md",
                1,
                "no parseable telemetry name registry found (need a `### Telemetry name \
                 registry` heading followed by `| `name` | … |` table rows); the \
                 registry half of the name contract is vacuous"
                    .to_string(),
            ));
        }
        let documented: BTreeSet<&str> = registry.iter().map(|(n, _)| n.as_str()).collect();
        for (name, line) in &registry {
            if !emitted.contains(name.as_str()) {
                out.push(finding(
                    "DESIGN.md",
                    *line,
                    format!(
                        "telemetry registry documents `{name}` but no code emits it; \
                         remove the row or restore the instrument"
                    ),
                ));
            }
        }
        if !documented.is_empty() {
            let mut seen = BTreeSet::new();
            for e in &emissions {
                if !documented.contains(e.name.as_str()) && seen.insert(e.name.as_str()) {
                    out.push(finding(
                        &e.file,
                        e.line,
                        format!(
                            "obs name `{}` is emitted here but missing from the DESIGN.md \
                             telemetry name registry; document it (name, kind, what it \
                             measures)",
                            e.name
                        ),
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_emissions_from_fns_and_statics() {
        let src = "\
static OBS_HITS: Counter = Counter::new(\"plan.cache.hit\");
static OBS_ITERS: rfkit_obs::Hist = rfkit_obs::Hist::new(\"circuit.dc.iters\");
pub fn run() {
    let _s = rfkit_obs::span(\"design.total\");
    rfkit_obs::event(\"opt.de.gen\", &[(\"gen\", 1.0)]);
}
";
        let f = SourceFile::parse("crates/core/src/lib.rs", src);
        let em = emitted_names(&[f]);
        let names: Vec<&str> = em.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"plan.cache.hit"), "{names:?}");
        assert!(names.contains(&"circuit.dc.iters"));
        assert!(names.contains(&"design.total"));
        assert!(names.contains(&"opt.de.gen"));
        let span = em.iter().find(|e| e.name == "design.total").unwrap();
        assert_eq!(span.kind, "span");
        assert_eq!(span.line, 4);
    }

    #[test]
    fn excludes_tests_and_tooling_crates() {
        let src = "pub fn f() { rfkit_obs::span(\"x.y\"); }\n";
        // The analyzer's own sources are fixture-heavy and excluded; the
        // obs crate emits real self-telemetry and is NOT excluded.
        assert!(emitted_names(&[SourceFile::parse("crates/analyze/src/lint.rs", src)]).is_empty());
        assert_eq!(
            emitted_names(&[SourceFile::parse("crates/obs/src/lib.rs", src)]).len(),
            1
        );
        assert!(emitted_names(&[SourceFile::parse("crates/core/tests/t.rs", src)]).is_empty());
        let in_test_mod = "\
#[cfg(test)]
mod tests {
    fn t() { rfkit_obs::span(\"x.y\"); }
}
";
        assert!(
            emitted_names(&[SourceFile::parse("crates/core/src/lib.rs", in_test_mod)]).is_empty()
        );
    }

    #[test]
    fn parses_ci_expectations() {
        let ci = "\
# comments don't count: --expect ghost.name and --expect-min floors
cargo run -p rfkit-obs --bin rfkit-trace -- --json \\
  --expect dc.retry.attempts --expect dc.fallback.stage \\
  --expect-max circuit.ac.sweep.refactors:8 \\
  --expect-min plan.cache.hit:40 \\
  results/TRACE_faults.jsonl
";
        let exp = ci_expectations(ci);
        let names: Vec<&str> = exp.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "dc.retry.attempts",
                "dc.fallback.stage",
                "circuit.ac.sweep.refactors",
                "plan.cache.hit"
            ]
        );
        assert_eq!(exp[0].1, 3);
    }

    #[test]
    fn parses_registry_table_rows() {
        let md = "\
## Observability

### Telemetry name registry

| name | kind | measures |
|---|---|---|
| `plan.cache.hit` | counter | shared plan cache hits |
| `design.total` | span | whole design run |

### Next section

| `not.this.one` | counter | outside the registry |
";
        let names = registry_names(md);
        let got: Vec<&str> = names.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(got, ["plan.cache.hit", "design.total"]);
    }
}
