//! Baseline diffing: compare a fresh run against a committed
//! `results/ANALYZE.json` so CI fails only on NEW findings.
//!
//! The tree-wide `--deny warnings` gate keeps the tree at zero, but
//! during a large refactor it is useful to land intermediate states
//! where pre-existing findings are tolerated while anything the change
//! *introduces* still fails. `rfkit-analyze --baseline results/ANALYZE.json`
//! implements that: a finding is NEW when its `(lint, file, message)`
//! triple does not appear in the baseline. Line numbers are
//! deliberately excluded from the key — inserting a line above an old
//! finding must not re-flag it as new.

use crate::report::Finding;
use std::collections::BTreeMap;

/// A committed baseline: multiset of `(lint, file, message)` keys.
#[derive(Debug, Default)]
pub struct Baseline {
    keys: BTreeMap<(String, String, String), usize>,
    /// Number of findings in the baseline (suppressed included).
    pub total: usize,
}

fn key_of(f: &Finding) -> (String, String, String) {
    (f.lint.to_string(), f.file.clone(), f.message.clone())
}

impl Baseline {
    /// Parses a baseline from ANALYZE.json text. Errors on malformed
    /// JSON — a corrupt baseline must not silently admit new findings.
    pub fn parse(json_text: &str) -> Result<Baseline, String> {
        let doc = rfkit_obs::json::parse(json_text)?;
        let findings = doc
            .get("findings")
            .and_then(|f| f.as_arr())
            .ok_or("baseline has no `findings` array")?;
        let mut b = Baseline::default();
        for f in findings {
            let get = |k: &str| {
                f.get(k)
                    .and_then(|v| v.as_str())
                    .map(str::to_string)
                    .ok_or_else(|| format!("baseline finding missing `{k}`"))
            };
            let key = (get("lint")?, get("file")?, get("message")?);
            *b.keys.entry(key).or_insert(0) += 1;
            b.total += 1;
        }
        Ok(b)
    }

    /// Splits fresh findings into (new, preexisting) against this
    /// baseline. Duplicate keys are matched up to the baseline's count:
    /// a third occurrence of a twice-baselined finding is new.
    pub fn diff<'a>(&self, fresh: &'a [Finding]) -> (Vec<&'a Finding>, Vec<&'a Finding>) {
        let mut remaining = self.keys.clone();
        let mut new = Vec::new();
        let mut old = Vec::new();
        for f in fresh {
            match remaining.get_mut(&key_of(f)) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    old.push(f);
                }
                _ => new.push(f),
            }
        }
        (new, old)
    }

    /// Number of baseline findings absent from the fresh run (fixed).
    pub fn fixed_count(&self, fresh: &[Finding]) -> usize {
        let mut remaining = self.keys.clone();
        for f in fresh {
            if let Some(n) = remaining.get_mut(&key_of(f)) {
                *n = n.saturating_sub(1);
            }
        }
        remaining.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Severity;

    fn finding(lint: &'static str, file: &str, line: u32, message: &str) -> Finding {
        Finding {
            lint,
            severity: Severity::Warning,
            file: file.to_string(),
            line,
            col: 1,
            message: message.to_string(),
            suppressed: false,
            suggestion: None,
        }
    }

    const BASELINE_JSON: &str = r#"{
  "files_scanned": 2,
  "suppressed": 0,
  "counts": {"error": 0, "warning": 2, "info": 0},
  "findings": [
    {"lint": "float-eq", "severity": "warning", "file": "a.rs", "line": 3, "col": 5, "suppressed": false, "message": "m1"},
    {"lint": "float-eq", "severity": "warning", "file": "a.rs", "line": 9, "col": 5, "suppressed": false, "message": "m1"},
    {"lint": "unwrap-in-lib", "severity": "warning", "file": "b.rs", "line": 1, "col": 1, "suppressed": false, "message": "m2"}
  ]
}"#;

    #[test]
    fn line_shift_is_not_new_but_third_duplicate_is() {
        let b = Baseline::parse(BASELINE_JSON).unwrap();
        assert_eq!(b.total, 3);
        let fresh = vec![
            finding("float-eq", "a.rs", 4, "m1"),  // shifted: old
            finding("float-eq", "a.rs", 10, "m1"), // shifted: old
            finding("float-eq", "a.rs", 20, "m1"), // third copy: NEW
            finding("float-eq", "c.rs", 1, "m1"),  // new file: NEW
        ];
        let (new, old) = b.diff(&fresh);
        assert_eq!(old.len(), 2);
        assert_eq!(new.len(), 2);
        assert_eq!(new[0].line, 20);
        assert_eq!(new[1].file, "c.rs");
        // b.rs's m2 disappeared from fresh → fixed.
        assert_eq!(b.fixed_count(&fresh), 1);
    }

    #[test]
    fn rejects_corrupt_baseline() {
        assert!(Baseline::parse("{not json").is_err());
        assert!(Baseline::parse("{\"findings\": 3}").is_err());
        assert!(Baseline::parse("{}").is_err());
    }
}
