//! Findings, severities, and the hand-rolled JSON report writer.

use std::fmt;

/// How bad a finding is. Ordering matters: `--deny warnings` denies
/// anything at `Warning` or above.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: documents a pattern worth knowing about, never fails CI.
    Info,
    /// Should be fixed or explicitly suppressed; fails `--deny warnings`.
    Warning,
    /// Always a defect; fails every deny level.
    Error,
}

impl Severity {
    /// Lower-case name used in output and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic produced by a lint.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Lint name, e.g. `float-eq`.
    pub lint: &'static str,
    /// Severity assigned by the lint.
    pub severity: Severity,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation with a suggested fix.
    pub message: String,
    /// True when a `rfkit-allow(<lint>)` comment covers this line.
    pub suppressed: bool,
    /// Machine-applicable replacement text, when the lint has one
    /// (printed by `--fix-dry-run`).
    pub suggestion: Option<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}:{}:{}: {}",
            self.severity, self.lint, self.file, self.line, self.col, self.message
        )
    }
}

/// Escapes a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the full report as pretty-printed JSON. Findings are emitted
/// in the (deterministic) order they were produced; the summary counts
/// only non-suppressed findings.
pub fn to_json(findings: &[Finding], files_scanned: usize) -> String {
    let count = |sev: Severity| {
        findings
            .iter()
            .filter(|f| !f.suppressed && f.severity == sev)
            .count()
    };
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!(
        "  \"suppressed\": {},\n",
        findings.iter().filter(|f| f.suppressed).count()
    ));
    out.push_str("  \"counts\": {\n");
    out.push_str(&format!("    \"error\": {},\n", count(Severity::Error)));
    out.push_str(&format!("    \"warning\": {},\n", count(Severity::Warning)));
    out.push_str(&format!("    \"info\": {}\n", count(Severity::Info)));
    out.push_str("  },\n");
    out.push_str("  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let comma = if i + 1 == findings.len() { "" } else { "," };
        let suggestion = match &f.suggestion {
            Some(s) => format!(", \"suggestion\": \"{}\"", json_escape(s)),
            None => String::new(),
        };
        out.push_str(&format!(
            "    {{\"lint\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \
             \"line\": {}, \"col\": {}, \"suppressed\": {}, \"message\": \"{}\"{}}}{}\n",
            f.lint,
            f.severity,
            json_escape(&f.file),
            f.line,
            f.col,
            f.suppressed,
            json_escape(&f.message),
            suggestion,
            comma
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering_supports_deny_threshold() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn json_escapes_and_counts() {
        let findings = vec![
            Finding {
                lint: "float-eq",
                severity: Severity::Warning,
                file: "crates/x/src/lib.rs".into(),
                line: 3,
                col: 9,
                message: "uses \"==\"\twith\nfloats".into(),
                suppressed: false,
                suggestion: Some("a.total_cmp(&b)".into()),
            },
            Finding {
                lint: "todo-markers",
                severity: Severity::Warning,
                file: "src/lib.rs".into(),
                line: 1,
                col: 1,
                message: "marker".into(),
                suppressed: true,
                suggestion: None,
            },
        ];
        let j = to_json(&findings, 7);
        assert!(j.contains("\"files_scanned\": 7"));
        assert!(j.contains("\"warning\": 1"), "suppressed not counted: {j}");
        assert!(j.contains("\"suppressed\": 1,"));
        assert!(j.contains("\\\"==\\\"\\twith\\nfloats"));
        assert!(j.contains("\"suggestion\": \"a.total_cmp(&b)\""));
    }
}
