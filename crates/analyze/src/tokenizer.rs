//! A hand-rolled Rust lexer, sufficient for token-pattern lints.
//!
//! No `syn`, no `proc-macro2`: the workspace's zero-external-crate
//! invariant applies to its tooling too. The lexer understands comments
//! (kept in the stream — suppressions, SAFETY audits and marker lints
//! read them), string/char/raw-string literals, lifetimes, numeric
//! literals with float classification, and multi-character operators.
//! It does not build an AST; every lint in this crate is a pattern over
//! the token stream, which is exactly as deep as file:line diagnostics
//! need.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `HashMap`, …).
    Ident,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Integer literal, including hex/octal/binary forms.
    Int,
    /// Float literal (`1.0`, `1e-3`, `2f64`).
    Float,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// `// …` comment (doc comments included).
    LineComment,
    /// `/* … */` comment, possibly spanning lines.
    BlockComment,
    /// Operator or delimiter, stored verbatim (`==`, `::`, `{`, …).
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Verbatim source text (comments include their markers).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Tok {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for a punct token with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }

    /// True for either comment kind.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Multi-character operators, longest first so maximal munch works.
const OPS: [&str; 25] = [
    "..=", "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "->", "=>", "::", "..", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "#!", "!",
];

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one character, maintaining line/col bookkeeping.
    fn bump(&mut self, out: &mut String) {
        let c = self.chars[self.pos];
        out.push(c);
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
    }

    fn bump_while(&mut self, out: &mut String, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek(0) {
            if pred(c) {
                self.bump(out);
            } else {
                break;
            }
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into a token stream. Unrecognized bytes become single-char
/// `Punct` tokens; the lexer never fails, because a lint engine must keep
/// going to report everything it can.
pub fn tokenize(src: &str) -> Vec<Tok> {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut toks = Vec::new();
    while let Some(c) = lx.peek(0) {
        if c.is_whitespace() {
            let mut sink = String::new();
            lx.bump(&mut sink);
            continue;
        }
        let (line, col) = (lx.line, lx.col);
        let mut text = String::new();
        let kind = if c == '/' && lx.peek(1) == Some('/') {
            lx.bump_while(&mut text, |c| c != '\n');
            TokKind::LineComment
        } else if c == '/' && lx.peek(1) == Some('*') {
            lex_block_comment(&mut lx, &mut text);
            TokKind::BlockComment
        } else if c == '"' {
            lex_string(&mut lx, &mut text);
            TokKind::Str
        } else if is_raw_string_start(&lx) {
            lex_raw_string(&mut lx, &mut text);
            TokKind::Str
        } else if c == 'b' && lx.peek(1) == Some('"') {
            lx.bump(&mut text); // b
            lex_string(&mut lx, &mut text);
            TokKind::Str
        } else if c == 'b' && lx.peek(1) == Some('\'') {
            lx.bump(&mut text); // b
            lex_char(&mut lx, &mut text);
            TokKind::Char
        } else if c == '\'' {
            lex_lifetime_or_char(&mut lx, &mut text)
        } else if c == 'r' && lx.peek(1) == Some('#') && lx.peek(2).is_some_and(is_ident_start) {
            // Raw identifier (`r#match`) — must not shatter into
            // `r` + `#` + `match`. Keep the marker in the text but
            // classify as a plain identifier.
            lx.bump(&mut text); // r
            lx.bump(&mut text); // #
            lx.bump_while(&mut text, is_ident_continue);
            TokKind::Ident
        } else if is_ident_start(c) {
            lx.bump_while(&mut text, is_ident_continue);
            TokKind::Ident
        } else if c.is_ascii_digit() {
            lex_number(&mut lx, &mut text)
        } else {
            lex_punct(&mut lx, &mut text);
            TokKind::Punct
        };
        toks.push(Tok {
            kind,
            text,
            line,
            col,
        });
    }
    toks
}

fn is_raw_string_start(lx: &Lexer) -> bool {
    // r"…", r#"…"#, br"…", br#"…"#
    let (c0, c1, c2) = (lx.peek(0), lx.peek(1), lx.peek(2));
    match (c0, c1) {
        (Some('r'), Some('"') | Some('#')) => c1 == Some('"') || c2 == Some('"') || c2 == Some('#'),
        (Some('b'), Some('r')) => matches!(c2, Some('"') | Some('#')),
        _ => false,
    }
}

fn lex_block_comment(lx: &mut Lexer, text: &mut String) {
    lx.bump(text); // '/'
    lx.bump(text); // '*'
    let mut depth = 1usize;
    while depth > 0 && lx.peek(0).is_some() {
        if lx.peek(0) == Some('/') && lx.peek(1) == Some('*') {
            lx.bump(text);
            lx.bump(text);
            depth += 1;
        } else if lx.peek(0) == Some('*') && lx.peek(1) == Some('/') {
            lx.bump(text);
            lx.bump(text);
            depth -= 1;
        } else {
            lx.bump(text);
        }
    }
}

fn lex_string(lx: &mut Lexer, text: &mut String) {
    lx.bump(text); // opening quote
    while let Some(c) = lx.peek(0) {
        if c == '\\' {
            lx.bump(text);
            if lx.peek(0).is_some() {
                lx.bump(text);
            }
        } else if c == '"' {
            lx.bump(text);
            break;
        } else {
            lx.bump(text);
        }
    }
}

fn lex_raw_string(lx: &mut Lexer, text: &mut String) {
    if lx.peek(0) == Some('b') {
        lx.bump(text);
    }
    lx.bump(text); // 'r'
    let mut hashes = 0usize;
    while lx.peek(0) == Some('#') {
        lx.bump(text);
        hashes += 1;
    }
    if lx.peek(0) == Some('"') {
        lx.bump(text);
    }
    // Scan for `"` followed by `hashes` hash marks.
    'outer: while lx.peek(0).is_some() {
        if lx.peek(0) == Some('"') {
            for k in 0..hashes {
                if lx.peek(1 + k) != Some('#') {
                    lx.bump(text);
                    continue 'outer;
                }
            }
            for _ in 0..=hashes {
                lx.bump(text);
            }
            return;
        }
        lx.bump(text);
    }
}

fn lex_char(lx: &mut Lexer, text: &mut String) {
    lx.bump(text); // opening '
    if lx.peek(0) == Some('\\') {
        lx.bump(text);
        if lx.peek(0).is_some() {
            lx.bump(text);
        }
        // \u{…}
        while lx.peek(0).is_some_and(|c| c != '\'') {
            lx.bump(text);
        }
    } else if lx.peek(0).is_some() {
        lx.bump(text);
    }
    if lx.peek(0) == Some('\'') {
        lx.bump(text);
    }
}

fn lex_lifetime_or_char(lx: &mut Lexer, text: &mut String) -> TokKind {
    // 'a / 'static are lifetimes: ident chars after the quote with no
    // closing quote right after a single char.
    let c1 = lx.peek(1);
    let c2 = lx.peek(2);
    if c1.is_some_and(is_ident_start) && c2 != Some('\'') {
        lx.bump(text); // '
        lx.bump_while(text, is_ident_continue);
        TokKind::Lifetime
    } else {
        lex_char(lx, text);
        TokKind::Char
    }
}

fn lex_number(lx: &mut Lexer, text: &mut String) -> TokKind {
    let mut is_float = false;
    if lx.peek(0) == Some('0') && matches!(lx.peek(1), Some('x') | Some('o') | Some('b')) {
        lx.bump(text);
        lx.bump(text);
        lx.bump_while(text, |c| c.is_ascii_hexdigit() || c == '_');
        // Type suffix (`0xffu64`) — without this the suffix would lex
        // as a separate `u64` identifier token.
        lx.bump_while(text, is_ident_continue);
        return TokKind::Int;
    }
    lx.bump_while(text, |c| c.is_ascii_digit() || c == '_');
    if lx.peek(0) == Some('.') {
        match lx.peek(1) {
            // `1..n` is a range, `1.method()` a call: the dot is not ours.
            Some('.') => {}
            Some(c) if is_ident_start(c) => {}
            Some(c) if c.is_ascii_digit() => {
                is_float = true;
                lx.bump(text);
                lx.bump_while(text, |c| c.is_ascii_digit() || c == '_');
            }
            // Trailing-dot float (`1.`).
            _ => {
                is_float = true;
                lx.bump(text);
            }
        }
    }
    if matches!(lx.peek(0), Some('e') | Some('E')) {
        let next = lx.peek(1);
        let exp_digit = |c: Option<char>| c.is_some_and(|c| c.is_ascii_digit());
        if exp_digit(next) || (matches!(next, Some('+') | Some('-')) && exp_digit(lx.peek(2))) {
            is_float = true;
            lx.bump(text);
            if matches!(lx.peek(0), Some('+') | Some('-')) {
                lx.bump(text);
            }
            lx.bump_while(text, |c| c.is_ascii_digit() || c == '_');
        }
    }
    // Type suffix (`f64`, `u32`, …).
    let suffix_start = text.len();
    lx.bump_while(text, is_ident_continue);
    let suffix = &text[suffix_start..];
    if suffix.starts_with("f32") || suffix.starts_with("f64") {
        is_float = true;
    }
    if is_float {
        TokKind::Float
    } else {
        TokKind::Int
    }
}

fn lex_punct(lx: &mut Lexer, text: &mut String) {
    for op in OPS {
        let matches_op = op.chars().enumerate().all(|(k, oc)| lx.peek(k) == Some(oc));
        if matches_op {
            for _ in 0..op.chars().count() {
                lx.bump(text);
            }
            return;
        }
    }
    lx.bump(text);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn classifies_floats_and_ints() {
        let ts = kinds("let x = 1.5e-3 + 2 + 0xff + 3f64 + 4.;");
        let floats: Vec<&str> = ts
            .iter()
            .filter(|(k, _)| *k == TokKind::Float)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(floats, ["1.5e-3", "3f64", "4."]);
        let ints: Vec<&str> = ts
            .iter()
            .filter(|(k, _)| *k == TokKind::Int)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(ints, ["2", "0xff"]);
    }

    #[test]
    fn range_and_method_dots_are_not_floats() {
        let ts = kinds("for i in 0..n { v[i].max(1) }");
        assert!(ts.iter().all(|(k, _)| *k != TokKind::Float));
        assert!(ts.iter().any(|(k, s)| *k == TokKind::Punct && s == ".."));
    }

    #[test]
    fn comments_strings_and_lifetimes() {
        let ts = kinds("// line\n/* block */ \"st//r\" 'x' 'a: &'a str");
        assert_eq!(ts[0], (TokKind::LineComment, "// line".into()));
        assert_eq!(ts[1], (TokKind::BlockComment, "/* block */".into()));
        assert_eq!(ts[2], (TokKind::Str, "\"st//r\"".into()));
        assert_eq!(ts[3], (TokKind::Char, "'x'".into()));
        assert_eq!(ts[4].0, TokKind::Lifetime);
    }

    #[test]
    fn raw_strings_swallow_quotes() {
        let ts = kinds(r####"r#"a "quoted" b"# x"####);
        assert_eq!(ts[0].0, TokKind::Str);
        assert!(ts[1].1 == "x");
    }

    #[test]
    fn multi_char_operators_lex_greedily() {
        let ts = kinds("a == b != c && d ..= e :: f");
        let ops: Vec<&str> = ts
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(ops, ["==", "!=", "&&", "..=", "::"]);
    }

    #[test]
    fn line_and_column_tracking() {
        let ts = tokenize("a\n  b\n");
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
    }

    #[test]
    fn hex_literal_type_suffix_stays_one_token() {
        let ts = kinds("let m = 0xffu64 & 0b1010_1111u8 | 0o77i32;");
        let ints: Vec<&str> = ts
            .iter()
            .filter(|(k, _)| *k == TokKind::Int)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(ints, ["0xffu64", "0b1010_1111u8", "0o77i32"]);
        // The suffix must not leak out as a spurious identifier.
        assert!(!ts.iter().any(|(k, s)| *k == TokKind::Ident && s == "u64"));
    }

    #[test]
    fn raw_identifiers_lex_as_one_ident() {
        let ts = kinds("fn r#match(r#type: u32) {} r#\"still a raw string\"#");
        assert!(ts
            .iter()
            .any(|(k, s)| *k == TokKind::Ident && s == "r#match"));
        assert!(ts
            .iter()
            .any(|(k, s)| *k == TokKind::Ident && s == "r#type"));
        assert!(!ts.iter().any(|(k, s)| *k == TokKind::Punct && s == "#"));
        // The raw-ident branch must not swallow raw strings.
        assert!(ts.iter().any(|(k, _)| *k == TokKind::Str));
    }

    #[test]
    fn nested_block_comments() {
        let ts = kinds("/* a /* b */ c */ x");
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].0, TokKind::BlockComment);
        assert!(ts[1].1 == "x");
    }
}
