//! Per-file source model: path classification, test-region detection,
//! and `rfkit-allow(...)` suppression parsing.

use crate::tokenizer::{tokenize, Tok};

/// What role a file plays, derived from its workspace-relative path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source under `src/` — the strictest tier.
    Lib,
    /// Binary under `src/bin/` or `src/main.rs`.
    Bin,
    /// Integration test under `tests/`.
    Test,
    /// Example under `examples/`.
    Example,
}

/// One lexed workspace file plus the derived facts lints need.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Crate name (`num`, `opt`, …; `root` for the top-level crate).
    pub crate_name: String,
    /// Role of the file.
    pub kind: FileKind,
    /// Full token stream, comments included.
    pub toks: Vec<Tok>,
    /// Inclusive line ranges covered by `#[cfg(test)]` / `#[test]` items.
    pub test_regions: Vec<(u32, u32)>,
    /// `(line, lint-name)` pairs from `rfkit-allow(...)` comments.
    pub allows: Vec<(u32, String)>,
}

impl SourceFile {
    /// Lexes `src` and computes test regions and suppressions.
    pub fn parse(rel: &str, src: &str) -> SourceFile {
        let toks = tokenize(src);
        let (crate_name, kind) = classify_path(rel);
        let test_regions = find_test_regions(&toks);
        let allows = find_allows(&toks);
        SourceFile {
            rel: rel.to_string(),
            crate_name,
            kind,
            toks,
            test_regions,
            allows,
        }
    }

    /// True when `line` falls inside a `#[cfg(test)]` module or `#[test]` fn.
    pub fn in_test_region(&self, line: u32) -> bool {
        self.kind == FileKind::Test
            || self
                .test_regions
                .iter()
                .any(|&(lo, hi)| line >= lo && line <= hi)
    }

    /// True when a `rfkit-allow(<lint>)` comment sits on `line` or the
    /// line directly above it.
    pub fn is_allowed(&self, lint: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|(l, name)| name == lint && (*l == line || *l + 1 == line))
    }
}

fn classify_path(rel: &str) -> (String, FileKind) {
    let parts: Vec<&str> = rel.split('/').collect();
    let (crate_name, rest) = if parts.first() == Some(&"crates") && parts.len() > 2 {
        (parts[1].to_string(), &parts[2..])
    } else {
        ("root".to_string(), &parts[..])
    };
    let kind = match rest.first().copied() {
        Some("tests") => FileKind::Test,
        Some("examples") => FileKind::Example,
        Some("src") => {
            if rest.get(1).copied() == Some("bin") || rest.get(1).copied() == Some("main.rs") {
                FileKind::Bin
            } else {
                FileKind::Lib
            }
        }
        _ => FileKind::Lib,
    };
    (crate_name, kind)
}

/// Scans for `#[cfg(test)]` and `#[test]` attributes and brace-matches the
/// item that follows to get its line extent. Good enough for the lint
/// engine: a missed region makes a lint slightly stricter, never unsound.
fn find_test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let code: Vec<(usize, &Tok)> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .collect();
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if is_test_attr(&code, i) {
            let start_line = code[i].1.line;
            // Skip this and any further attributes, then the item header
            // up to its opening `{` (or a terminating `;`).
            let mut j = skip_attr(&code, i);
            while j < code.len() && is_test_attr(&code, j) {
                j = skip_attr(&code, j);
            }
            while j < code.len() && !code[j].1.is_punct("{") && !code[j].1.is_punct(";") {
                j += 1;
            }
            if j < code.len() && code[j].1.is_punct("{") {
                let mut depth = 0i32;
                while j < code.len() {
                    if code[j].1.is_punct("{") {
                        depth += 1;
                    } else if code[j].1.is_punct("}") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
            }
            let end_line = code.get(j).map_or(u32::MAX, |(_, t)| t.line);
            regions.push((start_line, end_line));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    regions
}

/// True when `code[i]` starts `#[test]`, `#[cfg(test)]`, or `#[cfg(all(test, …))]`.
fn is_test_attr(code: &[(usize, &Tok)], i: usize) -> bool {
    if !code[i].1.is_punct("#") || !code.get(i + 1).is_some_and(|(_, t)| t.is_punct("[")) {
        return false;
    }
    let Some((_, t2)) = code.get(i + 2) else {
        return false;
    };
    if t2.is_ident("test") {
        return true;
    }
    if t2.is_ident("cfg") {
        // Look for the ident `test` before the attribute closes.
        let mut depth = 0i32;
        for (_, t) in code.iter().skip(i + 1) {
            if t.is_punct("[") || t.is_punct("(") {
                depth += 1;
            } else if t.is_punct("]") || t.is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_ident("test") {
                return true;
            }
        }
    }
    false
}

/// Returns the index just past the `#[...]` attribute starting at `i`.
fn skip_attr(code: &[(usize, &Tok)], i: usize) -> usize {
    let mut j = i + 1; // at `[`
    let mut depth = 0i32;
    while j < code.len() {
        if code[j].1.is_punct("[") {
            depth += 1;
        } else if code[j].1.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

fn find_allows(toks: &[Tok]) -> Vec<(u32, String)> {
    let mut allows = Vec::new();
    for t in toks {
        if !t.is_comment() {
            continue;
        }
        let mut rest = t.text.as_str();
        while let Some(pos) = rest.find("rfkit-allow(") {
            let after = &rest[pos + "rfkit-allow(".len()..];
            if let Some(end) = after.find(')') {
                let name = after[..end].trim().to_string();
                // Block comments can span lines; attribute the allow to
                // the line the marker itself is on.
                let offset = t.text.len() - rest.len() + pos;
                let line_off = t.text[..offset].matches('\n').count() as u32;
                allows.push((t.line + line_off, name));
                rest = &after[end..];
            } else {
                break;
            }
        }
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_classification() {
        assert_eq!(
            classify_path("crates/num/src/matrix.rs"),
            ("num".into(), FileKind::Lib)
        );
        assert_eq!(
            classify_path("crates/bench/src/bin/fig4.rs"),
            ("bench".into(), FileKind::Bin)
        );
        assert_eq!(
            classify_path("crates/opt/tests/determinism.rs"),
            ("opt".into(), FileKind::Test)
        );
        assert_eq!(
            classify_path("examples/demo.rs"),
            ("root".into(), FileKind::Example)
        );
        assert_eq!(classify_path("src/lib.rs"), ("root".into(), FileKind::Lib));
        assert_eq!(classify_path("src/main.rs"), ("root".into(), FileKind::Bin));
    }

    #[test]
    fn test_region_covers_cfg_test_module() {
        let src = "\
pub fn live() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { assert!(true); }
}
pub fn live2() {}
";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(!f.in_test_region(1));
        assert!(f.in_test_region(2));
        assert!(f.in_test_region(5));
        assert!(f.in_test_region(6));
        assert!(!f.in_test_region(7));
    }

    #[test]
    fn test_fn_with_extra_attrs() {
        let src = "\
#[test]
#[should_panic]
fn boom() {
    panic!(\"x\");
}
fn live() {}
";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(f.in_test_region(4));
        assert!(!f.in_test_region(6));
    }

    #[test]
    fn allows_same_line_and_line_above() {
        let src = "\
let a = 0; // rfkit-allow(float-eq)
// rfkit-allow(todo-markers)
let b = 1;
";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(f.is_allowed("float-eq", 1));
        // An allow always covers its own line and the next one, so a
        // trailing same-line allow also reaches line 2.
        assert!(f.is_allowed("float-eq", 2));
        assert!(!f.is_allowed("float-eq", 3));
        assert!(f.is_allowed("todo-markers", 2));
        assert!(f.is_allowed("todo-markers", 3));
        assert!(!f.is_allowed("todo-markers", 4));
    }

    #[test]
    fn integration_tests_are_all_test_region() {
        let f = SourceFile::parse("crates/x/tests/t.rs", "fn helper() {}\n");
        assert!(f.in_test_region(1));
    }
}
