//! Per-file source model: path classification, test-region detection,
//! and `rfkit-allow(...)` suppression parsing.

use crate::dataflow::{self, FnAnalysis};
use crate::parser::{self, Ast};
use crate::tokenizer::{tokenize, Tok};
use std::time::{SystemTime, UNIX_EPOCH};

/// What role a file plays, derived from its workspace-relative path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source under `src/` — the strictest tier.
    Lib,
    /// Binary under `src/bin/` or `src/main.rs`.
    Bin,
    /// Integration test under `tests/`.
    Test,
    /// Example under `examples/`.
    Example,
}

/// One lexed workspace file plus the derived facts lints need.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Crate name (`num`, `opt`, …; `root` for the top-level crate).
    pub crate_name: String,
    /// Role of the file.
    pub kind: FileKind,
    /// Full token stream, comments included.
    pub toks: Vec<Tok>,
    /// Inclusive line ranges covered by `#[cfg(test)]` / `#[test]` items.
    pub test_regions: Vec<(u32, u32)>,
    /// Parsed `rfkit-allow(...)` suppressions.
    pub allows: Vec<Allow>,
    /// Parsed AST of the file (error-tolerant; never fails).
    pub ast: Ast,
    /// Per-function dataflow summaries derived from `ast`.
    pub fns: Vec<FnAnalysis>,
}

/// One `rfkit-allow(<lint>[, until = "YYYY-MM-DD"])` suppression.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Line the marker is on.
    pub line: u32,
    /// Lint name being suppressed.
    pub lint: String,
    /// Optional expiry date (`YYYY-MM-DD`). Past-dated suppressions are
    /// reported by the `expired-suppression` lint.
    pub until: Option<String>,
    /// True when the part after the lint name did not parse as a
    /// well-formed `until = "YYYY-MM-DD"` clause.
    pub malformed: bool,
}

impl SourceFile {
    /// Lexes `src` and computes test regions and suppressions.
    pub fn parse(rel: &str, src: &str) -> SourceFile {
        let toks = tokenize(src);
        let (crate_name, kind) = classify_path(rel);
        let test_regions = find_test_regions(&toks);
        let allows = find_allows(&toks);
        let ast = parser::parse(&toks);
        let fns = dataflow::analyze(&ast);
        SourceFile {
            rel: rel.to_string(),
            crate_name,
            kind,
            toks,
            test_regions,
            allows,
            ast,
            fns,
        }
    }

    /// True when `line` falls inside a `#[cfg(test)]` module or `#[test]` fn.
    pub fn in_test_region(&self, line: u32) -> bool {
        self.kind == FileKind::Test
            || self
                .test_regions
                .iter()
                .any(|&(lo, hi)| line >= lo && line <= hi)
    }

    /// True when a `rfkit-allow(<lint>)` comment sits on `line` or the
    /// line directly above it. Expired suppressions still suppress —
    /// the `expired-suppression` lint reports them as errors instead,
    /// so the finding that surfaces points at the stale date rather
    /// than re-flagging the underlying (already-reviewed) code.
    pub fn is_allowed(&self, lint: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.lint == lint && (a.line == line || a.line + 1 == line))
    }
}

/// Today's date as `YYYY-MM-DD`, used for suppression-expiry checks.
/// Overridable via `RFKIT_ANALYZE_TODAY` so tests are deterministic.
pub fn today() -> String {
    if let Ok(v) = std::env::var("RFKIT_ANALYZE_TODAY") {
        if is_date(&v) {
            return v;
        }
    }
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .as_secs();
    civil_from_days((secs / 86_400) as i64)
}

/// Days-since-1970-01-01 to `YYYY-MM-DD` (Gregorian civil calendar).
fn civil_from_days(z: i64) -> String {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// True for a well-formed `YYYY-MM-DD` string. Dates in this format
/// compare correctly as plain strings, which is all expiry needs.
pub fn is_date(s: &str) -> bool {
    let b = s.as_bytes();
    b.len() == 10
        && b[4] == b'-'
        && b[7] == b'-'
        && b.iter()
            .enumerate()
            .all(|(i, c)| matches!(i, 4 | 7) || c.is_ascii_digit())
        && &s[5..7] >= "01"
        && &s[5..7] <= "12"
        && &s[8..10] >= "01"
        && &s[8..10] <= "31"
}

fn classify_path(rel: &str) -> (String, FileKind) {
    let parts: Vec<&str> = rel.split('/').collect();
    let (crate_name, rest) = if parts.first() == Some(&"crates") && parts.len() > 2 {
        (parts[1].to_string(), &parts[2..])
    } else {
        ("root".to_string(), &parts[..])
    };
    let kind = match rest.first().copied() {
        Some("tests") => FileKind::Test,
        Some("examples") => FileKind::Example,
        Some("src") => {
            if rest.get(1).copied() == Some("bin") || rest.get(1).copied() == Some("main.rs") {
                FileKind::Bin
            } else {
                FileKind::Lib
            }
        }
        _ => FileKind::Lib,
    };
    (crate_name, kind)
}

/// Scans for `#[cfg(test)]` and `#[test]` attributes and brace-matches the
/// item that follows to get its line extent. Good enough for the lint
/// engine: a missed region makes a lint slightly stricter, never unsound.
fn find_test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let code: Vec<(usize, &Tok)> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .collect();
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if is_test_attr(&code, i) {
            let start_line = code[i].1.line;
            // Skip this and any further attributes, then the item header
            // up to its opening `{` (or a terminating `;`).
            let mut j = skip_attr(&code, i);
            while j < code.len() && is_test_attr(&code, j) {
                j = skip_attr(&code, j);
            }
            while j < code.len() && !code[j].1.is_punct("{") && !code[j].1.is_punct(";") {
                j += 1;
            }
            if j < code.len() && code[j].1.is_punct("{") {
                let mut depth = 0i32;
                while j < code.len() {
                    if code[j].1.is_punct("{") {
                        depth += 1;
                    } else if code[j].1.is_punct("}") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
            }
            let end_line = code.get(j).map_or(u32::MAX, |(_, t)| t.line);
            regions.push((start_line, end_line));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    regions
}

/// True when `code[i]` starts `#[test]`, `#[cfg(test)]`, or `#[cfg(all(test, …))]`.
fn is_test_attr(code: &[(usize, &Tok)], i: usize) -> bool {
    if !code[i].1.is_punct("#") || !code.get(i + 1).is_some_and(|(_, t)| t.is_punct("[")) {
        return false;
    }
    let Some((_, t2)) = code.get(i + 2) else {
        return false;
    };
    if t2.is_ident("test") {
        return true;
    }
    if t2.is_ident("cfg") {
        // Look for the ident `test` before the attribute closes.
        let mut depth = 0i32;
        for (_, t) in code.iter().skip(i + 1) {
            if t.is_punct("[") || t.is_punct("(") {
                depth += 1;
            } else if t.is_punct("]") || t.is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_ident("test") {
                return true;
            }
        }
    }
    false
}

/// Returns the index just past the `#[...]` attribute starting at `i`.
fn skip_attr(code: &[(usize, &Tok)], i: usize) -> usize {
    let mut j = i + 1; // at `[`
    let mut depth = 0i32;
    while j < code.len() {
        if code[j].1.is_punct("[") {
            depth += 1;
        } else if code[j].1.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// True for `///`, `//!`, `/**`, `/*!` — documentation, where
/// `rfkit-allow(...)` is prose about the mechanism, not a suppression.
fn is_doc_comment(text: &str) -> bool {
    text.starts_with("///")
        || text.starts_with("//!")
        || text.starts_with("/**")
        || text.starts_with("/*!")
}

fn find_allows(toks: &[Tok]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for t in toks {
        if !t.is_comment() || is_doc_comment(&t.text) {
            continue;
        }
        let mut rest = t.text.as_str();
        while let Some(pos) = rest.find("rfkit-allow(") {
            let after = &rest[pos + "rfkit-allow(".len()..];
            if let Some(end) = after.find(')') {
                // Block comments can span lines; attribute the allow to
                // the line the marker itself is on.
                let offset = t.text.len() - rest.len() + pos;
                let line_off = t.text[..offset].matches('\n').count() as u32;
                allows.push(parse_allow(&after[..end], t.line + line_off));
                rest = &after[end..];
            } else {
                break;
            }
        }
    }
    allows
}

/// Parses the inside of `rfkit-allow( … )`: a lint name, optionally
/// followed by `, until = "YYYY-MM-DD"`.
fn parse_allow(body: &str, line: u32) -> Allow {
    let (name, tail) = match body.split_once(',') {
        Some((n, t)) => (n.trim(), Some(t.trim())),
        None => (body.trim(), None),
    };
    let mut until = None;
    let mut malformed = false;
    if let Some(tail) = tail {
        let date = tail
            .strip_prefix("until")
            .map(str::trim_start)
            .and_then(|t| t.strip_prefix('='))
            .map(str::trim)
            .map(|t| t.trim_matches('"'));
        match date {
            Some(d) if is_date(d) => until = Some(d.to_string()),
            _ => malformed = true,
        }
    }
    Allow {
        line,
        lint: name.to_string(),
        until,
        malformed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_classification() {
        assert_eq!(
            classify_path("crates/num/src/matrix.rs"),
            ("num".into(), FileKind::Lib)
        );
        assert_eq!(
            classify_path("crates/bench/src/bin/fig4.rs"),
            ("bench".into(), FileKind::Bin)
        );
        assert_eq!(
            classify_path("crates/opt/tests/determinism.rs"),
            ("opt".into(), FileKind::Test)
        );
        assert_eq!(
            classify_path("examples/demo.rs"),
            ("root".into(), FileKind::Example)
        );
        assert_eq!(classify_path("src/lib.rs"), ("root".into(), FileKind::Lib));
        assert_eq!(classify_path("src/main.rs"), ("root".into(), FileKind::Bin));
    }

    #[test]
    fn test_region_covers_cfg_test_module() {
        let src = "\
pub fn live() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { assert!(true); }
}
pub fn live2() {}
";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(!f.in_test_region(1));
        assert!(f.in_test_region(2));
        assert!(f.in_test_region(5));
        assert!(f.in_test_region(6));
        assert!(!f.in_test_region(7));
    }

    #[test]
    fn test_fn_with_extra_attrs() {
        let src = "\
#[test]
#[should_panic]
fn boom() {
    panic!(\"x\");
}
fn live() {}
";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(f.in_test_region(4));
        assert!(!f.in_test_region(6));
    }

    #[test]
    fn allows_same_line_and_line_above() {
        let src = "\
let a = 0; // rfkit-allow(float-eq)
// rfkit-allow(todo-markers)
let b = 1;
";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(f.is_allowed("float-eq", 1));
        // An allow always covers its own line and the next one, so a
        // trailing same-line allow also reaches line 2.
        assert!(f.is_allowed("float-eq", 2));
        assert!(!f.is_allowed("float-eq", 3));
        assert!(f.is_allowed("todo-markers", 2));
        assert!(f.is_allowed("todo-markers", 3));
        assert!(!f.is_allowed("todo-markers", 4));
    }

    #[test]
    fn integration_tests_are_all_test_region() {
        let f = SourceFile::parse("crates/x/tests/t.rs", "fn helper() {}\n");
        assert!(f.in_test_region(1));
    }

    #[test]
    fn allow_with_expiry_date() {
        let src = "let a = 0; // rfkit-allow(float-eq, until = \"2031-01-15\")\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(f.is_allowed("float-eq", 1));
        let a = &f.allows[0];
        assert_eq!(a.until.as_deref(), Some("2031-01-15"));
        assert!(!a.malformed);
    }

    #[test]
    fn allow_with_bad_expiry_is_malformed() {
        for src in [
            "// rfkit-allow(float-eq, until = \"someday\")\n",
            "// rfkit-allow(float-eq, 2031-01-15)\n",
            "// rfkit-allow(float-eq, until 2031-01-15)\n",
        ] {
            let f = SourceFile::parse("crates/x/src/lib.rs", src);
            assert!(f.allows[0].malformed, "not malformed: {src}");
            // Malformed or not, the suppression still names its lint.
            assert_eq!(f.allows[0].lint, "float-eq");
        }
    }

    #[test]
    fn date_validation_and_civil_conversion() {
        assert!(is_date("2026-08-08"));
        assert!(!is_date("2026-13-01"));
        assert!(!is_date("2026-00-10"));
        assert!(!is_date("26-08-08"));
        assert!(!is_date("2026/08/08"));
        assert_eq!(civil_from_days(0), "1970-01-01");
        assert_eq!(civil_from_days(19_723), "2024-01-01");
        assert_eq!(civil_from_days(20_309), "2025-08-09");
    }
}
