//! A hand-rolled, error-tolerant recursive-descent parser over the
//! token stream, producing the lightweight AST the semantic lints run
//! on.
//!
//! This is not a Rust front end. It recognizes exactly the subset the
//! workspace uses — items, blocks, `let`/assignments, calls, method
//! chains, loops, closures, `match`/`if`, attributes — and degrades
//! gracefully everywhere else: any token sequence it does not
//! understand becomes an opaque atom and the parser moves on. Two hard
//! guarantees hold for arbitrary input, and the workspace round-trip
//! test pins them: parsing never panics, and every token is consumed
//! (the parser always makes progress).
//!
//! Spans are line-based (`line..=end_line` plus a start column); that
//! is exactly as much position information as file:line diagnostics
//! and lexical liveness ranges need.

use crate::tokenizer::{Tok, TokKind};
use std::collections::BTreeSet;

/// Nesting depth at which the parser stops recursing and falls back to
/// opaque token consumption. Far beyond anything hand-written; exists
/// so adversarial input cannot overflow the stack.
const MAX_DEPTH: u32 = 120;

/// A line/column source span. `end_line` is inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based first line.
    pub line: u32,
    /// 1-based column of the first token.
    pub col: u32,
    /// 1-based last line (inclusive).
    pub end_line: u32,
}

impl Span {
    fn at(t: &Tok) -> Span {
        Span {
            line: t.line,
            col: t.col,
            end_line: t.line,
        }
    }
}

/// Top-level parse result: the file's items.
#[derive(Debug)]
pub struct Ast {
    /// Items in source order.
    pub items: Vec<Item>,
}

/// What kind of item an [`Item`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn` (free or associated).
    Fn,
    /// `impl` block (children are the associated items).
    Impl,
    /// `mod` with a body.
    Mod,
    /// `trait` definition.
    Trait,
    /// `static` or `const` with an initializer expression.
    Static,
    /// Everything else (`struct`, `enum`, `use`, `type`, macros, …).
    Other,
}

/// One parsed item.
#[derive(Debug)]
pub struct Item {
    /// Classification.
    pub kind: ItemKind,
    /// Item name; empty for anonymous items (`impl` blocks report the
    /// first type ident of their header).
    pub name: String,
    /// True when a `// rfkit-hot` marker comment sits directly above
    /// the item (or above its attributes).
    pub hot: bool,
    /// True when a `// rfkit-cold` marker comment sits directly above
    /// the item — opts the function out of hot-set propagation (for
    /// once-per-batch structural work reachable from a hot entry).
    pub cold: bool,
    /// Source extent.
    pub span: Span,
    /// Parameter names, for `Fn` items.
    pub params: Vec<String>,
    /// Function body, for `Fn` items with one.
    pub body: Option<Block>,
    /// Initializer, for `Static` items.
    pub init: Option<Expr>,
    /// Nested items, for `Impl`/`Mod`/`Trait`.
    pub children: Vec<Item>,
}

/// A `{ … }` block of statements.
#[derive(Debug)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
    /// Source extent, opening to closing brace.
    pub span: Span,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    /// `let <pat> = <init>;` — `names` are the idents bound by the
    /// pattern.
    Let {
        /// Idents bound by the pattern (`mut`/`ref` stripped).
        names: Vec<String>,
        /// Initializer when present.
        init: Option<Expr>,
        /// Source extent of the whole statement.
        span: Span,
    },
    /// An expression statement.
    Expr(Expr),
    /// A nested item (fn in fn, `use`, …).
    Item(Item),
}

/// Loop flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    /// `for <pat> in <iter> { … }`
    For,
    /// `while <cond> { … }` (including `while let`)
    While,
    /// `loop { … }`
    Loop,
}

/// Expression node.
#[derive(Debug)]
pub struct Expr {
    /// Node kind.
    pub kind: ExprKind,
    /// Source extent.
    pub span: Span,
}

/// Expression kinds. Anything the parser cannot classify becomes
/// [`ExprKind::Group`] (a sequence of sub-expressions) or
/// [`ExprKind::Atom`] (a single opaque token).
#[derive(Debug)]
pub enum ExprKind {
    /// `a::b::c` path or single identifier; segments in order.
    Path(Vec<String>),
    /// A literal token.
    Lit(TokKind, String),
    /// `callee(args…)` — callee is usually a `Path`.
    Call {
        /// The called expression.
        callee: Box<Expr>,
        /// Call arguments.
        args: Vec<Expr>,
    },
    /// `recv.method(args…)`.
    MethodCall {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        method: String,
        /// Call arguments.
        args: Vec<Expr>,
    },
    /// `recv.field` / `recv.0`.
    Field {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Field name or tuple index.
        name: String,
    },
    /// `name!(…)` — args are a best-effort parse of the token tree.
    Macro {
        /// Macro name (last path segment).
        name: String,
        /// Comma/semicolon-separated inner expressions.
        args: Vec<Expr>,
    },
    /// `for`/`while`/`loop`.
    Loop {
        /// Loop flavour.
        kind: LoopKind,
        /// Idents bound by a `for` pattern.
        bindings: Vec<String>,
        /// Header expression (`for` iterable, `while` condition).
        header: Option<Box<Expr>>,
        /// Loop body.
        body: Block,
    },
    /// `|params| body` / `move |params| body`.
    Closure {
        /// Parameter names.
        params: Vec<String>,
        /// Closure body.
        body: Box<Expr>,
    },
    /// `if cond { … } else …` — `else` chains into `els`.
    If {
        /// Condition (pattern part of `if let` is skipped).
        cond: Box<Expr>,
        /// Then-block.
        then: Block,
        /// `else` expression (block or nested `if`).
        els: Option<Box<Expr>>,
    },
    /// `match scrutinee { arms }` — arm bodies only; patterns skipped.
    Match {
        /// Scrutinee.
        scrutinee: Box<Expr>,
        /// Arm body expressions in source order.
        arms: Vec<Expr>,
    },
    /// A block expression (incl. `unsafe { … }`).
    Block(Block),
    /// `target = value` and compound assignments.
    Assign {
        /// Assignment target.
        target: Box<Expr>,
        /// Assigned value.
        value: Box<Expr>,
    },
    /// An unclassified sequence: binary chains, tuples, array
    /// literals, struct literals, `return`/`break` payloads.
    Group(Vec<Expr>),
    /// One opaque token.
    Atom(String),
}

impl Expr {
    fn unit(span: Span) -> Expr {
        Expr {
            kind: ExprKind::Group(Vec::new()),
            span,
        }
    }
}

/// Parses a token stream (as produced by [`crate::tokenizer::tokenize`])
/// into an [`Ast`]. Comments are used for `// rfkit-hot` markers and
/// otherwise ignored.
pub fn parse(toks: &[Tok]) -> Ast {
    // Lines holding `rfkit-hot` / `rfkit-cold` marker comments.
    let marker_lines = |needle: &str| -> BTreeSet<u32> {
        toks.iter()
            .filter(|t| t.is_comment() && t.text.contains(needle))
            .map(|t| t.line)
            .collect()
    };
    let hot_lines = marker_lines("rfkit-hot");
    let cold_lines = marker_lines("rfkit-cold");
    let code: Vec<&Tok> = toks.iter().filter(|t| !t.is_comment()).collect();
    let mut p = Parser {
        code,
        pos: 0,
        hot_lines,
        cold_lines,
    };
    let items = p.parse_items(None);
    Ast { items }
}

struct Parser<'a> {
    code: Vec<&'a Tok>,
    pos: usize,
    hot_lines: BTreeSet<u32>,
    cold_lines: BTreeSet<u32>,
}

const ITEM_KEYWORDS: [&str; 14] = [
    "fn",
    "struct",
    "enum",
    "union",
    "trait",
    "impl",
    "mod",
    "use",
    "static",
    "const",
    "type",
    "extern",
    "macro_rules",
    "unsafe",
];

impl<'a> Parser<'a> {
    fn peek(&self, ahead: usize) -> Option<&'a Tok> {
        self.code.get(self.pos + ahead).copied()
    }

    fn at_punct(&self, s: &str) -> bool {
        self.peek(0).is_some_and(|t| t.is_punct(s))
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek(0).is_some_and(|t| t.is_ident(s))
    }

    fn bump(&mut self) -> Option<&'a Tok> {
        let t = self.peek(0);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, s: &str) -> bool {
        if self.at_punct(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn last_line(&self) -> u32 {
        if self.pos == 0 {
            1
        } else {
            self.code[self.pos - 1].line
        }
    }

    /// Skips one balanced `#[…]` / `#![…]` attribute, if present.
    fn skip_attr(&mut self) -> bool {
        let hash = self.at_punct("#") || self.at_punct("#!");
        if !hash || !self.peek(1).is_some_and(|t| t.is_punct("[")) {
            return false;
        }
        self.bump(); // # or #!
        self.skip_balanced("[", "]");
        true
    }

    /// Consumes a balanced delimiter run starting at `open` (which must
    /// be the current token); tolerates EOF.
    fn skip_balanced(&mut self, open: &str, close: &str) {
        if !self.eat_punct(open) {
            return;
        }
        let mut depth = 1usize;
        while depth > 0 {
            let Some(t) = self.bump() else { return };
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
            }
        }
    }

    /// True when the item starting at `line` (or its attributes,
    /// scanned upward) carries a `// rfkit-hot` marker on the line
    /// directly above.
    fn hot_marker_above(&self, first_line: u32) -> bool {
        self.hot_lines.contains(&first_line)
            || (first_line > 0 && self.hot_lines.contains(&(first_line - 1)))
    }

    /// Same as [`Self::hot_marker_above`] for `// rfkit-cold`.
    fn cold_marker_above(&self, first_line: u32) -> bool {
        self.cold_lines.contains(&first_line)
            || (first_line > 0 && self.cold_lines.contains(&(first_line - 1)))
    }

    // ---- items ----------------------------------------------------

    /// Parses items until EOF (`until == None`) or a closing `}`.
    fn parse_items(&mut self, until: Option<&str>) -> Vec<Item> {
        let mut items = Vec::new();
        loop {
            if let Some(close) = until {
                if self.at_punct(close) {
                    break;
                }
            }
            if self.peek(0).is_none() {
                break;
            }
            let before = self.pos;
            if let Some(item) = self.parse_item() {
                items.push(item);
            }
            if self.pos == before {
                // Opaque token at item level: consume and move on.
                self.bump();
            }
        }
        items
    }

    /// Parses one item if the cursor sits on something item-like.
    fn parse_item(&mut self) -> Option<Item> {
        let start_tok = self.peek(0)?;
        let first_line = start_tok.line;
        let hot = self.hot_marker_above(first_line);
        let cold = self.cold_marker_above(first_line);
        // Attributes and visibility prefix the keyword.
        let mut progressed = false;
        while self.skip_attr() {
            progressed = true;
        }
        if self.at_ident("pub") {
            self.bump();
            progressed = true;
            if self.at_punct("(") {
                self.skip_balanced("(", ")");
            }
        }
        // `unsafe fn`, `unsafe impl`, `extern "C" fn`…
        if self.at_ident("unsafe") && self.peek(1).is_some_and(|t| t.kind == TokKind::Ident) {
            self.bump();
            progressed = true;
        }
        let Some(kw) = self.peek(0) else {
            return progressed.then(|| self.other_item(start_tok, first_line, hot, cold));
        };
        if kw.kind != TokKind::Ident || !ITEM_KEYWORDS.contains(&kw.text.as_str()) {
            // Not an item. If we consumed attrs/vis we must still emit
            // something so progress holds; classify as Other.
            return progressed.then(|| self.other_item(start_tok, first_line, hot, cold));
        }
        match kw.text.as_str() {
            "fn" => Some(self.parse_fn(start_tok, hot, cold)),
            "impl" | "mod" | "trait" => Some(self.parse_container(start_tok, hot, cold)),
            "static" | "const" => Some(self.parse_static(start_tok, hot, cold)),
            "unsafe" => {
                // `unsafe {` at item level (shouldn't happen): opaque.
                Some(self.other_item(start_tok, first_line, hot, cold))
            }
            _ => Some(self.parse_other_keyword_item(start_tok, hot, cold)),
        }
    }

    fn other_item(&mut self, start: &Tok, first_line: u32, hot: bool, cold: bool) -> Item {
        Item {
            kind: ItemKind::Other,
            name: String::new(),
            hot,
            cold,
            span: Span {
                line: first_line,
                col: start.col,
                end_line: self.last_line().max(first_line),
            },
            params: Vec::new(),
            body: None,
            init: None,
            children: Vec::new(),
        }
    }

    /// `fn name<…>(params) -> … where … { body }` (or `;` in traits).
    fn parse_fn(&mut self, start: &Tok, hot: bool, cold: bool) -> Item {
        self.bump(); // fn
        let name = match self.peek(0) {
            Some(t) if t.kind == TokKind::Ident => {
                let n = t.text.clone();
                self.bump();
                n
            }
            _ => String::new(),
        };
        self.skip_generics();
        let params = self.parse_fn_params();
        // Return type / where clause: scan to the body `{` or a `;`.
        // Types contain no braces in this workspace's subset; `<>` pairs
        // may contain commas but never braces.
        let mut body = None;
        loop {
            match self.peek(0) {
                None => break,
                Some(t) if t.is_punct(";") => {
                    self.bump();
                    break;
                }
                Some(t) if t.is_punct("{") => {
                    body = Some(self.parse_block(0));
                    break;
                }
                _ => {
                    self.bump();
                }
            }
        }
        Item {
            kind: ItemKind::Fn,
            name,
            hot,
            cold,
            span: Span {
                line: start.line,
                col: start.col,
                end_line: self.last_line().max(start.line),
            },
            params,
            body,
            init: None,
            children: Vec::new(),
        }
    }

    /// Skips `<…>` generics with nesting (`Vec<Vec<T>>` — the lexer
    /// emits `>>` as one token, handled below).
    fn skip_generics(&mut self) {
        if !self.at_punct("<") {
            return;
        }
        self.bump();
        let mut depth = 1i32;
        while depth > 0 {
            let Some(t) = self.bump() else { return };
            if t.is_punct("<") || t.is_punct("<<") {
                depth += if t.text == "<<" { 2 } else { 1 };
            } else if t.is_punct(">") || t.is_punct(">>") {
                depth -= if t.text == ">>" { 2 } else { 1 };
            }
            // `->` lexes as its own token, so `Fn() -> T` inside
            // generics never miscounts as a closing `>`.
        }
    }

    /// Parses `(a: T, mut b: U, &self)` returning the parameter names.
    fn parse_fn_params(&mut self) -> Vec<String> {
        let mut names = Vec::new();
        if !self.at_punct("(") {
            return names;
        }
        self.bump();
        let mut depth = 1i32;
        // Collect the leading ident of each top-level comma-separated
        // chunk, skipping `mut`/`ref`/`self` qualifiers.
        let mut chunk_start = true;
        while depth > 0 {
            let Some(t) = self.peek(0) else { break };
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") || t.is_punct("<") {
                depth += 1;
                self.bump();
                continue;
            }
            if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") || t.is_punct(">") {
                depth -= 1;
                self.bump();
                continue;
            }
            if depth == 1 && t.is_punct(",") {
                chunk_start = true;
                self.bump();
                continue;
            }
            if chunk_start && t.kind == TokKind::Ident {
                if t.text == "mut" || t.text == "ref" {
                    self.bump();
                    continue;
                }
                if t.text != "self" {
                    names.push(t.text.clone());
                }
                chunk_start = false;
                self.bump();
                continue;
            }
            if chunk_start && (t.is_punct("&") || t.kind == TokKind::Lifetime) {
                self.bump();
                continue;
            }
            chunk_start = false;
            self.bump();
        }
        names
    }

    /// `impl`/`mod`/`trait` with a braced body of nested items.
    fn parse_container(&mut self, start: &Tok, hot: bool, cold: bool) -> Item {
        let kw = self.bump().map(|t| t.text.clone()).unwrap_or_default();
        let kind = match kw.as_str() {
            "impl" => ItemKind::Impl,
            "mod" => ItemKind::Mod,
            _ => ItemKind::Trait,
        };
        // Name: first plain ident of the header.
        let mut name = String::new();
        // Scan header to `{` or `;` (mod decl).
        let mut children = Vec::new();
        loop {
            match self.peek(0) {
                None => break,
                Some(t) if t.is_punct(";") => {
                    self.bump();
                    break;
                }
                Some(t) if t.is_punct("{") => {
                    self.bump();
                    children = self.parse_items(Some("}"));
                    self.eat_punct("}");
                    break;
                }
                Some(t) if t.is_punct("<") => self.skip_generics(),
                Some(t) => {
                    if name.is_empty() && t.kind == TokKind::Ident && t.text != "for" {
                        name = t.text.clone();
                    }
                    self.bump();
                }
            }
        }
        Item {
            kind,
            name,
            hot,
            cold,
            span: Span {
                line: start.line,
                col: start.col,
                end_line: self.last_line().max(start.line),
            },
            params: Vec::new(),
            body: None,
            init: None,
            children,
        }
    }

    /// `static NAME: Type = expr;` / `const NAME: Type = expr;`
    fn parse_static(&mut self, start: &Tok, hot: bool, cold: bool) -> Item {
        self.bump(); // static | const
        if self.at_ident("mut") {
            self.bump();
        }
        let name = match self.peek(0) {
            Some(t) if t.kind == TokKind::Ident => {
                let n = t.text.clone();
                self.bump();
                n
            }
            _ => String::new(),
        };
        // Skip the type: everything up to a top-level `=` or `;`.
        let mut depth = 0i32;
        let mut init = None;
        loop {
            match self.peek(0) {
                None => break,
                Some(t) if depth == 0 && t.is_punct("=") => {
                    self.bump();
                    init = Some(self.parse_expr(0, true));
                    self.eat_punct(";");
                    break;
                }
                Some(t) if depth == 0 && t.is_punct(";") => {
                    self.bump();
                    break;
                }
                Some(t) => {
                    if t.is_punct("(") || t.is_punct("[") || t.is_punct("<") {
                        depth += 1;
                    } else if t.is_punct(")") || t.is_punct("]") || t.is_punct(">") {
                        depth -= 1;
                    } else if t.is_punct("<<") {
                        depth += 2;
                    } else if t.is_punct(">>") {
                        depth -= 2;
                    }
                    self.bump();
                }
            }
        }
        Item {
            kind: ItemKind::Static,
            name,
            hot,
            cold,
            span: Span {
                line: start.line,
                col: start.col,
                end_line: self.last_line().max(start.line),
            },
            params: Vec::new(),
            body: None,
            init,
            children: Vec::new(),
        }
    }

    /// `struct`/`enum`/`use`/`type`/`extern`/`macro_rules` — skipped to
    /// their terminating `;` or balanced `{}`/`()`/`[]` body.
    fn parse_other_keyword_item(&mut self, start: &Tok, hot: bool, cold: bool) -> Item {
        let kw = self.bump().map(|t| t.text.clone()).unwrap_or_default();
        let mut name = String::new();
        loop {
            match self.peek(0) {
                None => break,
                Some(t) if t.is_punct(";") => {
                    self.bump();
                    break;
                }
                Some(t) if t.is_punct("{") => {
                    self.skip_balanced("{", "}");
                    break;
                }
                Some(t) if kw == "macro_rules" && t.is_punct("(") => {
                    self.skip_balanced("(", ")");
                    break;
                }
                Some(t) if t.is_punct("<") => self.skip_generics(),
                Some(t) if t.is_punct("(") => self.skip_balanced("(", ")"),
                Some(t) => {
                    if name.is_empty() && t.kind == TokKind::Ident {
                        name = t.text.clone();
                    }
                    self.bump();
                }
            }
        }
        Item {
            kind: ItemKind::Other,
            name,
            hot,
            cold,
            span: Span {
                line: start.line,
                col: start.col,
                end_line: self.last_line().max(start.line),
            },
            params: Vec::new(),
            body: None,
            init: None,
            children: Vec::new(),
        }
    }

    // ---- statements and blocks ------------------------------------

    /// Parses a `{ … }` block; the cursor must sit on `{` (tolerated if
    /// not: returns an empty block).
    fn parse_block(&mut self, depth: u32) -> Block {
        let start = match self.peek(0) {
            Some(t) if t.is_punct("{") => {
                let s = Span::at(t);
                self.bump();
                s
            }
            Some(t) => Span::at(t),
            None => Span {
                line: self.last_line(),
                col: 1,
                end_line: self.last_line(),
            },
        };
        if depth > MAX_DEPTH {
            // Too deep: consume to the matching brace opaquely.
            let mut d = 1i32;
            while d > 0 {
                let Some(t) = self.bump() else { break };
                if t.is_punct("{") {
                    d += 1;
                } else if t.is_punct("}") {
                    d -= 1;
                }
            }
            return Block {
                stmts: Vec::new(),
                span: Span {
                    end_line: self.last_line().max(start.line),
                    ..start
                },
            };
        }
        let mut stmts = Vec::new();
        loop {
            if self.at_punct("}") {
                self.bump();
                break;
            }
            if self.peek(0).is_none() {
                break;
            }
            let before = self.pos;
            if let Some(s) = self.parse_stmt(depth) {
                stmts.push(s);
            }
            if self.pos == before {
                self.bump();
            }
        }
        Block {
            stmts,
            span: Span {
                end_line: self.last_line().max(start.line),
                ..start
            },
        }
    }

    fn parse_stmt(&mut self, depth: u32) -> Option<Stmt> {
        while self.skip_attr() {}
        if self.eat_punct(";") {
            return None;
        }
        let t = self.peek(0)?;
        if t.is_ident("let") {
            return Some(self.parse_let(depth));
        }
        // Nested items. `unsafe` only counts as an item prefix when an
        // item keyword follows — `unsafe { … }` is an expression.
        let item_like = t.kind == TokKind::Ident
            && match t.text.as_str() {
                "fn" | "struct" | "enum" | "trait" | "impl" | "mod" | "use" | "static" | "type"
                | "macro_rules" => true,
                "const" => {
                    // `const` item vs `const` in expr position (rare):
                    // treat as item when an ident follows.
                    self.peek(1).is_some_and(|n| n.kind == TokKind::Ident)
                }
                "pub" => true,
                _ => false,
            };
        if item_like {
            return self.parse_item().map(Stmt::Item);
        }
        let e = self.parse_expr(depth, true);
        self.eat_punct(";");
        Some(Stmt::Expr(e))
    }

    /// `let <pat>(: ty)? (= expr)? (else { … })? ;`
    fn parse_let(&mut self, depth: u32) -> Stmt {
        let start = Span::at(self.peek(0).expect("checked"));
        self.bump(); // let
                     // Pattern: collect bound idents up to a top-level `=`, `:`, or `;`.
        let mut names = Vec::new();
        let mut pdepth = 0i32;
        loop {
            match self.peek(0) {
                None => break,
                Some(t)
                    if pdepth == 0 && (t.is_punct("=") || t.is_punct(":") || t.is_punct(";")) =>
                {
                    break
                }
                Some(t) => {
                    if t.is_punct("(") || t.is_punct("[") || t.is_punct("<") {
                        pdepth += 1;
                    } else if t.is_punct(")") || t.is_punct("]") || t.is_punct(">") {
                        pdepth -= 1;
                    } else if t.kind == TokKind::Ident
                        && !matches!(t.text.as_str(), "mut" | "ref" | "box")
                        && {
                            let upper = t
                                .text
                                .chars()
                                .next()
                                .is_some_and(|c| c.is_ascii_uppercase());
                            !self.peek(1).is_some_and(|n| {
                                n.is_punct("::") || n.is_punct("(") || (upper && n.is_punct("{"))
                            })
                        }
                    {
                        // A lowercase ident not followed by `::`/`(`/`{`
                        // is a binding; `Some(x)` contributes only `x`.
                        names.push(t.text.clone());
                    }
                    self.bump();
                }
            }
        }
        // Optional type ascription: skip to top-level `=` or `;`.
        if self.at_punct(":") {
            self.bump();
            let mut tdepth = 0i32;
            loop {
                match self.peek(0) {
                    None => break,
                    Some(t) if tdepth == 0 && (t.is_punct("=") || t.is_punct(";")) => break,
                    Some(t) => {
                        if t.is_punct("(") || t.is_punct("[") || t.is_punct("<") {
                            tdepth += 1;
                        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct(">") {
                            tdepth -= 1;
                        } else if t.is_punct("<<") {
                            tdepth += 2;
                        } else if t.is_punct(">>") {
                            tdepth -= 2;
                        }
                        self.bump();
                    }
                }
            }
        }
        let mut init = None;
        if self.eat_punct("=") {
            init = Some(self.parse_expr(depth, true));
        }
        // let-else
        if self.at_ident("else") {
            self.bump();
            let blk = self.parse_block(depth + 1);
            if let Some(i) = init.take() {
                let span = i.span;
                init = Some(Expr {
                    kind: ExprKind::Group(vec![
                        i,
                        Expr {
                            span: blk.span,
                            kind: ExprKind::Block(blk),
                        },
                    ]),
                    span,
                });
            }
        }
        self.eat_punct(";");
        Stmt::Let {
            names,
            init,
            span: Span {
                end_line: self.last_line().max(start.line),
                ..start
            },
        }
    }

    // ---- expressions ----------------------------------------------

    /// Full expression: prefix/primary, postfix chain, then a fold of
    /// binary operators into a `Group`. `struct_ok` is false inside
    /// `if`/`while`/`for`/`match` headers, where `{` opens the body.
    fn parse_expr(&mut self, depth: u32, struct_ok: bool) -> Expr {
        if depth > MAX_DEPTH {
            let t = self.bump();
            let span = t.map(Span::at).unwrap_or(Span {
                line: self.last_line(),
                col: 1,
                end_line: self.last_line(),
            });
            return Expr {
                kind: ExprKind::Atom(t.map(|t| t.text.clone()).unwrap_or_default()),
                span,
            };
        }
        let first = self.parse_unary(depth, struct_ok);
        let mut parts = vec![first];
        while let Some(t) = self.peek(0) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>=" => {
                        self.bump();
                        let value = self.parse_expr(depth + 1, struct_ok);
                        let target = if parts.len() == 1 {
                            parts.pop().expect("one element")
                        } else {
                            let span = parts[0].span;
                            Expr {
                                kind: ExprKind::Group(std::mem::take(&mut parts)),
                                span,
                            }
                        };
                        let span = Span {
                            line: target.span.line,
                            col: target.span.col,
                            end_line: value.span.end_line,
                        };
                        return Expr {
                            kind: ExprKind::Assign {
                                target: Box::new(target),
                                value: Box::new(value),
                            },
                            span,
                        };
                    }
                    "+" | "-" | "*" | "/" | "%" | "==" | "!=" | "<" | ">" | "<=" | ">=" | "&&"
                    | "||" | "&" | "|" | "^" | "<<" | ">>" | ".." | "..=" => {
                        self.bump();
                        // Ranges may be open-ended (`..` at end).
                        if self.expr_terminator(struct_ok) {
                            break;
                        }
                        parts.push(self.parse_unary(depth + 1, struct_ok));
                    }
                    _ => break,
                }
            } else if t.is_ident("as") {
                // Cast: consume `as` plus a path-ish type.
                self.bump();
                while self.peek(0).is_some_and(|t| {
                    t.kind == TokKind::Ident
                        || t.is_punct("::")
                        || t.is_punct("*")
                        || t.is_punct("&")
                }) {
                    self.bump();
                }
            } else {
                break;
            }
        }
        if parts.len() == 1 {
            parts.pop().expect("one element")
        } else {
            let span = Span {
                line: parts[0].span.line,
                col: parts[0].span.col,
                end_line: parts.last().expect("non-empty").span.end_line,
            };
            Expr {
                kind: ExprKind::Group(parts),
                span,
            }
        }
    }

    fn expr_terminator(&self, struct_ok: bool) -> bool {
        match self.peek(0) {
            None => true,
            Some(t) => {
                t.is_punct(";")
                    || t.is_punct(",")
                    || t.is_punct(")")
                    || t.is_punct("]")
                    || t.is_punct("}")
                    || (!struct_ok && t.is_punct("{"))
            }
        }
    }

    /// Prefix operators then a postfix chain.
    fn parse_unary(&mut self, depth: u32, struct_ok: bool) -> Expr {
        // Prefix tokens that do not change the node we build.
        while let Some(t) = self.peek(0) {
            let is_prefix =
                t.is_punct("&") || t.is_punct("*") || t.is_punct("!") || t.is_punct("-");
            let is_kw_prefix = t.is_ident("mut") || t.is_ident("box") || t.is_ident("dyn");
            if is_prefix || is_kw_prefix {
                self.bump();
            } else {
                break;
            }
        }
        let mut e = self.parse_primary(depth, struct_ok);
        // Postfix: `.method(…)`, `.field`, `?`, `(…)`, `[…]`.
        while let Some(t) = self.peek(0) {
            if t.is_punct("?") {
                self.bump();
                e.span.end_line = self.last_line().max(e.span.end_line);
                continue;
            }
            if t.is_punct(".") {
                let Some(n) = self.peek(1) else {
                    self.bump();
                    break;
                };
                if n.kind == TokKind::Ident {
                    let method = n.text.clone();
                    self.bump(); // .
                    self.bump(); // ident
                                 // Turbofish on the method.
                    if self.at_punct("::") {
                        self.bump();
                        self.skip_generics();
                    }
                    if self.at_punct("(") {
                        let args = self.parse_call_args(depth + 1);
                        let span = Span {
                            line: e.span.line,
                            col: e.span.col,
                            end_line: self.last_line().max(e.span.line),
                        };
                        e = Expr {
                            kind: ExprKind::MethodCall {
                                recv: Box::new(e),
                                method,
                                args,
                            },
                            span,
                        };
                    } else {
                        let span = Span {
                            line: e.span.line,
                            col: e.span.col,
                            end_line: self.last_line().max(e.span.line),
                        };
                        e = Expr {
                            kind: ExprKind::Field {
                                recv: Box::new(e),
                                name: method,
                            },
                            span,
                        };
                    }
                    continue;
                }
                if n.kind == TokKind::Int || n.kind == TokKind::Float {
                    // Tuple index (`.0`, and `.0.1` lexed as a float).
                    let name = n.text.clone();
                    self.bump();
                    self.bump();
                    let span = Span {
                        line: e.span.line,
                        col: e.span.col,
                        end_line: self.last_line().max(e.span.line),
                    };
                    e = Expr {
                        kind: ExprKind::Field {
                            recv: Box::new(e),
                            name,
                        },
                        span,
                    };
                    continue;
                }
                self.bump();
                continue;
            }
            if t.is_punct("(") {
                let args = self.parse_call_args(depth + 1);
                let span = Span {
                    line: e.span.line,
                    col: e.span.col,
                    end_line: self.last_line().max(e.span.line),
                };
                e = Expr {
                    kind: ExprKind::Call {
                        callee: Box::new(e),
                        args,
                    },
                    span,
                };
                continue;
            }
            if t.is_punct("[") {
                self.bump();
                let mut inner = Vec::new();
                while !self.at_punct("]") && self.peek(0).is_some() {
                    let before = self.pos;
                    inner.push(self.parse_expr(depth + 1, true));
                    self.eat_punct(",");
                    if self.pos == before {
                        self.bump();
                    }
                }
                self.eat_punct("]");
                let span = Span {
                    line: e.span.line,
                    col: e.span.col,
                    end_line: self.last_line().max(e.span.line),
                };
                let mut parts = vec![e];
                parts.extend(inner);
                e = Expr {
                    kind: ExprKind::Group(parts),
                    span,
                };
                continue;
            }
            break;
        }
        e
    }

    /// `( a, b, … )` with the cursor on `(`.
    fn parse_call_args(&mut self, depth: u32) -> Vec<Expr> {
        let mut args = Vec::new();
        if !self.eat_punct("(") {
            return args;
        }
        loop {
            if self.at_punct(")") {
                self.bump();
                break;
            }
            if self.peek(0).is_none() {
                break;
            }
            let before = self.pos;
            args.push(self.parse_expr(depth, true));
            self.eat_punct(",");
            if self.pos == before {
                self.bump();
            }
        }
        args
    }

    fn parse_primary(&mut self, depth: u32, struct_ok: bool) -> Expr {
        let Some(t) = self.peek(0) else {
            return Expr::unit(Span {
                line: self.last_line(),
                col: 1,
                end_line: self.last_line(),
            });
        };
        let start = Span::at(t);
        // Keyword forms.
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "if" => return self.parse_if(depth),
                "match" => return self.parse_match(depth),
                "for" => return self.parse_for(depth),
                "while" => return self.parse_while(depth),
                "loop" => {
                    self.bump();
                    let body = self.parse_block(depth + 1);
                    return Expr {
                        span: Span {
                            end_line: body.span.end_line,
                            ..start
                        },
                        kind: ExprKind::Loop {
                            kind: LoopKind::Loop,
                            bindings: Vec::new(),
                            header: None,
                            body,
                        },
                    };
                }
                "unsafe" if self.peek(1).is_some_and(|n| n.is_punct("{")) => {
                    self.bump();
                    let b = self.parse_block(depth + 1);
                    return Expr {
                        span: Span {
                            end_line: b.span.end_line,
                            ..start
                        },
                        kind: ExprKind::Block(b),
                    };
                }
                "move" => {
                    self.bump();
                    // Must be a closure next.
                    return self.parse_primary(depth, struct_ok);
                }
                "return" | "break" | "continue" | "yield" => {
                    self.bump();
                    if self.expr_terminator(struct_ok) || self.peek(0).is_none() {
                        return Expr {
                            kind: ExprKind::Group(Vec::new()),
                            span: start,
                        };
                    }
                    // Loop labels after break/continue.
                    if self.peek(0).is_some_and(|t| t.kind == TokKind::Lifetime) {
                        self.bump();
                        if self.expr_terminator(struct_ok) {
                            return Expr {
                                kind: ExprKind::Group(Vec::new()),
                                span: start,
                            };
                        }
                    }
                    let inner = self.parse_expr(depth + 1, struct_ok);
                    let span = Span {
                        end_line: inner.span.end_line,
                        ..start
                    };
                    return Expr {
                        kind: ExprKind::Group(vec![inner]),
                        span,
                    };
                }
                _ => {}
            }
        }
        // Labeled loops: `'outer: loop { … }`.
        if t.kind == TokKind::Lifetime {
            self.bump();
            self.eat_punct(":");
            return self.parse_primary(depth, struct_ok);
        }
        // Closures.
        if t.is_punct("||") {
            self.bump();
            let body = self.parse_closure_body(depth);
            let span = Span {
                end_line: body.span.end_line,
                ..start
            };
            return Expr {
                kind: ExprKind::Closure {
                    params: Vec::new(),
                    body: Box::new(body),
                },
                span,
            };
        }
        if t.is_punct("|") {
            self.bump();
            let mut params = Vec::new();
            let mut pdepth = 0i32;
            loop {
                match self.peek(0) {
                    None => break,
                    Some(p) if pdepth == 0 && p.is_punct("|") => {
                        self.bump();
                        break;
                    }
                    Some(p) => {
                        if p.is_punct("(") || p.is_punct("[") || p.is_punct("<") {
                            pdepth += 1;
                        } else if p.is_punct(")") || p.is_punct("]") || p.is_punct(">") {
                            pdepth -= 1;
                        } else if p.kind == TokKind::Ident
                            && !matches!(p.text.as_str(), "mut" | "ref")
                            && pdepth == 0
                            && !self.peek(1).is_some_and(|n| n.is_punct("::"))
                        {
                            // Skip type-position idents (`x: &Foo`): a
                            // param name is an ident at depth 0 directly
                            // after `|` or `,` — approximated by only
                            // taking idents not preceded by `:`.
                            params.push(p.text.clone());
                        }
                        self.bump();
                    }
                }
            }
            // Optional return type `-> T` before the body.
            if self.at_punct("->") {
                while let Some(p) = self.peek(0) {
                    if p.is_punct("{") {
                        break;
                    }
                    self.bump();
                }
            }
            let body = self.parse_closure_body(depth);
            let span = Span {
                end_line: body.span.end_line,
                ..start
            };
            return Expr {
                kind: ExprKind::Closure {
                    params,
                    body: Box::new(body),
                },
                span,
            };
        }
        // Grouping / tuples.
        if t.is_punct("(") {
            self.bump();
            let mut inner = Vec::new();
            loop {
                if self.at_punct(")") {
                    self.bump();
                    break;
                }
                if self.peek(0).is_none() {
                    break;
                }
                let before = self.pos;
                inner.push(self.parse_expr(depth + 1, true));
                self.eat_punct(",");
                if self.pos == before {
                    self.bump();
                }
            }
            let span = Span {
                end_line: self.last_line().max(start.line),
                ..start
            };
            return Expr {
                kind: ExprKind::Group(inner),
                span,
            };
        }
        // Array literals.
        if t.is_punct("[") {
            self.bump();
            let mut inner = Vec::new();
            loop {
                if self.at_punct("]") {
                    self.bump();
                    break;
                }
                if self.peek(0).is_none() {
                    break;
                }
                let before = self.pos;
                inner.push(self.parse_expr(depth + 1, true));
                if !self.eat_punct(",") {
                    self.eat_punct(";");
                }
                if self.pos == before {
                    self.bump();
                }
            }
            let span = Span {
                end_line: self.last_line().max(start.line),
                ..start
            };
            return Expr {
                kind: ExprKind::Group(inner),
                span,
            };
        }
        // Block expression.
        if t.is_punct("{") {
            let b = self.parse_block(depth + 1);
            return Expr {
                span: b.span,
                kind: ExprKind::Block(b),
            };
        }
        // Literals.
        if matches!(
            t.kind,
            TokKind::Int | TokKind::Float | TokKind::Str | TokKind::Char
        ) {
            self.bump();
            return Expr {
                kind: ExprKind::Lit(t.kind, t.text.clone()),
                span: start,
            };
        }
        // Paths, macro calls, struct literals.
        if t.kind == TokKind::Ident {
            let mut segs = vec![t.text.clone()];
            self.bump();
            loop {
                if self.at_punct("::") {
                    // `::<turbofish>` or `::segment`.
                    match self.peek(1) {
                        Some(n) if n.is_punct("<") => {
                            self.bump();
                            self.skip_generics();
                        }
                        Some(n) if n.kind == TokKind::Ident => {
                            segs.push(n.text.clone());
                            self.bump();
                            self.bump();
                        }
                        _ => {
                            self.bump();
                        }
                    }
                } else {
                    break;
                }
            }
            // Macro invocation.
            if self.at_punct("!")
                && self
                    .peek(1)
                    .is_some_and(|n| n.is_punct("(") || n.is_punct("[") || n.is_punct("{"))
            {
                self.bump(); // !
                let (open, close) = match self.peek(0) {
                    Some(n) if n.is_punct("[") => ("[", "]"),
                    Some(n) if n.is_punct("{") => ("{", "}"),
                    _ => ("(", ")"),
                };
                self.bump();
                let mut args = Vec::new();
                let mut d = 1i32;
                loop {
                    if self.peek(0).is_none() {
                        break;
                    }
                    if self.at_punct(close) && d == 1 {
                        self.bump();
                        break;
                    }
                    let before = self.pos;
                    args.push(self.parse_expr(depth + 1, true));
                    // Separators inside macros.
                    while self.eat_punct(",") || self.eat_punct(";") {}
                    if self.pos == before {
                        let t = self.bump();
                        if let Some(t) = t {
                            if t.is_punct(open) {
                                d += 1;
                            } else if t.is_punct(close) {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                        }
                    }
                }
                let span = Span {
                    end_line: self.last_line().max(start.line),
                    ..start
                };
                return Expr {
                    kind: ExprKind::Macro {
                        name: segs.last().cloned().unwrap_or_default(),
                        args,
                    },
                    span,
                };
            }
            // Struct literal.
            if struct_ok
                && self.at_punct("{")
                && segs
                    .last()
                    .and_then(|s| s.chars().next())
                    .is_some_and(|c| c.is_ascii_uppercase())
            {
                self.bump();
                let mut fields = Vec::new();
                loop {
                    if self.at_punct("}") {
                        self.bump();
                        break;
                    }
                    if self.peek(0).is_none() {
                        break;
                    }
                    // `name: expr` | `name` | `..base`
                    let before = self.pos;
                    if self.peek(0).is_some_and(|t| t.kind == TokKind::Ident)
                        && self.peek(1).is_some_and(|n| n.is_punct(":"))
                    {
                        self.bump();
                        self.bump();
                    }
                    fields.push(self.parse_expr(depth + 1, true));
                    self.eat_punct(",");
                    if self.pos == before {
                        self.bump();
                    }
                }
                let span = Span {
                    end_line: self.last_line().max(start.line),
                    ..start
                };
                return Expr {
                    kind: ExprKind::Group(fields),
                    span,
                };
            }
            return Expr {
                kind: ExprKind::Path(segs),
                span: Span {
                    end_line: self.last_line().max(start.line),
                    ..start
                },
            };
        }
        // Opaque single token.
        self.bump();
        Expr {
            kind: ExprKind::Atom(t.text.clone()),
            span: start,
        }
    }

    fn parse_closure_body(&mut self, depth: u32) -> Expr {
        if self.at_punct("{") {
            let b = self.parse_block(depth + 1);
            Expr {
                span: b.span,
                kind: ExprKind::Block(b),
            }
        } else {
            self.parse_expr(depth + 1, true)
        }
    }

    fn parse_if(&mut self, depth: u32) -> Expr {
        let start = Span::at(self.peek(0).expect("checked"));
        self.bump(); // if
        self.skip_let_pattern();
        let cond = self.parse_expr(depth + 1, false);
        let then = self.parse_block(depth + 1);
        let mut els = None;
        if self.at_ident("else") {
            self.bump();
            let e = if self.at_ident("if") {
                self.parse_if(depth + 1)
            } else {
                let b = self.parse_block(depth + 1);
                Expr {
                    span: b.span,
                    kind: ExprKind::Block(b),
                }
            };
            els = Some(Box::new(e));
        }
        Expr {
            span: Span {
                end_line: self.last_line().max(start.line),
                ..start
            },
            kind: ExprKind::If {
                cond: Box::new(cond),
                then,
                els,
            },
        }
    }

    /// For `if let P = e` / `while let P = e`: skips `let <pat> =`.
    fn skip_let_pattern(&mut self) {
        if !self.at_ident("let") {
            return;
        }
        self.bump();
        let mut depth = 0i32;
        loop {
            match self.peek(0) {
                None => return,
                Some(t) if depth == 0 && t.is_punct("=") => {
                    self.bump();
                    return;
                }
                Some(t) if depth == 0 && t.is_punct("{") => return,
                Some(t) => {
                    if t.is_punct("(") || t.is_punct("[") {
                        depth += 1;
                    } else if t.is_punct(")") || t.is_punct("]") {
                        depth -= 1;
                    }
                    self.bump();
                }
            }
        }
    }

    fn parse_while(&mut self, depth: u32) -> Expr {
        let start = Span::at(self.peek(0).expect("checked"));
        self.bump(); // while
        self.skip_let_pattern();
        let cond = self.parse_expr(depth + 1, false);
        let body = self.parse_block(depth + 1);
        Expr {
            span: Span {
                end_line: body.span.end_line,
                ..start
            },
            kind: ExprKind::Loop {
                kind: LoopKind::While,
                bindings: Vec::new(),
                header: Some(Box::new(cond)),
                body,
            },
        }
    }

    fn parse_for(&mut self, depth: u32) -> Expr {
        let start = Span::at(self.peek(0).expect("checked"));
        self.bump(); // for
                     // Pattern idents up to `in`.
        let mut bindings = Vec::new();
        let mut pdepth = 0i32;
        loop {
            match self.peek(0) {
                None => break,
                Some(t) if pdepth == 0 && t.is_ident("in") => {
                    self.bump();
                    break;
                }
                Some(t) if t.is_punct("{") => break, // malformed; bail
                Some(t) => {
                    if t.is_punct("(") || t.is_punct("[") {
                        pdepth += 1;
                    } else if t.is_punct(")") || t.is_punct("]") {
                        pdepth -= 1;
                    } else if t.kind == TokKind::Ident && !matches!(t.text.as_str(), "mut" | "ref")
                    {
                        bindings.push(t.text.clone());
                    }
                    self.bump();
                }
            }
        }
        let header = self.parse_expr(depth + 1, false);
        let body = self.parse_block(depth + 1);
        Expr {
            span: Span {
                end_line: body.span.end_line,
                ..start
            },
            kind: ExprKind::Loop {
                kind: LoopKind::For,
                bindings,
                header: Some(Box::new(header)),
                body,
            },
        }
    }

    fn parse_match(&mut self, depth: u32) -> Expr {
        let start = Span::at(self.peek(0).expect("checked"));
        self.bump(); // match
        let scrutinee = self.parse_expr(depth + 1, false);
        let mut arms = Vec::new();
        if self.eat_punct("{") {
            loop {
                if self.at_punct("}") {
                    self.bump();
                    break;
                }
                if self.peek(0).is_none() {
                    break;
                }
                let before = self.pos;
                // Skip the pattern (and optional `if` guard) to `=>`.
                let mut d = 0i32;
                loop {
                    match self.peek(0) {
                        None => break,
                        Some(t) if d == 0 && t.is_punct("=>") => {
                            self.bump();
                            break;
                        }
                        Some(t) if d == 0 && t.is_punct("}") => break,
                        Some(t) => {
                            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                                d += 1;
                            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                                d -= 1;
                            }
                            self.bump();
                        }
                    }
                }
                if self.at_punct("}") {
                    self.bump();
                    break;
                }
                arms.push(self.parse_expr(depth + 1, true));
                self.eat_punct(",");
                if self.pos == before {
                    self.bump();
                }
            }
        }
        Expr {
            span: Span {
                end_line: self.last_line().max(start.line),
                ..start
            },
            kind: ExprKind::Match {
                scrutinee: Box::new(scrutinee),
                arms,
            },
        }
    }
}

// ---- AST helpers ---------------------------------------------------

/// Depth-first walk over every function item in the AST (including
/// functions nested in `impl`/`mod`/`trait` bodies), in source order.
pub fn for_each_fn<'a>(items: &'a [Item], f: &mut impl FnMut(&'a Item)) {
    for item in items {
        if item.kind == ItemKind::Fn {
            f(item);
        }
        for_each_fn(&item.children, f);
    }
}

/// Depth-first walk over every `Static` item with an initializer,
/// including statement-level statics declared inside function bodies
/// (the workspace's `static OBS_X: Counter = Counter::new("…")` idiom
/// scopes the instrument to the function that bumps it).
pub fn for_each_static<'a>(items: &'a [Item], f: &mut impl FnMut(&'a Item)) {
    for item in items {
        if item.kind == ItemKind::Static && item.init.is_some() {
            f(item);
        }
        if let Some(body) = &item.body {
            for_each_static_in_block(body, f);
        }
        for_each_static(&item.children, f);
    }
}

fn for_each_static_in_block<'a>(block: &'a Block, f: &mut impl FnMut(&'a Item)) {
    for stmt in &block.stmts {
        if let Stmt::Item(item) = stmt {
            for_each_static(std::slice::from_ref(item), f);
        }
    }
}

/// Renders the leading path of a call's callee, e.g. `Vec::new` or
/// `rfkit_obs::span`; empty when the callee is not a plain path.
pub fn callee_path(e: &Expr) -> String {
    match &e.kind {
        ExprKind::Path(segs) => segs.join("::"),
        _ => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn parse_src(src: &str) -> Ast {
        parse(&tokenize(src))
    }

    fn first_fn(ast: &Ast) -> &Item {
        let mut out = None;
        for_each_fn(&ast.items, &mut |f| {
            if out.is_none() {
                out = Some(f);
            }
        });
        out.expect("a function")
    }

    #[test]
    fn parses_fn_with_params_and_body() {
        let ast = parse_src("pub fn f(a: f64, mut b: usize) -> f64 { a + b as f64 }");
        let f = first_fn(&ast);
        assert_eq!(f.name, "f");
        assert_eq!(f.params, ["a", "b"]);
        assert!(f.body.is_some());
    }

    #[test]
    fn parses_impl_and_nested_fns() {
        let ast = parse_src(
            "impl Foo {\n    pub fn a(&self) {}\n    fn b(&mut self, x: u32) -> u32 { x }\n}\n",
        );
        assert_eq!(ast.items.len(), 1);
        assert_eq!(ast.items[0].kind, ItemKind::Impl);
        assert_eq!(ast.items[0].name, "Foo");
        let mut names = Vec::new();
        for_each_fn(&ast.items, &mut |f| names.push(f.name.clone()));
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn loop_nesting_and_bindings() {
        let ast = parse_src(
            "fn f(grid: &[f64]) {\n    for (i, g) in grid.iter().enumerate() {\n        while i < 10 {\n            work(g);\n        }\n    }\n}\n",
        );
        let f = first_fn(&ast);
        let body = f.body.as_ref().unwrap();
        let Stmt::Expr(Expr {
            kind:
                ExprKind::Loop {
                    kind,
                    bindings,
                    body: inner,
                    ..
                },
            ..
        }) = &body.stmts[0]
        else {
            panic!("expected for loop, got {:?}", body.stmts[0]);
        };
        assert_eq!(*kind, LoopKind::For);
        assert_eq!(bindings, &["i", "g"]);
        let Stmt::Expr(Expr {
            kind: ExprKind::Loop { kind: k2, .. },
            ..
        }) = &inner.stmts[0]
        else {
            panic!("expected nested while");
        };
        assert_eq!(*k2, LoopKind::While);
    }

    #[test]
    fn method_chains_and_calls() {
        let ast = parse_src("fn f(v: &[f64]) -> Vec<f64> { v.iter().map(|x| x * 2.0).collect() }");
        let f = first_fn(&ast);
        let body = f.body.as_ref().unwrap();
        let Stmt::Expr(e) = &body.stmts[0] else {
            panic!("expr stmt");
        };
        // Outermost is .collect()
        let ExprKind::MethodCall { method, recv, .. } = &e.kind else {
            panic!("method call, got {:?}", e.kind);
        };
        assert_eq!(method, "collect");
        let ExprKind::MethodCall {
            method: m2, args, ..
        } = &recv.kind
        else {
            panic!("map");
        };
        assert_eq!(m2, "map");
        assert!(matches!(args[0].kind, ExprKind::Closure { .. }));
    }

    #[test]
    fn let_with_patterns_and_types() {
        let ast = parse_src(
            "fn f() {\n    let (a, b) = (1, 2);\n    let mut v: Vec<f64> = Vec::new();\n    let Some(x) = opt else { return };\n}\n",
        );
        let f = first_fn(&ast);
        let body = f.body.as_ref().unwrap();
        let Stmt::Let { names, .. } = &body.stmts[0] else {
            panic!("let");
        };
        assert_eq!(names, &["a", "b"]);
        let Stmt::Let {
            names: n2, init, ..
        } = &body.stmts[1]
        else {
            panic!("let 2");
        };
        assert_eq!(n2, &["v"]);
        let init = init.as_ref().unwrap();
        assert!(matches!(&init.kind,
            ExprKind::Call { callee, .. } if callee_path(callee) == "Vec::new"));
        let Stmt::Let { names: n3, .. } = &body.stmts[2] else {
            panic!("let-else");
        };
        assert_eq!(n3, &["x"]);
    }

    #[test]
    fn statics_keep_initializer_calls() {
        let ast = parse_src("static C: rfkit_obs::Counter = rfkit_obs::Counter::new(\"a.b\");\n");
        assert_eq!(ast.items[0].kind, ItemKind::Static);
        assert_eq!(ast.items[0].name, "C");
        let init = ast.items[0].init.as_ref().unwrap();
        let ExprKind::Call { callee, args } = &init.kind else {
            panic!("call, got {:?}", init.kind);
        };
        assert_eq!(callee_path(callee), "rfkit_obs::Counter::new");
        assert!(matches!(&args[0].kind, ExprKind::Lit(TokKind::Str, s) if s == "\"a.b\""));
    }

    #[test]
    fn match_arms_are_parsed() {
        let ast = parse_src(
            "fn f(x: Option<u32>) -> u32 {\n    match x {\n        Some(v) if v > 2 => v,\n        None => fallback(),\n        _ => 0,\n    }\n}\n",
        );
        let f = first_fn(&ast);
        let Stmt::Expr(Expr {
            kind: ExprKind::Match { arms, .. },
            ..
        }) = &f.body.as_ref().unwrap().stmts[0]
        else {
            panic!("match");
        };
        assert_eq!(arms.len(), 3);
        assert!(matches!(&arms[1].kind,
            ExprKind::Call { callee, .. } if callee_path(callee) == "fallback"));
    }

    #[test]
    fn hot_marker_is_attached() {
        let ast = parse_src("// rfkit-hot\npub fn fast() {}\nfn cold() {}\n");
        let mut hot = Vec::new();
        for_each_fn(&ast.items, &mut |f| hot.push((f.name.clone(), f.hot)));
        assert_eq!(hot, [("fast".into(), true), ("cold".into(), false)]);
    }

    #[test]
    fn macros_parse_inner_expressions() {
        let ast = parse_src("fn f(n: usize) { let v = vec![0.0; n]; assert!(n > 0, \"n\"); }");
        let f = first_fn(&ast);
        let Stmt::Let { init, .. } = &f.body.as_ref().unwrap().stmts[0] else {
            panic!("let");
        };
        assert!(matches!(&init.as_ref().unwrap().kind,
            ExprKind::Macro { name, .. } if name == "vec"));
    }

    #[test]
    fn struct_literals_and_if_headers_disambiguate() {
        let ast = parse_src(
            "fn f(c: Cfg) -> Point {\n    if c.fast { return Point { x: 1, y: 2 }; }\n    Point { x: 0, y: 0 }\n}\n",
        );
        let f = first_fn(&ast);
        assert_eq!(f.body.as_ref().unwrap().stmts.len(), 2);
    }

    #[test]
    fn never_panics_on_garbage() {
        for src in [
            "fn f( {",
            "impl {{{",
            "let x = ;;;",
            "match { => , }",
            "for in in in {}",
            "fn f() { v.iter(.map(|x| }",
            ") } ] >::",
            "fn f() { a.0.1; b?.c()?; }",
        ] {
            let ast = parse_src(src);
            // Walk it to make sure spans and structure are sane.
            for_each_fn(&ast.items, &mut |f| {
                assert!(f.span.end_line >= f.span.line);
            });
        }
    }

    #[test]
    fn all_tokens_consumed_even_with_unbalanced_input() {
        // Progress guarantee: parse() terminates and consumes the whole
        // stream (implicitly tested by returning at all); spans stay
        // ordered.
        let ast = parse_src("fn a() {} garbage ![ ) fn b() {}");
        let mut names = Vec::new();
        for_each_fn(&ast.items, &mut |f| names.push(f.name.clone()));
        assert!(names.contains(&"a".to_string()));
    }
}
