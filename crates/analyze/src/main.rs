//! Command-line driver for the rfkit workspace lint engine.
//!
//! ```text
//! rfkit-analyze [--root DIR] [--deny errors|warnings|info]
//!               [--json PATH] [--baseline PATH] [--fix-dry-run]
//!               [--dump-obs-names] [--quiet] [--list-lints]
//! ```
//!
//! Prints `severity[lint] file:line:col: message` per finding, writes a
//! JSON report (default `<root>/results/ANALYZE.json`), and exits 1 when
//! any non-suppressed finding is at or above the deny level. With
//! `--baseline`, only findings NEW relative to the committed report fail
//! the run; the delta (new/fixed/pre-existing) is printed either way.

use rfkit_analyze::baseline::Baseline;
use rfkit_analyze::report::{to_json, Severity};
use rfkit_analyze::{analyze_tree_files, contract, lints};
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage(err: &str) -> ExitCode {
    eprintln!("rfkit-analyze: {err}");
    eprintln!(
        "usage: rfkit-analyze [--root DIR] [--deny errors|warnings|info] \
         [--json PATH] [--baseline PATH] [--fix-dry-run] [--dump-obs-names] \
         [--quiet] [--list-lints]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny = Severity::Error;
    let mut json_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut quiet = false;
    let mut fix_dry_run = false;
    let mut dump_obs_names = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(v) => root = v.into(),
                None => return usage("--root needs a directory"),
            },
            "--deny" => match args.next().as_deref() {
                Some("errors" | "error") => deny = Severity::Error,
                Some("warnings" | "warning") => deny = Severity::Warning,
                Some("info") => deny = Severity::Info,
                _ => return usage("--deny takes errors|warnings|info"),
            },
            "--json" => match args.next() {
                Some(v) => json_path = Some(v.into()),
                None => return usage("--json needs a path"),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline_path = Some(v.into()),
                None => return usage("--baseline needs a path"),
            },
            "--quiet" => quiet = true,
            "--fix-dry-run" => fix_dry_run = true,
            "--dump-obs-names" => dump_obs_names = true,
            "--list-lints" => {
                for l in lints::all() {
                    println!("{:<20} {}", l.name, l.description);
                }
                // The contract pass is tree-wide, not per-file, so it
                // is not in the per-file registry — list it anyway.
                println!("{:<20} {}", contract::NAME, contract::DESCRIPTION);
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                return usage("workspace lint engine");
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let (findings, sources) = match analyze_tree_files(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!(
                "rfkit-analyze: failed to read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    let files = sources.len();
    if files == 0 {
        // A lint gate that scanned nothing must not pass: a typo'd
        // --root would otherwise green-light CI silently.
        eprintln!(
            "rfkit-analyze: no .rs files found under {}; wrong --root?",
            root.display()
        );
        return ExitCode::from(2);
    }

    if dump_obs_names {
        // DESIGN.md-ready registry rows, one per distinct name.
        let mut emissions = contract::emitted_names(&sources);
        emissions.sort_by(|a, b| a.name.cmp(&b.name));
        emissions.dedup_by(|a, b| a.name == b.name);
        println!("| name | kind | emitted at |");
        println!("|---|---|---|");
        for e in &emissions {
            println!("| `{}` | {} | `{}:{}` |", e.name, e.kind, e.file, e.line);
        }
        return ExitCode::SUCCESS;
    }

    let baseline = match &baseline_path {
        None => None,
        // A relative baseline names a workspace artifact: resolve it
        // against --root, not the invoking shell's directory.
        Some(p) => match fs::read_to_string(if p.is_absolute() {
            p.clone()
        } else {
            root.join(p)
        })
        .map_err(|e| e.to_string())
        .and_then(|t| Baseline::parse(&t))
        {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!("rfkit-analyze: bad baseline {}: {e}", p.display());
                return ExitCode::from(2);
            }
        },
    };

    // With a baseline, only NEW findings are denied (and printed by
    // default); pre-existing ones are tolerated but still counted.
    let (new_findings, preexisting) = match &baseline {
        Some(b) => {
            let (new, old) = b.diff(&findings);
            (Some(new), old.len())
        }
        None => (None, 0),
    };

    if !quiet {
        match &new_findings {
            Some(new) => {
                for f in new.iter().filter(|f| !f.suppressed) {
                    println!("NEW {f}");
                }
            }
            None => {
                for f in findings.iter().filter(|f| !f.suppressed) {
                    println!("{f}");
                }
            }
        }
    }

    if fix_dry_run {
        let fixable = findings
            .iter()
            .filter(|f| !f.suppressed && f.suggestion.is_some());
        let mut n = 0usize;
        for f in fixable {
            let s = f.suggestion.as_deref().unwrap_or_default();
            println!(
                "fix[{}] {}:{}:{}: replace with `{s}`",
                f.lint, f.file, f.line, f.col
            );
            n += 1;
        }
        println!("rfkit-analyze: {n} machine-applicable suggestions (dry run, nothing written)");
    }

    let json = to_json(&findings, files);
    let json_path = json_path.unwrap_or_else(|| root.join("results").join("ANALYZE.json"));
    if let Some(dir) = json_path.parent() {
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("rfkit-analyze: cannot create {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    }
    if let Err(e) = fs::write(&json_path, json) {
        eprintln!("rfkit-analyze: cannot write {}: {e}", json_path.display());
        return ExitCode::from(2);
    }

    let count = |sev: Severity| {
        findings
            .iter()
            .filter(|f| !f.suppressed && f.severity == sev)
            .count()
    };
    let suppressed = findings.iter().filter(|f| f.suppressed).count();
    println!(
        "rfkit-analyze: {files} files, {} errors, {} warnings, {} info, \
         {suppressed} suppressed -> {}",
        count(Severity::Error),
        count(Severity::Warning),
        count(Severity::Info),
        json_path.display()
    );

    let denied = match (&baseline, &new_findings) {
        (Some(b), Some(new)) => {
            let denied_new = new
                .iter()
                .filter(|f| !f.suppressed && f.severity >= deny)
                .count();
            println!(
                "rfkit-analyze: baseline delta: {denied_new} new (denied), {} new total, \
                 {preexisting} pre-existing, {} fixed",
                new.len(),
                b.fixed_count(&findings)
            );
            denied_new > 0
        }
        _ => findings.iter().any(|f| !f.suppressed && f.severity >= deny),
    };
    if denied {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
