//! Command-line driver for the rfkit workspace lint engine.
//!
//! ```text
//! rfkit-analyze [--root DIR] [--deny errors|warnings|info]
//!               [--json PATH] [--quiet] [--list-lints]
//! ```
//!
//! Prints `severity[lint] file:line:col: message` per finding, writes a
//! JSON report (default `<root>/results/ANALYZE.json`), and exits 1 when
//! any non-suppressed finding is at or above the deny level.

use rfkit_analyze::report::{to_json, Severity};
use rfkit_analyze::{analyze_tree, lints};
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage(err: &str) -> ExitCode {
    eprintln!("rfkit-analyze: {err}");
    eprintln!(
        "usage: rfkit-analyze [--root DIR] [--deny errors|warnings|info] \
         [--json PATH] [--quiet] [--list-lints]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny = Severity::Error;
    let mut json_path: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(v) => root = v.into(),
                None => return usage("--root needs a directory"),
            },
            "--deny" => match args.next().as_deref() {
                Some("errors" | "error") => deny = Severity::Error,
                Some("warnings" | "warning") => deny = Severity::Warning,
                Some("info") => deny = Severity::Info,
                _ => return usage("--deny takes errors|warnings|info"),
            },
            "--json" => match args.next() {
                Some(v) => json_path = Some(v.into()),
                None => return usage("--json needs a path"),
            },
            "--quiet" => quiet = true,
            "--list-lints" => {
                for l in lints::all() {
                    println!("{:<20} {}", l.name, l.description);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                return usage("workspace lint engine");
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let (findings, files) = match analyze_tree(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!(
                "rfkit-analyze: failed to read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    if files == 0 {
        // A lint gate that scanned nothing must not pass: a typo'd
        // --root would otherwise green-light CI silently.
        eprintln!(
            "rfkit-analyze: no .rs files found under {}; wrong --root?",
            root.display()
        );
        return ExitCode::from(2);
    }

    if !quiet {
        for f in findings.iter().filter(|f| !f.suppressed) {
            println!("{f}");
        }
    }

    let json = to_json(&findings, files);
    let json_path = json_path.unwrap_or_else(|| root.join("results").join("ANALYZE.json"));
    if let Some(dir) = json_path.parent() {
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("rfkit-analyze: cannot create {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    }
    if let Err(e) = fs::write(&json_path, json) {
        eprintln!("rfkit-analyze: cannot write {}: {e}", json_path.display());
        return ExitCode::from(2);
    }

    let count = |sev: Severity| {
        findings
            .iter()
            .filter(|f| !f.suppressed && f.severity == sev)
            .count()
    };
    let suppressed = findings.iter().filter(|f| f.suppressed).count();
    println!(
        "rfkit-analyze: {files} files, {} errors, {} warnings, {} info, \
         {suppressed} suppressed -> {}",
        count(Severity::Error),
        count(Severity::Warning),
        count(Severity::Info),
        json_path.display()
    );

    let denied = findings.iter().any(|f| !f.suppressed && f.severity >= deny);
    if denied {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
