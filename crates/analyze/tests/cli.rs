//! End-to-end CLI tests: drive the built `rfkit-analyze` binary against
//! a scratch workspace and assert on stdout + exit codes for the
//! `--fix-dry-run`, `--baseline`, `--dump-obs-names`, and
//! `--list-lints` surfaces.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_rfkit-analyze")
}

/// Builds a minimal fake workspace (no ci.sh, so the contract pass is
/// inert) under a unique temp directory.
fn scratch_workspace(tag: &str) -> PathBuf {
    let root = std::env::temp_dir()
        .join("rfkit-analyze-cli")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(root.join("crates/x/src")).unwrap();
    fs::write(
        root.join("crates/x/src/lib.rs"),
        "pub fn f(v: &mut [f64], x: f64) -> bool {\n\
         \x20   v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n\
         \x20   x == 0.0\n\
         }\n",
    )
    .unwrap();
    root
}

fn run(root: &Path, args: &[&str]) -> Output {
    Command::new(bin())
        .arg("--root")
        .arg(root)
        .args(args)
        .output()
        .expect("spawn rfkit-analyze")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn fix_dry_run_prints_machine_applicable_suggestions() {
    let root = scratch_workspace("fixdry");
    let out = run(&root, &["--fix-dry-run", "--quiet"]);
    let text = stdout(&out);
    assert!(
        text.contains(
            "fix[nan-unsafe-sort] crates/x/src/lib.rs:2:7: \
             replace with `|a, b| rfkit_num::total_cmp_f64(a, b)`"
        ),
        "missing nan-unsafe-sort fix line in:\n{text}"
    );
    assert!(
        text.contains("replace with `rfkit_num::is_exact_zero(x)`"),
        "missing float-eq fix line in:\n{text}"
    );
    assert!(
        text.contains("2 machine-applicable suggestions (dry run, nothing written)"),
        "missing summary in:\n{text}"
    );
    // Dry run really wrote nothing back into the source.
    let src = fs::read_to_string(root.join("crates/x/src/lib.rs")).unwrap();
    assert!(src.contains("partial_cmp"));
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn baseline_tolerates_old_findings_and_fails_on_new() {
    let root = scratch_workspace("baseline");
    // First run commits the baseline (exit 1: warnings vs default deny
    // is fine, we deny warnings to make the gate meaningful).
    let first = run(&root, &["--deny", "warnings", "--quiet"]);
    assert_eq!(
        first.status.code(),
        Some(1),
        "seed run should fail --deny warnings"
    );
    let baseline = root.join("results/ANALYZE.json");
    assert!(baseline.is_file());

    // Unchanged tree + baseline: pre-existing findings are tolerated.
    let ok = run(
        &root,
        &[
            "--deny",
            "warnings",
            "--baseline",
            "results/ANALYZE.json",
            "--quiet",
        ],
    );
    let text = stdout(&ok);
    assert_eq!(
        ok.status.code(),
        Some(0),
        "no new findings must pass:\n{text}"
    );
    assert!(text.contains("0 new (denied)"), "{text}");
    assert!(text.contains("pre-existing"), "{text}");

    // Introduce a fresh finding in a new file: only it is denied.
    fs::write(
        root.join("crates/x/src/fresh.rs"),
        "pub fn g(o: Option<u32>) -> u32 { o.unwrap() }\n",
    )
    .unwrap();
    let bad = run(
        &root,
        &["--deny", "warnings", "--baseline", "results/ANALYZE.json"],
    );
    let text = stdout(&bad);
    assert_eq!(bad.status.code(), Some(1), "new finding must fail:\n{text}");
    assert!(
        text.contains("NEW warning[unwrap-in-lib] crates/x/src/fresh.rs"),
        "delta should list only the new finding:\n{text}"
    );
    assert!(
        !text.contains("NEW warning[nan-unsafe-sort]"),
        "pre-existing finding leaked into the delta:\n{text}"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn dump_obs_names_emits_registry_rows() {
    let root = scratch_workspace("dump");
    fs::write(
        root.join("crates/x/src/obs_use.rs"),
        "pub fn run() {\n    rfkit_obs::span(\"x.total\");\n}\n",
    )
    .unwrap();
    let out = run(&root, &["--dump-obs-names"]);
    let text = stdout(&out);
    assert_eq!(out.status.code(), Some(0));
    assert!(text.starts_with("| name | kind | emitted at |"), "{text}");
    assert!(
        text.contains("| `x.total` | span | `crates/x/src/obs_use.rs:2` |"),
        "{text}"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn list_lints_includes_the_contract_pass() {
    let out = Command::new(bin())
        .arg("--list-lints")
        .output()
        .expect("spawn rfkit-analyze");
    let text = stdout(&out);
    assert!(text.contains("counter-name-drift"), "{text}");
    assert!(text.contains("expired-suppression"), "{text}");
    assert_eq!(text.lines().count(), 16, "one row per lint:\n{text}");
}
