//! Round-trip guarantee: every `.rs` file in the real workspace must
//! tokenize and parse without panicking, every span must stay inside
//! the file, and the dataflow pass must run over the result. The
//! parser is error-tolerant by design, so "parses" here means
//! "produces a well-formed AST", not "validates Rust" — but a file
//! with functions must yield function items, or the lints built on the
//! AST would silently go blind.

use rfkit_analyze::{dataflow, parser, tokenizer};
use std::fs;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // crates/analyze -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf()
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<_> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

fn check_spans(items: &[parser::Item], last_line: u32, file: &Path) {
    for it in items {
        assert!(
            it.span.line >= 1 && it.span.end_line <= last_line && it.span.line <= it.span.end_line,
            "item `{}` span {:?} out of bounds (file has {} lines) in {}",
            it.name,
            it.span,
            last_line,
            file.display()
        );
        check_spans(&it.children, last_line, file);
    }
}

#[test]
fn every_workspace_file_parses() {
    let root = workspace_root();
    assert!(
        root.join("Cargo.toml").is_file(),
        "workspace root not found at {}",
        root.display()
    );
    let mut files = Vec::new();
    collect(&root.join("src"), &mut files);
    collect(&root.join("tests"), &mut files);
    collect(&root.join("crates"), &mut files);
    assert!(
        files.len() >= 30,
        "expected a real workspace, found only {} .rs files",
        files.len()
    );

    let mut total_fns = 0usize;
    for path in &files {
        let src = fs::read_to_string(path).unwrap();
        let toks = tokenizer::tokenize(&src);
        let ast = parser::parse(&toks);
        // Span sanity: 1-based lines, never past the last line.
        let last_line = src.lines().count().max(1) as u32;
        check_spans(&ast.items, last_line, path);
        // Dataflow must also survive every file.
        let fns = dataflow::analyze(&ast);
        for f in &fns {
            assert!(
                f.span.line <= f.span.end_line,
                "fn `{}` has inverted span in {}",
                f.name,
                path.display()
            );
            for c in &f.calls {
                assert!(
                    c.line >= 1 && c.line <= last_line,
                    "call `{}` at out-of-bounds line {} in {}",
                    c.name,
                    c.line,
                    path.display()
                );
            }
            for d in &f.defs {
                assert!(
                    d.line >= 1 && d.line <= last_line,
                    "def `{}` at out-of-bounds line {} in {}",
                    d.name,
                    d.line,
                    path.display()
                );
            }
        }
        total_fns += fns.len();
        // A file that textually declares functions must surface at
        // least one Fn item — otherwise the parser lost the file.
        let has_fn_text = src.lines().any(|l| {
            let t = l.trim_start();
            (t.starts_with("fn ") || t.starts_with("pub fn ")) && l.contains('(')
        });
        if has_fn_text {
            assert!(
                !fns.is_empty(),
                "parser found no functions in {} despite `fn` declarations",
                path.display()
            );
        }
    }
    // The workspace has hundreds of functions; a collapse to near-zero
    // means the parser is silently skipping bodies.
    assert!(
        total_fns >= 300,
        "only {total_fns} functions parsed across the workspace"
    );
}
