//! End-to-end test: build a miniature workspace on disk, run the full
//! tree walk, and check that every lint fires where it should, stays
//! quiet where it should, and that suppressions work.

use rfkit_analyze::analyze_tree;
use rfkit_analyze::report::Severity;
use std::fs;
use std::path::{Path, PathBuf};

fn write(root: &Path, rel: &str, src: &str) {
    let path = root.join(rel);
    fs::create_dir_all(path.parent().unwrap()).unwrap();
    fs::write(path, src).unwrap();
}

#[test]
fn tree_walk_finds_and_attributes_violations() {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("fake_ws");
    let _ = fs::remove_dir_all(&root);

    // A numeric crate with one violation of each flavour.
    write(
        &root,
        "crates/num/src/lib.rs",
        "\
use std::collections::HashMap;
pub fn zero(x: f64) -> bool { x == 0.0 }
pub fn sort(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }
pub fn get(o: Option<u32>) -> u32 { o.unwrap() }
pub fn raw(p: *const f64) -> f64 { unsafe { *p } }
pub type Map = HashMap<u32, u32>;
// Suppressed on purpose:
pub fn zero2(x: f64) -> bool { x == 0.0 } // rfkit-allow(float-eq)
",
    );
    // A clean file in a non-numeric crate: HashMap is fine there.
    write(
        &root,
        "crates/bench/src/lib.rs",
        "use std::collections::HashMap;\npub type Map = HashMap<u32, u32>;\n",
    );
    // Tests may unwrap freely.
    write(
        &root,
        "crates/num/tests/t.rs",
        "#[test]\nfn t() { Some(1).unwrap(); }\n",
    );
    // par may use unsafe, but only with the audit trappings.
    write(
        &root,
        "crates/par/src/lib.rs",
        "\
// UNSAFE AUDIT: test fixture.
pub fn raw(p: *const f64) -> f64 {
    // SAFETY: caller contract.
    unsafe { *p }
}
",
    );

    let (findings, files) = analyze_tree(&root).unwrap();
    assert_eq!(files, 4);

    let active: Vec<_> = findings.iter().filter(|f| !f.suppressed).collect();
    let by_lint = |name: &str| active.iter().filter(|f| f.lint == name).count();

    assert_eq!(by_lint("float-eq"), 1, "{active:?}");
    assert_eq!(by_lint("nan-unsafe-sort"), 1);
    // Two: the bare `o.unwrap()` and the comparator's `.unwrap()` (lints
    // overlap on that line by design — both diagnoses are useful).
    assert_eq!(by_lint("unwrap-in-lib"), 2);
    // HashMap appears twice in the numeric crate (use line and alias
    // target) and zero times chargeable in bench.
    assert_eq!(by_lint("nondeterminism"), 2);
    assert_eq!(by_lint("unsafe-outside-par"), 1);
    let unsafe_hit = active
        .iter()
        .find(|f| f.lint == "unsafe-outside-par")
        .unwrap();
    assert_eq!(unsafe_hit.severity, Severity::Error);
    assert!(unsafe_hit.file.ends_with("crates/num/src/lib.rs"));

    // The suppressed float-eq finding is present but marked.
    assert_eq!(
        findings
            .iter()
            .filter(|f| f.lint == "float-eq" && f.suppressed)
            .count(),
        1
    );

    // Everything is attributed to a workspace-relative path with a line.
    assert!(findings.iter().all(|f| f.line >= 1 && !f.file.is_empty()));
}
