//! Integration of the cold-FET step with the warm three-step procedure:
//! pinning the shell must not hurt the fit and should improve the
//! identifiability of the intrinsic capacitances.

use rfkit_device::dc::Angelov;
use rfkit_device::{GoldenDevice, MeasurementNoise};
use rfkit_extract::{
    cold_fet_extraction, three_step, three_step_with_extrinsics, ColdFetConfig, ExtractionData,
    ThreeStepConfig,
};

fn warm_data(noise: MeasurementNoise) -> (GoldenDevice, ExtractionData) {
    let g = GoldenDevice::default();
    let (vgs_grid, vds_grid) = GoldenDevice::standard_iv_grid();
    let bias_vgs = g.device.bias_for_current(3.0, 0.06).unwrap();
    let data = ExtractionData {
        dc: g.measure_dc(&vgs_grid, &vds_grid, &noise),
        sparams: g.measure_sparams(bias_vgs, 3.0, &GoldenDevice::standard_freq_grid(), &noise),
        bias_vgs,
        bias_vds: 3.0,
    };
    (g, data)
}

#[test]
fn cold_then_warm_pipeline_matches_or_beats_plain_three_step() {
    let noise = MeasurementNoise::default();
    let (golden, data) = warm_data(noise);
    let cold_rows = golden.measure_sparams(0.25, 0.0, &GoldenDevice::standard_freq_grid(), &noise);

    let cold = cold_fet_extraction(
        &cold_rows,
        &ColdFetConfig {
            global_evals: 10_000,
            polish_evals: 600,
            seed: 1,
        },
    );
    let cfg = ThreeStepConfig {
        step1_evals: 8_000,
        step2_evals: 10_000,
        step3_evals: 800,
        seed: 9,
    };
    let plain = three_step(&Angelov, &data, &cfg);
    let pinned = three_step_with_extrinsics(&Angelov, &data, &cold.extrinsic, &cfg);

    // The pinned variant's fit stays competitive…
    assert!(
        pinned.sparam_rmse < plain.sparam_rmse * 2.0 + 0.01,
        "pinned {} vs plain {}",
        pinned.sparam_rmse,
        plain.sparam_rmse
    );
    // …and its reactive shell is anchored to the cold result (±10 % pin).
    let shell = pinned.small_signal.extrinsic;
    assert!((shell.lg - cold.extrinsic.lg).abs() / cold.extrinsic.lg < 0.11);
    assert!((shell.cpg - cold.extrinsic.cpg).abs() / cold.extrinsic.cpg.max(1e-15) < 0.11);
}

#[test]
fn pinned_shell_improves_cgs_identifiability() {
    // With the true shell pinned, the warm fit should recover the golden
    // Cgs more tightly than the fully free fit at equal budget.
    let noise = MeasurementNoise::default();
    let (golden, data) = warm_data(noise);
    let op = golden.device.operating_point(data.bias_vgs, data.bias_vds);
    let cgs_true = golden.device.small_signal(&op).intrinsic.cgs;

    let cfg = ThreeStepConfig {
        step1_evals: 8_000,
        step2_evals: 8_000,
        step3_evals: 600,
        seed: 17,
    };
    let plain = three_step(&Angelov, &data, &cfg);
    let pinned = three_step_with_extrinsics(&Angelov, &data, &golden.device.extrinsic, &cfg);
    let err_plain = (plain.small_signal.intrinsic.cgs - cgs_true).abs() / cgs_true;
    let err_pinned = (pinned.small_signal.intrinsic.cgs - cgs_true).abs() / cgs_true;
    assert!(
        err_pinned <= err_plain + 0.02,
        "pinned Cgs error {err_pinned} vs free {err_plain}"
    );
    assert!(err_pinned < 0.15, "Cgs recovery: {err_pinned}");
}
