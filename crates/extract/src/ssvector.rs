//! Flat parameter-vector encoding of the small-signal equivalent circuit.
//!
//! Optimizers work on `&[f64]`; this module maps the 15 small-signal
//! elements to a vector in *scaled units* (pF, nH, ps, Ω, S) so every
//! coordinate is O(0.1–10) and the optimizers see a well-conditioned box.

use rfkit_device::{Extrinsic, Intrinsic, SmallSignalDevice};
use rfkit_opt::Bounds;

/// Names of the 15 vector entries, in order.
pub const SS_NAMES: [&str; 15] = [
    "gm_S", "gds_mS", "cgs_pF", "cgd_pF", "cds_pF", "ri_ohm", "tau_ps", "rg_ohm", "rd_ohm",
    "rs_ohm", "lg_nH", "ld_nH", "ls_nH", "cpg_pF", "cpd_pF",
];

/// Encodes a device into the scaled 15-vector.
pub fn ss_to_vec(d: &SmallSignalDevice) -> Vec<f64> {
    vec![
        d.intrinsic.gm,
        d.intrinsic.gds * 1e3,
        d.intrinsic.cgs * 1e12,
        d.intrinsic.cgd * 1e12,
        d.intrinsic.cds * 1e12,
        d.intrinsic.ri,
        d.intrinsic.tau * 1e12,
        d.extrinsic.rg,
        d.extrinsic.rd,
        d.extrinsic.rs,
        d.extrinsic.lg * 1e9,
        d.extrinsic.ld * 1e9,
        d.extrinsic.ls * 1e9,
        d.extrinsic.cpg * 1e12,
        d.extrinsic.cpd * 1e12,
    ]
}

/// Decodes the scaled 15-vector back into a device.
///
/// # Panics
///
/// Panics if `v.len() != 15`.
pub fn ss_from_vec(v: &[f64]) -> SmallSignalDevice {
    assert_eq!(v.len(), 15, "small-signal vector must have 15 entries");
    SmallSignalDevice {
        intrinsic: Intrinsic {
            gm: v[0],
            gds: v[1] * 1e-3,
            cgs: v[2] * 1e-12,
            cgd: v[3] * 1e-12,
            cds: v[4] * 1e-12,
            ri: v[5],
            tau: v[6] * 1e-12,
        },
        extrinsic: Extrinsic {
            rg: v[7],
            rd: v[8],
            rs: v[9],
            lg: v[10] * 1e-9,
            ld: v[11] * 1e-9,
            ls: v[12] * 1e-9,
            cpg: v[13] * 1e-12,
            cpd: v[14] * 1e-12,
        },
    }
}

/// Physically motivated box for a packaged low-noise pHEMT.
pub fn ss_bounds() -> Bounds {
    Bounds::new(
        vec![
            0.02, 0.5, 0.2, 0.02, 0.02, 0.1, 0.1, 0.05, 0.05, 0.05, 0.01, 0.01, 0.01, 0.01, 0.01,
        ],
        vec![
            0.6, 40.0, 6.0, 1.5, 1.5, 8.0, 10.0, 6.0, 8.0, 4.0, 2.5, 2.5, 1.5, 1.2, 1.2,
        ],
    )
    .expect("valid small-signal bounds")
}

/// The same box but with `gm` and `gds` pinned to ±`rel` around seed
/// values (how step 2 uses the step-1 DC fit).
pub fn ss_bounds_seeded(gm_seed: f64, gds_seed: f64, rel: f64) -> Bounds {
    let base = ss_bounds();
    let mut lo = base.lo().to_vec();
    let mut hi = base.hi().to_vec();
    lo[0] = (gm_seed * (1.0 - rel)).max(lo[0]);
    hi[0] = (gm_seed * (1.0 + rel)).min(hi[0]).max(lo[0]);
    lo[1] = (gds_seed * 1e3 * (1.0 - rel)).max(lo[1]);
    hi[1] = (gds_seed * 1e3 * (1.0 + rel)).min(hi[1]).max(lo[1]);
    Bounds::new(lo, hi).expect("seeded bounds valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfkit_device::Phemt;

    fn golden_ss() -> SmallSignalDevice {
        let d = Phemt::atf54143_like();
        let op = d.operating_point(d.bias_for_current(3.0, 0.06).unwrap(), 3.0);
        d.small_signal(&op)
    }

    #[test]
    fn roundtrip_preserves_device() {
        let d = golden_ss();
        let v = ss_to_vec(&d);
        let back = ss_from_vec(&v);
        // Scaling introduces one rounding step; compare to relative 1e-14.
        let (a, b) = (ss_to_vec(&d), ss_to_vec(&back));
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() <= 1e-14 * x.abs().max(1.0), "{x} vs {y}");
        }
        assert_eq!(v.len(), SS_NAMES.len());
    }

    #[test]
    fn golden_device_inside_bounds() {
        let v = ss_to_vec(&golden_ss());
        assert!(
            ss_bounds().contains(&v),
            "golden vector {v:?} outside extraction bounds"
        );
    }

    #[test]
    fn scaled_units_are_order_unity() {
        let v = ss_to_vec(&golden_ss());
        for (name, value) in SS_NAMES.iter().zip(&v) {
            assert!(
                (0.01..=50.0).contains(value),
                "{name} = {value} badly scaled"
            );
        }
    }

    #[test]
    fn seeded_bounds_narrow_gm() {
        let b = ss_bounds_seeded(0.2, 0.008, 0.3);
        assert!((b.lo()[0] - 0.14).abs() < 1e-12);
        assert!((b.hi()[0] - 0.26).abs() < 1e-12);
        assert!((b.lo()[1] - 5.6).abs() < 1e-12);
        // Other dimensions unchanged.
        assert_eq!(b.lo()[2], ss_bounds().lo()[2]);
    }

    #[test]
    #[should_panic(expected = "15 entries")]
    fn wrong_length_panics() {
        ss_from_vec(&[1.0, 2.0]);
    }
}
