//! Model-comparison harness: extract every DC model against the same
//! measured data and tabulate fit quality (the paper's "comparisons among
//! several models").

use crate::three_step::{three_step, ExtractionData, ExtractionResult, ThreeStepConfig};
use rfkit_device::dc::all_models;

/// One row of the model-comparison table.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// Model name.
    pub name: &'static str,
    /// Number of DC parameters.
    pub n_params: usize,
    /// Relative DC RMSE after extraction.
    pub dc_rmse: f64,
    /// S-parameter RMSE after extraction.
    pub sparam_rmse: f64,
    /// Total objective evaluations spent.
    pub evaluations: usize,
    /// The full extraction result.
    pub result: ExtractionResult,
}

/// Extracts all five DC models against `data` and reports fit quality,
/// sorted by DC RMSE (best first).
pub fn compare_models(data: &ExtractionData, config: &ThreeStepConfig) -> Vec<ModelReport> {
    let mut reports: Vec<ModelReport> = all_models()
        .into_iter()
        .map(|model| {
            let result = three_step(model.as_ref(), data, config);
            ModelReport {
                name: model.name(),
                n_params: model.param_names().len(),
                dc_rmse: result.dc_rmse,
                sparam_rmse: result.sparam_rmse,
                evaluations: result.evaluations.iter().sum(),
                result,
            }
        })
        .collect();
    reports.sort_by(|a, b| rfkit_num::total_cmp_f64(&a.dc_rmse, &b.dc_rmse));
    reports
}

/// Per-parameter recovery report against known true values (only
/// meaningful when the data came from the same model family).
#[derive(Debug, Clone)]
pub struct RecoveryRow {
    /// Parameter name.
    pub name: &'static str,
    /// True (golden) value.
    pub truth: f64,
    /// Extracted value.
    pub extracted: f64,
    /// Relative error.
    pub rel_error: f64,
}

/// Tabulates extracted-vs-true parameters.
///
/// # Panics
///
/// Panics if the vectors' lengths differ from `names`.
pub fn recovery_table(
    names: &'static [&'static str],
    truth: &[f64],
    extracted: &[f64],
) -> Vec<RecoveryRow> {
    assert_eq!(names.len(), truth.len(), "names/truth mismatch");
    assert_eq!(names.len(), extracted.len(), "names/extracted mismatch");
    names
        .iter()
        .zip(truth.iter().zip(extracted))
        .map(|(&name, (&t, &e))| RecoveryRow {
            name,
            truth: t,
            extracted: e,
            rel_error: if t.abs() > 1e-300 {
                (e - t).abs() / t.abs()
            } else {
                (e - t).abs()
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfkit_device::dc::{Angelov, DcModel as _};
    use rfkit_device::{GoldenDevice, MeasurementNoise};

    fn dataset() -> ExtractionData {
        let g = GoldenDevice::default();
        let (vgs_grid, vds_grid) = GoldenDevice::standard_iv_grid();
        let bias_vgs = g.device.bias_for_current(3.0, 0.06).unwrap();
        ExtractionData {
            dc: g.measure_dc(&vgs_grid, &vds_grid, &MeasurementNoise::none()),
            sparams: g.measure_sparams(
                bias_vgs,
                3.0,
                &GoldenDevice::standard_freq_grid(),
                &MeasurementNoise::none(),
            ),
            bias_vgs,
            bias_vds: 3.0,
        }
    }

    #[test]
    fn angelov_wins_its_own_data() {
        // Short budgets: this is a smoke-level version of Table 1.
        let cfg = ThreeStepConfig {
            step1_evals: 5_000,
            step2_evals: 6_000,
            step3_evals: 400,
            seed: 5,
        };
        let data = dataset();
        let reports = compare_models(&data, &cfg);
        assert_eq!(reports.len(), 5);
        // The generating model family must fit best on DC.
        assert_eq!(
            reports[0].name,
            "Angelov",
            "ranking: {:?}",
            reports
                .iter()
                .map(|r| (r.name, r.dc_rmse))
                .collect::<Vec<_>>()
        );
        // And the quadratic Curtice — with no knee or gm-bell flexibility —
        // must be visibly worse than the winner.
        let curtice_q = reports
            .iter()
            .find(|r| r.name == "Curtice quadratic")
            .unwrap();
        assert!(curtice_q.dc_rmse > 3.0 * reports[0].dc_rmse);
    }

    #[test]
    fn recovery_table_flags_errors() {
        let names = Angelov.param_names();
        let truth = Angelov.default_params();
        let mut extracted = truth.clone();
        extracted[0] *= 1.10;
        let table = recovery_table(names, &truth, &extracted);
        assert_eq!(table.len(), names.len());
        assert!((table[0].rel_error - 0.10).abs() < 1e-12);
        assert_eq!(table[1].rel_error, 0.0);
    }
}
