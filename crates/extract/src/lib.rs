//! # rfkit-extract
//!
//! pHEMT model parameter identification — the paper's "original three-step
//! robust identification procedure based on a combination of meta-heuristic
//! and direct optimization methods":
//!
//! 1. global DC fit (differential evolution, Huber loss);
//! 2. global small-signal fit seeded by step 1;
//! 3. direct joint Levenberg–Marquardt refinement with `gm`/`gds` tied to
//!    the DC model.
//!
//! Plus the single-optimizer baselines the convergence study compares
//! against and the model-comparison harness behind the paper's
//! "comparisons among several models".
//!
//! ## Example
//!
//! ```no_run
//! use rfkit_device::dc::Angelov;
//! use rfkit_device::{GoldenDevice, MeasurementNoise};
//! use rfkit_extract::{three_step, ExtractionData, ThreeStepConfig};
//!
//! let golden = GoldenDevice::default();
//! let (vgs, vds) = GoldenDevice::standard_iv_grid();
//! let bias = golden.device.bias_for_current(3.0, 0.06).unwrap();
//! let data = ExtractionData {
//!     dc: golden.measure_dc(&vgs, &vds, &MeasurementNoise::default()),
//!     sparams: golden.measure_sparams(bias, 3.0, &GoldenDevice::standard_freq_grid(),
//!                                     &MeasurementNoise::default()),
//!     bias_vgs: bias,
//!     bias_vds: 3.0,
//! };
//! let result = three_step(&Angelov, &data, &ThreeStepConfig::default());
//! assert!(result.dc_rmse < 0.05);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cold;
pub mod comparison;
pub mod objective;
pub mod ssvector;
mod three_step;

pub use cold::{cold_fet_extraction, ColdFetConfig, ColdFetResult};
pub use comparison::{compare_models, recovery_table, ModelReport, RecoveryRow};
pub use three_step::{
    combined_error, extract_single_method, three_step, three_step_with_extrinsics, ExtractionData,
    ExtractionResult, SingleMethod, ThreeStepConfig,
};
