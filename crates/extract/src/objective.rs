//! Fit objectives for device-model identification.
//!
//! Two data domains are fitted: the DC I-V grid (drain current, relative
//! error with a floor so pinch-off noise does not dominate) and the
//! small-signal S-parameters (absolute complex error, all four entries).
//! Both support a Huber robustification, which is half of what makes the
//! paper's identification "robust" (the other half is the global+direct
//! optimizer combination).

use rfkit_device::smallsignal::SmallSignalDevice;
use rfkit_device::{DcModel, DcSample};
use rfkit_net::SParams;
use rfkit_par::{par_map_cfg, ParConfig};

/// Residual batches below this size run serially: the standard extraction
/// datasets (121 I-V points, 23 frequencies) cost well under a microsecond
/// per sample, so dispatch overhead would dominate. Large synthetic or
/// multi-bias datasets engage the pool.
const PAR_RESIDUAL_THRESHOLD: usize = 512;

fn residual_cfg() -> ParConfig {
    ParConfig {
        serial_threshold: PAR_RESIDUAL_THRESHOLD,
        ..ParConfig::default()
    }
}

/// Huber loss: quadratic inside `delta`, linear beyond — bounds the
/// influence of outlier samples.
///
/// # Examples
///
/// ```
/// use rfkit_extract::objective::huber;
/// assert_eq!(huber(0.5, 1.0), 0.125);          // quadratic region: r²/2
/// assert_eq!(huber(3.0, 1.0), 2.5);            // linear region: δ(|r| − δ/2)
/// ```
pub fn huber(residual: f64, delta: f64) -> f64 {
    let a = residual.abs();
    if a <= delta {
        0.5 * residual * residual
    } else {
        delta * (a - 0.5 * delta)
    }
}

/// Relative DC-current residuals of a model against measured samples.
/// The denominator is floored at `i_floor` amps.
pub fn dc_residuals(
    model: &dyn DcModel,
    params: &[f64],
    data: &[DcSample],
    i_floor: f64,
) -> Vec<f64> {
    par_map_cfg(&residual_cfg(), data, |s| {
        let predicted = model.ids(params, s.vgs, s.vds);
        (predicted - s.ids) / s.ids.abs().max(i_floor)
    })
}

/// Root-mean-square of the relative DC residuals.
pub fn dc_rmse(model: &dyn DcModel, params: &[f64], data: &[DcSample], i_floor: f64) -> f64 {
    let r = dc_residuals(model, params, data, i_floor);
    (r.iter().map(|v| v * v).sum::<f64>() / r.len().max(1) as f64).sqrt()
}

/// Huber-robustified mean DC loss.
pub fn dc_loss(model: &dyn DcModel, params: &[f64], data: &[DcSample], i_floor: f64) -> f64 {
    let r = dc_residuals(model, params, data, i_floor);
    r.iter().map(|&v| huber(v, 0.1)).sum::<f64>() / r.len().max(1) as f64
}

/// Complex S-parameter residuals (re/im interleaved, all four entries per
/// frequency) between a candidate small-signal device and measured rows.
pub fn sparam_residuals(candidate: &SmallSignalDevice, measured: &[(f64, SParams)]) -> Vec<f64> {
    let per_freq = par_map_cfg(&residual_cfg(), measured, |(f, meas)| {
        let model = candidate.s_params(*f, meas.z0);
        let mut row = [0.0f64; 8];
        for (k, (m, s)) in [
            (model.s11(), meas.s11()),
            (model.s12(), meas.s12()),
            (model.s21(), meas.s21()),
            (model.s22(), meas.s22()),
        ]
        .into_iter()
        .enumerate()
        {
            let d = m - s;
            row[2 * k] = d.re;
            row[2 * k + 1] = d.im;
        }
        row
    });
    let mut out = Vec::with_capacity(measured.len() * 8);
    for row in per_freq {
        out.extend_from_slice(&row);
    }
    out
}

/// RMS S-parameter error (per complex entry).
pub fn sparam_rmse(candidate: &SmallSignalDevice, measured: &[(f64, SParams)]) -> f64 {
    let r = sparam_residuals(candidate, measured);
    (r.iter().map(|v| v * v).sum::<f64>() / (r.len().max(1) as f64 / 2.0)).sqrt()
}

/// Huber-robustified mean S-parameter loss.
pub fn sparam_loss(candidate: &SmallSignalDevice, measured: &[(f64, SParams)]) -> f64 {
    let r = sparam_residuals(candidate, measured);
    r.iter().map(|&v| huber(v, 0.05)).sum::<f64>() / r.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfkit_device::dc::Angelov;
    use rfkit_device::{GoldenDevice, MeasurementNoise};

    #[test]
    fn huber_regions_and_continuity() {
        // Continuity at |r| = δ.
        let below = huber(0.999_999, 1.0);
        let above = huber(1.000_001, 1.0);
        assert!((below - above).abs() < 1e-5);
        // Symmetry.
        assert_eq!(huber(-2.0, 1.0), huber(2.0, 1.0));
        // Outliers grow linearly, not quadratically.
        assert!(huber(10.0, 1.0) < 0.5 * 100.0);
    }

    #[test]
    fn true_parameters_have_zero_dc_error_on_clean_data() {
        let g = GoldenDevice::default();
        let (vgs, vds) = GoldenDevice::standard_iv_grid();
        let data = g.measure_dc(&vgs, &vds, &MeasurementNoise::none());
        let rmse = dc_rmse(&Angelov, &g.device.dc_params, &data, 1e-3);
        assert!(rmse < 1e-12, "rmse = {rmse}");
    }

    #[test]
    fn noisy_data_floor_matches_noise_level() {
        let g = GoldenDevice::default();
        let (vgs, vds) = GoldenDevice::standard_iv_grid();
        let noise = MeasurementNoise {
            dc_relative: 0.01,
            ..Default::default()
        };
        let data = g.measure_dc(&vgs, &vds, &noise);
        let rmse = dc_rmse(&Angelov, &g.device.dc_params, &data, 1e-3);
        // True parameters against 1 % noisy data: RMSE ≈ the noise.
        assert!(rmse > 0.002 && rmse < 0.05, "rmse = {rmse}");
    }

    #[test]
    fn wrong_parameters_cost_more() {
        let g = GoldenDevice::default();
        let (vgs, vds) = GoldenDevice::standard_iv_grid();
        let data = g.measure_dc(&vgs, &vds, &MeasurementNoise::none());
        let mut wrong = g.device.dc_params.clone();
        wrong[0] *= 1.3; // +30 % on Ipk
        assert!(
            dc_loss(&Angelov, &wrong, &data, 1e-3)
                > 100.0 * dc_loss(&Angelov, &g.device.dc_params, &data, 1e-3)
        );
    }

    #[test]
    fn sparam_error_zero_for_true_small_signal() {
        let g = GoldenDevice::default();
        let vgs = g.device.bias_for_current(3.0, 0.06).unwrap();
        let freqs = GoldenDevice::standard_freq_grid();
        let rows = g.measure_sparams(vgs, 3.0, &freqs, &MeasurementNoise::none());
        let op = g.device.operating_point(vgs, 3.0);
        let truth = g.device.small_signal(&op);
        let rmse = sparam_rmse(&truth, &rows);
        assert!(rmse < 1e-12, "rmse = {rmse}");
    }

    #[test]
    fn sparam_error_detects_capacitance_offset() {
        let g = GoldenDevice::default();
        let vgs = g.device.bias_for_current(3.0, 0.06).unwrap();
        let freqs = GoldenDevice::standard_freq_grid();
        let rows = g.measure_sparams(vgs, 3.0, &freqs, &MeasurementNoise::none());
        let op = g.device.operating_point(vgs, 3.0);
        let mut off = g.device.small_signal(&op);
        off.intrinsic.cgs *= 1.5;
        assert!(sparam_rmse(&off, &rows) > 0.01);
        assert!(sparam_loss(&off, &rows) > 0.0);
    }

    #[test]
    fn residual_layout_is_eight_per_frequency() {
        let g = GoldenDevice::default();
        let vgs = g.device.bias_for_current(3.0, 0.06).unwrap();
        let rows = g.measure_sparams(vgs, 3.0, &[1e9, 2e9], &MeasurementNoise::none());
        let op = g.device.operating_point(vgs, 3.0);
        let r = sparam_residuals(&g.device.small_signal(&op), &rows);
        assert_eq!(r.len(), 16);
    }
}
