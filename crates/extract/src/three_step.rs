//! The paper's original three-step robust identification procedure.
//!
//! 1. **Global DC fit** — differential evolution over the DC model's
//!    parameter box against the measured I-V grid (Huber loss). A
//!    meta-heuristic is essential here: the DC landscapes are multi-modal
//!    (threshold/knee parameters trade against each other).
//! 2. **Global small-signal fit** — differential evolution over the 15
//!    small-signal elements against the measured S-parameters at the
//!    characterization bias, with `gm`/`gds` boxes *seeded from step 1*
//!    (±30 %), which is what couples the steps.
//! 3. **Direct joint refinement** — Levenberg–Marquardt on the
//!    concatenated DC + S-parameter residual with `gm`/`gds` *tied to the
//!    DC model's derivatives*, so the final parameter set is
//!    self-consistent across both data domains.

use crate::objective::{
    dc_loss, dc_residuals, dc_rmse, sparam_loss, sparam_residuals, sparam_rmse,
};
use crate::ssvector::{ss_bounds_seeded, ss_from_vec};
use rfkit_device::dc::{gds as dc_gds, gm as dc_gm};
use rfkit_device::{DcModel, DcSample, SmallSignalDevice};
use rfkit_net::SParams;
use rfkit_opt::{
    differential_evolution, levenberg_marquardt, nelder_mead, Bounds, DeConfig, LmConfig,
    NelderMeadConfig,
};

/// The measured characterization data set.
#[derive(Debug, Clone)]
pub struct ExtractionData {
    /// DC I-V grid samples.
    pub dc: Vec<DcSample>,
    /// S-parameter rows at the characterization bias.
    pub sparams: Vec<(f64, SParams)>,
    /// Gate bias of the S-parameter measurement (V).
    pub bias_vgs: f64,
    /// Drain bias of the S-parameter measurement (V).
    pub bias_vds: f64,
}

/// Budgets and seed for [`three_step`].
#[derive(Debug, Clone, PartialEq)]
pub struct ThreeStepConfig {
    /// DE evaluations for the DC step.
    pub step1_evals: usize,
    /// DE evaluations for the small-signal step.
    pub step2_evals: usize,
    /// LM residual evaluations for the joint refinement.
    pub step3_evals: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ThreeStepConfig {
    fn default() -> Self {
        ThreeStepConfig {
            step1_evals: 15_000,
            step2_evals: 25_000,
            step3_evals: 2_000,
            seed: 0xe87,
        }
    }
}

/// Result of the identification.
#[derive(Debug, Clone)]
pub struct ExtractionResult {
    /// Extracted DC model parameters.
    pub dc_params: Vec<f64>,
    /// Extracted small-signal equivalent circuit at the characterization
    /// bias (with `gm`/`gds` consistent with the DC model).
    pub small_signal: SmallSignalDevice,
    /// Final relative DC RMSE.
    pub dc_rmse: f64,
    /// Final S-parameter RMSE (per complex entry).
    pub sparam_rmse: f64,
    /// Objective evaluations used per step.
    pub evaluations: [usize; 3],
    /// `(cumulative evaluations, combined error)` checkpoints after each
    /// step — the convergence-figure series.
    pub checkpoints: Vec<(usize, f64)>,
}

/// Floor current for relative DC residuals (A).
const I_FLOOR: f64 = 1e-3;

/// Combined scalar error used for cross-method comparison: relative DC
/// RMSE plus S-parameter RMSE.
pub fn combined_error(
    model: &dyn DcModel,
    dc_params: &[f64],
    ss: &SmallSignalDevice,
    data: &ExtractionData,
) -> f64 {
    dc_rmse(model, dc_params, &data.dc, I_FLOOR) + sparam_rmse(ss, &data.sparams)
}

/// Runs the three-step identification of `model` against `data`.
pub fn three_step(
    model: &dyn DcModel,
    data: &ExtractionData,
    config: &ThreeStepConfig,
) -> ExtractionResult {
    let _span = rfkit_obs::span("extract.three_step");
    // ---- Step 1: global DC fit. ----
    let dc_bounds = model.param_bounds();
    let de1 = DeConfig {
        max_evals: config.step1_evals,
        seed: config.seed,
        ..Default::default()
    };
    let step1 = {
        let _span = rfkit_obs::span("extract.step1_dc");
        differential_evolution(|p| dc_loss(model, p, &data.dc, I_FLOOR), &dc_bounds, &de1)
    };
    let dc_params = step1.x.clone();

    // ---- Step 2: global small-signal fit, gm/gds seeded from step 1. ----
    let gm_seed = dc_gm(model, &dc_params, data.bias_vgs, data.bias_vds);
    let gds_seed = dc_gds(model, &dc_params, data.bias_vgs, data.bias_vds).max(1e-4);
    let ss_box = ss_bounds_seeded(gm_seed, gds_seed, 0.3);
    let de2 = DeConfig {
        max_evals: config.step2_evals,
        seed: config.seed.wrapping_add(1),
        ..Default::default()
    };
    let step2 = {
        let _span = rfkit_obs::span("extract.step2_ss");
        differential_evolution(
            |v| sparam_loss(&ss_from_vec(v), &data.sparams),
            &ss_box,
            &de2,
        )
    };

    // ---- Step 3: joint LM refinement with gm/gds tied to the DC model. ----
    // Parameter vector: DC params ++ the 13 shell entries (no gm/gds).
    let joint = JointVector {
        model,
        n_dc: dc_params.len(),
        bias_vgs: data.bias_vgs,
        bias_vds: data.bias_vds,
    };
    let x0 = joint.pack(&dc_params, &step2.x);
    let joint_bounds = joint.bounds(&dc_bounds, &ss_box);
    let evals3 = std::cell::Cell::new(0usize);
    // Weight the (dimensionless, ~1 %-scale) DC residuals so both domains
    // contribute comparably.
    let dc_weight = 1.0;
    let _span3 = rfkit_obs::span("extract.step3_joint");
    let lm = levenberg_marquardt(
        |x| {
            evals3.set(evals3.get() + 1);
            let (dc_p, ss) = joint.unpack(x);
            let mut r: Vec<f64> = dc_residuals(model, &dc_p, &data.dc, I_FLOOR)
                .into_iter()
                .map(|v| v * dc_weight)
                .collect();
            r.extend(sparam_residuals(&ss, &data.sparams));
            r
        },
        &x0,
        &joint_bounds,
        &LmConfig {
            max_evals: config.step3_evals,
            ..Default::default()
        },
    );
    drop(_span3);
    let (dc_final, ss_final) = joint.unpack(&lm.x);

    let e1 = step1.evaluations;
    let e2 = step2.evaluations;
    let e3 = evals3.get();
    // Checkpoint 1: DC fitted, shell still at the seeded-box center.
    let ss_step1 = ss_from_vec(&ss_box.center());
    let ss_step2 = ss_from_vec(&step2.x);
    let checkpoints = vec![
        (e1, combined_error(model, &dc_params, &ss_step1, data)),
        (e1 + e2, combined_error(model, &dc_params, &ss_step2, data)),
        (
            e1 + e2 + e3,
            combined_error(model, &dc_final, &ss_final, data),
        ),
    ];
    if rfkit_obs::enabled() {
        for (step, &(evals, err)) in checkpoints.iter().enumerate() {
            rfkit_obs::event(
                "extract.checkpoint",
                &[
                    ("step", (step + 1) as f64),
                    ("evals", evals as f64),
                    ("error", err),
                ],
            );
        }
    }

    ExtractionResult {
        dc_rmse: dc_rmse(model, &dc_final, &data.dc, I_FLOOR),
        sparam_rmse: sparam_rmse(&ss_final, &data.sparams),
        dc_params: dc_final,
        small_signal: ss_final,
        evaluations: [e1, e2, e3],
        checkpoints,
    }
}

/// Variant of [`three_step`] with the *reactive* extrinsic shell (lead
/// inductances and pad capacitances) pre-determined by a cold-FET
/// extraction ([`crate::cold`]): those five entries of the step-2 search
/// box are pinned to ±10 % around the given values. The extrinsic
/// *resistances* stay free — a single-bias cold measurement cannot
/// separate them from the channel resistance (Dambrine's full method
/// needs forward gate current for that), so pinning them would inject the
/// cold fit's Rg/Rd/Rs ambiguity into the warm fit.
pub fn three_step_with_extrinsics(
    model: &dyn DcModel,
    data: &ExtractionData,
    extrinsics: &rfkit_device::Extrinsic,
    config: &ThreeStepConfig,
) -> ExtractionResult {
    let _span = rfkit_obs::span("extract.three_step_ext");
    // Run the normal flow but with the shell portion of the small-signal
    // box narrowed. Reuse three_step by temporarily monkey-patching is not
    // possible; instead duplicate the step structure with modified bounds.
    let dc_bounds = model.param_bounds();
    let de1 = DeConfig {
        max_evals: config.step1_evals,
        seed: config.seed,
        ..Default::default()
    };
    let step1 = {
        let _span = rfkit_obs::span("extract.step1_dc");
        differential_evolution(|p| dc_loss(model, p, &data.dc, I_FLOOR), &dc_bounds, &de1)
    };
    let dc_params = step1.x.clone();

    let gm_seed = dc_gm(model, &dc_params, data.bias_vgs, data.bias_vds);
    let gds_seed = dc_gds(model, &dc_params, data.bias_vgs, data.bias_vds).max(1e-4);
    let mut ss_box = ss_bounds_seeded(gm_seed, gds_seed, 0.3);
    // Pin the reactive shell (vector entries 10..15, scaled units) to
    // ±10 % — the quantities a cold measurement identifies to ~1 %.
    let reactive_scaled = [
        extrinsics.lg * 1e9,
        extrinsics.ld * 1e9,
        extrinsics.ls * 1e9,
        extrinsics.cpg * 1e12,
        extrinsics.cpd * 1e12,
    ];
    let mut lo = ss_box.lo().to_vec();
    let mut hi = ss_box.hi().to_vec();
    for (k, &v) in reactive_scaled.iter().enumerate() {
        lo[10 + k] = (v * 0.9).max(lo[10 + k]);
        hi[10 + k] = (v * 1.1).min(hi[10 + k]).max(lo[10 + k]);
    }
    ss_box = Bounds::new(lo, hi).expect("pinned bounds valid");

    let de2 = DeConfig {
        max_evals: config.step2_evals,
        seed: config.seed.wrapping_add(1),
        ..Default::default()
    };
    let step2 = {
        let _span = rfkit_obs::span("extract.step2_ss");
        differential_evolution(
            |v| sparam_loss(&ss_from_vec(v), &data.sparams),
            &ss_box,
            &de2,
        )
    };

    let joint = JointVector {
        model,
        n_dc: dc_params.len(),
        bias_vgs: data.bias_vgs,
        bias_vds: data.bias_vds,
    };
    let x0 = joint.pack(&dc_params, &step2.x);
    let joint_bounds = joint.bounds(&dc_bounds, &ss_box);
    let evals3 = std::cell::Cell::new(0usize);
    let _span3 = rfkit_obs::span("extract.step3_joint");
    let lm = levenberg_marquardt(
        |x| {
            evals3.set(evals3.get() + 1);
            let (dc_p, ss) = joint.unpack(x);
            let mut r = dc_residuals(model, &dc_p, &data.dc, I_FLOOR);
            r.extend(sparam_residuals(&ss, &data.sparams));
            r
        },
        &x0,
        &joint_bounds,
        &LmConfig {
            max_evals: config.step3_evals,
            ..Default::default()
        },
    );
    drop(_span3);
    let (dc_final, ss_final) = joint.unpack(&lm.x);
    let e1 = step1.evaluations;
    let e2 = step2.evaluations;
    let e3 = evals3.get();
    let ss_step1 = ss_from_vec(&ss_box.center());
    let ss_step2 = ss_from_vec(&step2.x);
    let checkpoints = vec![
        (e1, combined_error(model, &dc_params, &ss_step1, data)),
        (e1 + e2, combined_error(model, &dc_params, &ss_step2, data)),
        (
            e1 + e2 + e3,
            combined_error(model, &dc_final, &ss_final, data),
        ),
    ];
    if rfkit_obs::enabled() {
        for (step, &(evals, err)) in checkpoints.iter().enumerate() {
            rfkit_obs::event(
                "extract.checkpoint",
                &[
                    ("step", (step + 1) as f64),
                    ("evals", evals as f64),
                    ("error", err),
                ],
            );
        }
    }
    ExtractionResult {
        dc_rmse: dc_rmse(model, &dc_final, &data.dc, I_FLOOR),
        sparam_rmse: sparam_rmse(&ss_final, &data.sparams),
        dc_params: dc_final,
        small_signal: ss_final,
        evaluations: [e1, e2, e3],
        checkpoints,
    }
}

/// Packing/unpacking of the joint (DC ++ shell) vector used in step 3.
struct JointVector<'a> {
    model: &'a dyn DcModel,
    n_dc: usize,
    bias_vgs: f64,
    bias_vds: f64,
}

impl JointVector<'_> {
    fn pack(&self, dc: &[f64], ss_vec15: &[f64]) -> Vec<f64> {
        let mut x = dc.to_vec();
        x.extend_from_slice(&ss_vec15[2..]); // drop gm, gds
        x
    }

    fn bounds(&self, dc_bounds: &Bounds, ss_box: &Bounds) -> Bounds {
        let mut lo = dc_bounds.lo().to_vec();
        let mut hi = dc_bounds.hi().to_vec();
        lo.extend_from_slice(&ss_box.lo()[2..]);
        hi.extend_from_slice(&ss_box.hi()[2..]);
        Bounds::new(lo, hi).expect("joint bounds valid")
    }

    fn unpack(&self, x: &[f64]) -> (Vec<f64>, SmallSignalDevice) {
        let dc = x[..self.n_dc].to_vec();
        let gm = dc_gm(self.model, &dc, self.bias_vgs, self.bias_vds).max(1e-3);
        let gds = dc_gds(self.model, &dc, self.bias_vgs, self.bias_vds).max(1e-5);
        let mut v15 = vec![gm, gds * 1e3];
        v15.extend_from_slice(&x[self.n_dc..]);
        (dc, ss_from_vec(&v15))
    }
}

/// Which single optimizer a baseline extraction uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SingleMethod {
    /// Differential evolution only (global, slow tail).
    DeOnly,
    /// Nelder–Mead only from the box center (local, start dependent).
    NelderMeadOnly,
    /// Levenberg–Marquardt only from the box center (local, smooth-only).
    LmOnly,
}

/// Baseline for the convergence study: one optimizer on the *joint*
/// problem (DC params + shell, gm/gds tied), same objective as step 3.
/// The local methods (NM, LM) start from a seed-dependent random point —
/// the realistic situation the three-step procedure is robust against.
/// Returns the result and the `(evaluations, best error)` trace.
pub fn extract_single_method(
    method: SingleMethod,
    model: &dyn DcModel,
    data: &ExtractionData,
    budget: usize,
    seed: u64,
) -> (ExtractionResult, Vec<(usize, f64)>) {
    use rfkit_num::rng::Rng64;
    let joint = JointVector {
        model,
        n_dc: model.param_names().len(),
        bias_vgs: data.bias_vgs,
        bias_vds: data.bias_vds,
    };
    let bounds = joint.bounds(&model.param_bounds(), &crate::ssvector::ss_bounds());
    let start = {
        let mut rng = Rng64::new(seed.wrapping_mul(0x9e37_79b9));
        bounds.sample(&mut rng)
    };
    let counter = rfkit_opt::CountingObjective::new(|x: &[f64]| {
        let (dc_p, ss) = joint.unpack(x);
        dc_loss(model, &dc_p, &data.dc, I_FLOOR) + sparam_loss(&ss, &data.sparams)
    });
    let x_best = match method {
        SingleMethod::DeOnly => {
            differential_evolution(
                |x| counter.eval(x),
                &bounds,
                &DeConfig {
                    max_evals: budget,
                    seed,
                    ..Default::default()
                },
            )
            .x
        }
        SingleMethod::NelderMeadOnly => {
            nelder_mead(
                |x| counter.eval(x),
                &start,
                &bounds,
                &NelderMeadConfig {
                    max_evals: budget,
                    ..Default::default()
                },
            )
            .x
        }
        SingleMethod::LmOnly => {
            levenberg_marquardt(
                |x| {
                    // LM needs residuals; count each call once.
                    let (dc_p, ss) = joint.unpack(x);
                    counter.eval(x);
                    let mut r = dc_residuals(model, &dc_p, &data.dc, I_FLOOR);
                    r.extend(sparam_residuals(&ss, &data.sparams));
                    r
                },
                &start,
                &bounds,
                &LmConfig {
                    max_evals: budget,
                    ..Default::default()
                },
            )
            .x
        }
    };
    let (dc_final, ss_final) = joint.unpack(&x_best);
    let result = ExtractionResult {
        dc_rmse: dc_rmse(model, &dc_final, &data.dc, I_FLOOR),
        sparam_rmse: sparam_rmse(&ss_final, &data.sparams),
        dc_params: dc_final,
        small_signal: ss_final,
        evaluations: [counter.count(), 0, 0],
        checkpoints: Vec::new(),
    };
    (result, counter.trace())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfkit_device::dc::Angelov;
    use rfkit_device::{GoldenDevice, MeasurementNoise};

    fn dataset(noise: MeasurementNoise) -> ExtractionData {
        let g = GoldenDevice::default();
        let (vgs_grid, vds_grid) = GoldenDevice::standard_iv_grid();
        let bias_vgs = g.device.bias_for_current(3.0, 0.06).unwrap();
        ExtractionData {
            dc: g.measure_dc(&vgs_grid, &vds_grid, &noise),
            sparams: g.measure_sparams(bias_vgs, 3.0, &GoldenDevice::standard_freq_grid(), &noise),
            bias_vgs,
            bias_vds: 3.0,
        }
    }

    fn quick_config() -> ThreeStepConfig {
        ThreeStepConfig {
            step1_evals: 8_000,
            step2_evals: 12_000,
            step3_evals: 800,
            seed: 5,
        }
    }

    #[test]
    fn recovers_angelov_model_from_clean_data() {
        let data = dataset(MeasurementNoise::none());
        let r = three_step(&Angelov, &data, &quick_config());
        assert!(r.dc_rmse < 0.02, "DC rmse = {}", r.dc_rmse);
        assert!(r.sparam_rmse < 0.05, "S rmse = {}", r.sparam_rmse);
    }

    #[test]
    fn noisy_data_extraction_close_to_noise_floor() {
        let data = dataset(MeasurementNoise::default());
        let r = three_step(&Angelov, &data, &quick_config());
        // 0.5 % noise: the fit cannot beat it, but must get near it.
        assert!(r.dc_rmse < 0.05, "DC rmse = {}", r.dc_rmse);
        assert!(r.sparam_rmse < 0.08, "S rmse = {}", r.sparam_rmse);
    }

    #[test]
    fn checkpoints_are_monotone_in_evaluations() {
        let data = dataset(MeasurementNoise::none());
        let r = three_step(&Angelov, &data, &quick_config());
        assert_eq!(r.checkpoints.len(), 3);
        assert!(r.checkpoints.windows(2).all(|w| w[1].0 > w[0].0));
        // The refinement must not make things worse.
        assert!(r.checkpoints[2].1 <= r.checkpoints[1].1 * 1.01);
    }

    #[test]
    fn single_methods_run_and_trace() {
        let data = dataset(MeasurementNoise::none());
        for method in [
            SingleMethod::DeOnly,
            SingleMethod::NelderMeadOnly,
            SingleMethod::LmOnly,
        ] {
            let (r, trace) = extract_single_method(method, &Angelov, &data, 3_000, 3);
            assert!(!trace.is_empty(), "{method:?} must record a trace");
            assert!(
                trace.windows(2).all(|w| w[1].1 <= w[0].1),
                "{method:?} trace must be non-increasing"
            );
            assert!(r.dc_rmse.is_finite());
        }
    }

    #[test]
    fn three_step_beats_local_methods() {
        let data = dataset(MeasurementNoise::none());
        let cfg = quick_config();
        let budget = cfg.step1_evals + cfg.step2_evals + cfg.step3_evals;
        let three = three_step(&Angelov, &data, &cfg);
        let (nm, _) =
            extract_single_method(SingleMethod::NelderMeadOnly, &Angelov, &data, budget, 1);
        let (lm, _) = extract_single_method(SingleMethod::LmOnly, &Angelov, &data, budget, 1);
        let err3 = three.dc_rmse + three.sparam_rmse;
        assert!(
            err3 < (nm.dc_rmse + nm.sparam_rmse) * 0.8,
            "three-step {err3} vs NM {}",
            nm.dc_rmse + nm.sparam_rmse
        );
        assert!(
            err3 < (lm.dc_rmse + lm.sparam_rmse) * 0.8,
            "three-step {err3} vs LM {}",
            lm.dc_rmse + lm.sparam_rmse
        );
    }
}
