//! Cold-FET extrinsic extraction — the classic "step 0" of pHEMT
//! identification (Dambrine-style).
//!
//! With the drain at 0 V the transistor has no transconductance: it is a
//! passive RC network whose response is dominated by the extrinsic shell
//! (Rg, Rd, Rs, Lg, Ld, Ls, pads) plus the channel resistance. Fitting
//! the cold S-parameters therefore pins the shell *independently of the
//! DC model*, and the warm small-signal fit (step 2 of the three-step
//! procedure) can then run with the shell frozen — fewer free parameters,
//! better identifiability.

use crate::objective::sparam_loss;
use crate::ssvector::{ss_from_vec, SS_NAMES};
use rfkit_device::{Extrinsic, SmallSignalDevice};
use rfkit_net::SParams;
use rfkit_opt::{differential_evolution, levenberg_marquardt, Bounds, DeConfig, LmConfig};

/// Configuration of the cold-FET fit.
#[derive(Debug, Clone, PartialEq)]
pub struct ColdFetConfig {
    /// DE evaluations for the global phase.
    pub global_evals: usize,
    /// LM residual evaluations for the polish.
    pub polish_evals: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ColdFetConfig {
    fn default() -> Self {
        ColdFetConfig {
            global_evals: 12_000,
            polish_evals: 800,
            seed: 0xc01d,
        }
    }
}

/// Result of the cold-FET extraction.
#[derive(Debug, Clone)]
pub struct ColdFetResult {
    /// The fitted extrinsic shell.
    pub extrinsic: Extrinsic,
    /// The full cold-state equivalent circuit (gm pinned to ~0).
    pub cold_model: SmallSignalDevice,
    /// Final S-parameter RMSE of the cold fit.
    pub sparam_rmse: f64,
    /// Objective evaluations used.
    pub evaluations: usize,
}

/// Bounds for the cold fit: the standard 15-vector box with `gm` pinned to
/// (near) zero and `gds` opened up to channel-conductance levels.
fn cold_bounds() -> Bounds {
    let base = crate::ssvector::ss_bounds();
    let mut lo = base.lo().to_vec();
    let mut hi = base.hi().to_vec();
    // gm ≈ 0 at Vds = 0 (a tiny floor keeps conversions well posed).
    lo[0] = 1e-4;
    hi[0] = 2e-3;
    // gds is the cold channel conductance: up to ~1 S (units: mS).
    lo[1] = 10.0;
    hi[1] = 1000.0;
    Bounds::new(lo, hi).expect("cold bounds valid")
}

/// Fits the extrinsic shell to cold-FET (Vds = 0, gate near pinch-open)
/// S-parameters.
pub fn cold_fet_extraction(
    cold_sparams: &[(f64, SParams)],
    config: &ColdFetConfig,
) -> ColdFetResult {
    let bounds = cold_bounds();
    let evals = std::sync::atomic::AtomicUsize::new(0);
    let objective = |v: &[f64]| {
        evals.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        sparam_loss(&ss_from_vec(v), cold_sparams)
    };
    let de = differential_evolution(
        objective,
        &bounds,
        &DeConfig {
            max_evals: config.global_evals,
            seed: config.seed,
            ..Default::default()
        },
    );
    let lm = levenberg_marquardt(
        |v| {
            evals.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            crate::objective::sparam_residuals(&ss_from_vec(v), cold_sparams)
        },
        &de.x,
        &bounds,
        &LmConfig {
            max_evals: config.polish_evals,
            ..Default::default()
        },
    );
    let cold_model = ss_from_vec(&lm.x);
    ColdFetResult {
        extrinsic: cold_model.extrinsic,
        sparam_rmse: crate::objective::sparam_rmse(&cold_model, cold_sparams),
        cold_model,
        evaluations: evals.load(std::sync::atomic::Ordering::Relaxed),
    }
}

/// Names of the shell entries within the 15-vector (for reports).
pub fn shell_names() -> &'static [&'static str] {
    &SS_NAMES[7..]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfkit_device::{GoldenDevice, MeasurementNoise};

    /// Simulated cold-FET measurement of the golden device: Vds = 0,
    /// gate driven toward the open channel.
    fn cold_measurement(noise: MeasurementNoise) -> (GoldenDevice, Vec<(f64, SParams)>) {
        let g = GoldenDevice::default();
        let rows = g.measure_sparams(0.25, 0.0, &GoldenDevice::standard_freq_grid(), &noise);
        (g, rows)
    }

    #[test]
    fn golden_cold_state_is_passive() {
        let (_, rows) = cold_measurement(MeasurementNoise::none());
        for (f, s) in &rows {
            assert!(
                s.is_passive(5e-3),
                "cold FET must be passive at {f}: |S21| = {}",
                s.s21().abs()
            );
        }
    }

    #[test]
    fn recovers_extrinsic_resistances_and_inductances() {
        let (g, rows) = cold_measurement(MeasurementNoise::none());
        let result = cold_fet_extraction(&rows, &ColdFetConfig::default());
        assert!(
            result.sparam_rmse < 0.01,
            "cold fit RMSE {}",
            result.sparam_rmse
        );
        let truth = g.device.extrinsic;
        let got = result.extrinsic;
        // Series elements are well identified by the cold condition.
        assert!(
            (got.lg - truth.lg).abs() / truth.lg < 0.25,
            "Lg {} vs {}",
            got.lg,
            truth.lg
        );
        assert!(
            (got.ld - truth.ld).abs() / truth.ld < 0.25,
            "Ld {} vs {}",
            got.ld,
            truth.ld
        );
        assert!(
            (got.ls - truth.ls).abs() / truth.ls < 0.4,
            "Ls {} vs {}",
            got.ls,
            truth.ls
        );
        // Resistances to within an ohm-ish (Rg/Rd trade against the
        // channel resistance; the sums are what the warm fit needs).
        let r_in_sum_true = truth.rg + truth.rs;
        let r_in_sum_got = got.rg + got.rs;
        assert!(
            (r_in_sum_got - r_in_sum_true).abs() < 1.2,
            "input resistance sum {} vs {}",
            r_in_sum_got,
            r_in_sum_true
        );
    }

    #[test]
    fn cold_fit_survives_instrument_noise() {
        let (_, rows) = cold_measurement(MeasurementNoise::default());
        let result = cold_fet_extraction(
            &rows,
            &ColdFetConfig {
                global_evals: 8_000,
                polish_evals: 500,
                seed: 3,
            },
        );
        assert!(result.sparam_rmse < 0.03, "RMSE {}", result.sparam_rmse);
        assert!(result.extrinsic.lg > 0.05e-9 && result.extrinsic.lg < 2e-9);
    }

    #[test]
    fn shell_names_cover_eight_entries() {
        assert_eq!(shell_names().len(), 8);
        assert_eq!(shell_names()[0], "rg_ohm");
    }
}
