//! Measurement-data plumbing across crates: swept responses, Touchstone
//! round trips and build reproducibility.

use lna::{design_lna, measure, BuildConfig, BuiltAmplifier, DesignConfig, DesignGoals};
use rfkit_device::Phemt;
use rfkit_net::touchstone::{parse_s2p, write_s2p, TouchstoneFormat};
use rfkit_num::linspace;

#[test]
fn measured_amplifier_survives_touchstone_roundtrip() {
    let device = Phemt::atf54143_like();
    let design = design_lna(
        &device,
        &DesignGoals::default(),
        &DesignConfig {
            max_evals: 3_000,
            seed: 5,
            ..Default::default()
        },
    );
    let cfg = BuildConfig::default();
    let built = BuiltAmplifier::build(&design.snapped, &cfg);
    let freqs = linspace(1.0e9, 2.0e9, 11);
    let session = measure(&device, &built, &freqs, &cfg).expect("unit alive");

    let text = write_s2p(&session.response.s_rows(), &[], TouchstoneFormat::Ri);
    let parsed = parse_s2p(&text).expect("own output parses");
    assert_eq!(parsed.s_rows.len(), 11);
    for ((fa, sa), point) in parsed.s_rows.iter().zip(session.response.iter()) {
        assert!((fa - point.freq_hz).abs() < 1.0);
        assert!((sa.s21() - point.s.s21()).abs() < 1e-8);
        assert!((sa.s11() - point.s.s11()).abs() < 1e-8);
    }
}

#[test]
fn same_seed_same_board_different_seed_different_board() {
    let device = Phemt::atf54143_like();
    let vars = lna::DesignVariables {
        vds: 3.0,
        ids: 0.05,
        l1: 6.8e-9,
        ls_deg: 0.4e-9,
        l2: 10e-9,
        c2: 2.2e-12,
        r_bias: 30.0,
    };
    let freqs = [1.4e9];
    let cfg_a = BuildConfig {
        seed: 1,
        ..Default::default()
    };
    let cfg_b = BuildConfig {
        seed: 2,
        ..Default::default()
    };
    let m_a1 = measure(
        &device,
        &BuiltAmplifier::build(&vars, &cfg_a),
        &freqs,
        &cfg_a,
    )
    .unwrap();
    let m_a2 = measure(
        &device,
        &BuiltAmplifier::build(&vars, &cfg_a),
        &freqs,
        &cfg_a,
    )
    .unwrap();
    let m_b = measure(
        &device,
        &BuiltAmplifier::build(&vars, &cfg_b),
        &freqs,
        &cfg_b,
    )
    .unwrap();
    let s21 = |m: &lna::MeasurementSession| m.response.iter().next().unwrap().s.s21();
    assert_eq!(s21(&m_a1), s21(&m_a2), "one seed = one physical board");
    assert_ne!(s21(&m_a1), s21(&m_b), "different seed = different board");
}

#[test]
fn unit_to_unit_spread_is_tolerance_scale() {
    // Measure 8 builds; the spread of in-band gain across units must look
    // like ±5 % parts: visible but bounded.
    let device = Phemt::atf54143_like();
    let vars = lna::DesignVariables {
        vds: 3.0,
        ids: 0.05,
        l1: 6.8e-9,
        ls_deg: 0.4e-9,
        l2: 10e-9,
        c2: 2.2e-12,
        r_bias: 30.0,
    };
    let mut gains = Vec::new();
    for seed in 0..8u64 {
        let cfg = BuildConfig {
            seed,
            vna_noise: 0.0,
            nf_meter_sigma_db: 0.0,
            ..Default::default()
        };
        let built = BuiltAmplifier::build(&vars, &cfg);
        let session = measure(&device, &built, &[1.4e9], &cfg).expect("alive");
        gains.push(
            10.0 * session
                .response
                .iter()
                .next()
                .unwrap()
                .s
                .s21()
                .norm_sqr()
                .log10(),
        );
    }
    let spread = rfkit_num::stats::max(&gains) - rfkit_num::stats::min(&gains);
    assert!(spread > 0.01, "units must differ: spread {spread} dB");
    assert!(spread < 2.0, "but stay in family: spread {spread} dB");
}
