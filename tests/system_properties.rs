//! System-level property tests: invariants that must hold for *any*
//! design vector the optimizer might visit.

use lna::{Amplifier, BandMetrics, BandSpec, DesignVariables};
use proptest::prelude::*;
use rfkit_device::Phemt;

fn design_strategy() -> impl Strategy<Value = DesignVariables> {
    let b = DesignVariables::bounds();
    let ranges: Vec<_> = b
        .lo()
        .iter()
        .zip(b.hi())
        .map(|(&l, &h)| l..=h)
        .collect();
    (
        ranges[0].clone(),
        ranges[1].clone(),
        ranges[2].clone(),
        ranges[3].clone(),
        ranges[4].clone(),
        ranges[5].clone(),
        ranges[6].clone(),
    )
        .prop_map(|(vds, ids_ma, l1, ls, l2, c2, r)| {
            DesignVariables::from_vec(&[vds, ids_ma, l1, ls, l2, c2, r])
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn any_in_box_design_evaluates_sanely(vars in design_strategy()) {
        let device = Phemt::atf54143_like();
        let amp = Amplifier::new(&device, vars);
        match amp.metrics(1.4e9) {
            None => {
                // Only an unreachable bias may fail inside the box.
                prop_assert!(device.bias_for_current(vars.vds, vars.ids).is_none());
            }
            Some(m) => {
                prop_assert!(m.nf_db.is_finite() && m.nf_db > 0.0, "NF {}", m.nf_db);
                prop_assert!(m.gain_db.is_finite());
                prop_assert!(m.gain_db < 40.0, "no free gain: {}", m.gain_db);
                prop_assert!(m.s11_db <= 0.0 + 1e-9, "passive input reflection");
                prop_assert!(m.k.is_finite() || m.k.is_infinite());
            }
        }
    }

    #[test]
    fn band_worst_case_dominates_every_point(vars in design_strategy()) {
        let device = Phemt::atf54143_like();
        let amp = Amplifier::new(&device, vars);
        let band = BandSpec::gnss();
        if let Some(bm) = BandMetrics::evaluate(&amp, &band) {
            for f in band.grid() {
                let m = amp.metrics(f).expect("band eval implies point eval");
                prop_assert!(bm.worst_nf_db >= m.nf_db - 1e-9);
                prop_assert!(bm.min_gain_db <= m.gain_db + 1e-9);
                prop_assert!(bm.worst_s11_db >= m.s11_db - 1e-9);
            }
        }
    }

    #[test]
    fn to_vec_from_vec_roundtrip(vars in design_strategy()) {
        let back = DesignVariables::from_vec(&vars.to_vec());
        prop_assert!((back.vds - vars.vds).abs() < 1e-12);
        prop_assert!((back.ids - vars.ids).abs() < 1e-15);
        prop_assert!((back.l1 - vars.l1).abs() < 1e-21);
        prop_assert!((back.c2 - vars.c2).abs() < 1e-24);
        prop_assert!((back.r_bias - vars.r_bias).abs() < 1e-12);
    }

    #[test]
    fn snapping_stays_in_bounds(vars in design_strategy()) {
        let snapped = lna::snap_to_catalog(vars);
        // Catalog values may poke just past the continuous box (E24 grid),
        // but never far: within one E24 step of it.
        let b = DesignVariables::bounds();
        for (v, (&lo, &hi)) in snapped
            .to_vec()
            .iter()
            .zip(b.lo().iter().zip(b.hi()))
        {
            prop_assert!(*v > lo * 0.85 - 1e-9 && *v < hi * 1.15 + 1e-9,
                "snapped {v} vs [{lo}, {hi}]");
        }
    }
}
