//! System-level property tests: invariants that must hold for *any*
//! design vector the optimizer might visit.
//!
//! Implemented as plain seeded-loop tests (no proptest — the offline
//! build environment cannot fetch external crates): each property draws
//! design vectors uniformly from the optimizer box with the workspace
//! PRNG and checks the invariant on every sample.

use lna::{Amplifier, BandMetrics, BandSpec, DesignVariables};
use rfkit_device::Phemt;
use rfkit_num::rng::Rng64;

const CASES: usize = 40;

/// Uniform sample from the optimizer's design box.
fn sample_design(rng: &mut Rng64) -> DesignVariables {
    let b = DesignVariables::bounds();
    let x: Vec<f64> = b
        .lo()
        .iter()
        .zip(b.hi())
        .map(|(&l, &h)| rng.uniform(l, h))
        .collect();
    DesignVariables::from_vec(&x)
}

#[test]
fn any_in_box_design_evaluates_sanely() {
    let device = Phemt::atf54143_like();
    let mut rng = Rng64::new(0x5157_e001);
    for case in 0..CASES {
        let vars = sample_design(&mut rng);
        let amp = Amplifier::new(&device, vars);
        match amp.metrics(1.4e9) {
            None => {
                // Only an unreachable bias may fail inside the box.
                assert!(
                    device.bias_for_current(vars.vds, vars.ids).is_none(),
                    "case {case}: evaluation failed with reachable bias: {vars:?}"
                );
            }
            Some(m) => {
                assert!(
                    m.nf_db.is_finite() && m.nf_db > 0.0,
                    "case {case}: NF {}",
                    m.nf_db
                );
                assert!(m.gain_db.is_finite(), "case {case}");
                assert!(m.gain_db < 40.0, "case {case}: no free gain: {}", m.gain_db);
                assert!(m.s11_db <= 1e-9, "case {case}: passive input reflection");
                assert!(m.k.is_finite() || m.k.is_infinite(), "case {case}");
            }
        }
    }
}

#[test]
fn band_worst_case_dominates_every_point() {
    let device = Phemt::atf54143_like();
    let band = BandSpec::gnss();
    let mut rng = Rng64::new(0x5157_e002);
    for case in 0..CASES {
        let vars = sample_design(&mut rng);
        let amp = Amplifier::new(&device, vars);
        if let Some(bm) = BandMetrics::evaluate(&amp, &band) {
            for &f in band.grid() {
                let m = amp.metrics(f).expect("band eval implies point eval");
                assert!(bm.worst_nf_db >= m.nf_db - 1e-9, "case {case} at {f} Hz");
                assert!(bm.min_gain_db <= m.gain_db + 1e-9, "case {case} at {f} Hz");
                assert!(bm.worst_s11_db >= m.s11_db - 1e-9, "case {case} at {f} Hz");
            }
        }
    }
}

#[test]
fn to_vec_from_vec_roundtrip() {
    let mut rng = Rng64::new(0x5157_e003);
    for case in 0..CASES {
        let vars = sample_design(&mut rng);
        let back = DesignVariables::from_vec(&vars.to_vec());
        assert!((back.vds - vars.vds).abs() < 1e-12, "case {case}");
        assert!((back.ids - vars.ids).abs() < 1e-15, "case {case}");
        assert!((back.l1 - vars.l1).abs() < 1e-21, "case {case}");
        assert!((back.c2 - vars.c2).abs() < 1e-24, "case {case}");
        assert!((back.r_bias - vars.r_bias).abs() < 1e-12, "case {case}");
    }
}

#[test]
fn snapping_stays_in_bounds() {
    let b = DesignVariables::bounds();
    let mut rng = Rng64::new(0x5157_e004);
    for case in 0..CASES {
        let vars = sample_design(&mut rng);
        let snapped = lna::snap_to_catalog(vars);
        // Catalog values may poke just past the continuous box (E24 grid),
        // but never far: within one E24 step of it.
        for (v, (&lo, &hi)) in snapped.to_vec().iter().zip(b.lo().iter().zip(b.hi())) {
            assert!(
                *v > lo * 0.85 - 1e-9 && *v < hi * 1.15 + 1e-9,
                "case {case}: snapped {v} vs [{lo}, {hi}]"
            );
        }
    }
}
