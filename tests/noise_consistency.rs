//! Cross-crate noise-theory consistency: the correlation-matrix machinery
//! (rfkit-net), the device noise model (rfkit-device), the passive models
//! (rfkit-passive) and the amplifier analysis (lna) must all tell the same
//! story.

use lna::{Amplifier, DesignVariables};
use rfkit_device::fukui::{fit_kf, fukui_fmin};
use rfkit_device::Phemt;
use rfkit_net::gains::available_gain;
use rfkit_net::noise::{friis, CascadeStage};
use rfkit_net::NoisyAbcd;
use rfkit_num::units::T0_KELVIN;
use rfkit_num::Complex;
use rfkit_passive::{Component, Inductor, Microstrip, Orientation, Substrate};

fn vars() -> DesignVariables {
    DesignVariables {
        vds: 3.0,
        ids: 0.050,
        l1: 6.8e-9,
        ls_deg: 0.4e-9,
        l2: 10e-9,
        c2: 2.2e-12,
        r_bias: 30.0,
    }
}

#[test]
fn correlation_cascade_matches_friis_for_line_plus_amplifier() {
    // A lossy microstrip line in front of the amplifier: the full
    // correlation-matrix result must equal the Friis combination of the
    // line's loss and the amplifier's noise figure.
    let device = Phemt::atf54143_like();
    let amp = Amplifier::new(&device, vars());
    let f0 = 1.4e9;
    let amp_noisy = amp.noisy_two_port(f0).expect("feasible");
    let mut line = Microstrip::for_impedance(Substrate::fr4(), 50.0, 50e-3);
    line.length = 50e-3;
    let line_noisy = line.two_port(f0, T0_KELVIN);

    // Friis needs available gains and standalone noise factors.
    let line_s = line_noisy.abcd.to_s(50.0).unwrap();
    let line_ga = available_gain(&line_s, Complex::ZERO);
    let line_f = line_noisy
        .noise_params(50.0)
        .unwrap()
        .noise_factor(Complex::ZERO);
    // The amplifier's Friis stage must be evaluated with the source
    // impedance the line presents; the line is near-matched so Γ ≈ 0.
    let amp_f = amp_noisy
        .noise_params(50.0)
        .unwrap()
        .noise_factor(line_s.s22());
    let friis_f = friis(&[
        CascadeStage {
            gain: line_ga,
            noise_factor: line_f,
        },
        CascadeStage {
            gain: 1.0, // last stage gain is irrelevant to F
            noise_factor: amp_f,
        },
    ]);

    let chain_f = line_noisy
        .cascade(&amp_noisy)
        .noise_params(50.0)
        .unwrap()
        .noise_factor(Complex::ZERO);
    assert!(
        (chain_f - friis_f).abs() / friis_f < 0.02,
        "correlation {chain_f} vs Friis {friis_f}"
    );
    // And the line's loss must show up: chain noisier than amp alone.
    let amp_alone = amp_noisy
        .noise_params(50.0)
        .unwrap()
        .noise_factor(Complex::ZERO);
    assert!(chain_f > amp_alone);
}

#[test]
fn fukui_tracks_correlation_model_across_bias() {
    // Fit Fukui's kf once at mid bias/frequency, then check it stays
    // within 35 % of the Pospieszalski result across bias points.
    let device = Phemt::atf54143_like();
    let f0 = 1.5e9;
    let op_mid = device.operating_point(device.bias_for_current(3.0, 0.05).unwrap(), 3.0);
    let ss_mid = device.small_signal(&op_mid);
    let fmin_mid = device
        .noisy_two_port(f0, &op_mid)
        .noise_params(50.0)
        .unwrap()
        .fmin;
    let kf = fit_kf(&ss_mid, f0, fmin_mid);
    for ids in [0.03, 0.07] {
        let op = device.operating_point(device.bias_for_current(3.0, ids).unwrap(), 3.0);
        let ss = device.small_signal(&op);
        let posp = device
            .noisy_two_port(f0, &op)
            .noise_params(50.0)
            .unwrap()
            .fmin
            - 1.0;
        let fukui = fukui_fmin(&ss, f0, kf) - 1.0;
        let ratio = fukui / posp;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "Fukui/Pospieszalski at {ids} A: {ratio}"
        );
    }
}

#[test]
fn amplifier_nf_dominated_by_device_not_passives() {
    // Remove the passives' loss (ideal elements) and check the NF barely
    // moves: the matching-network loss contributes tenths of a dB at most.
    let device = Phemt::atf54143_like();
    let amp = Amplifier::new(&device, vars());
    let f0 = 1.4e9;
    let nf_with_parts = amp.metrics(f0).unwrap().nf_db;

    // Device alone with degeneration, no matching network.
    let op = amp.operating_point().unwrap();
    let mut ss = device.small_signal(&op);
    ss.extrinsic.ls += vars().ls_deg;
    let dev_nf = ss
        .noisy_two_port(f0, &device.noise.temperatures(op.ids))
        .noise_params(50.0)
        .unwrap()
        .nf_db(Complex::ZERO);
    // The matching network both adds loss (worse) and moves the source
    // impedance toward Γopt (better); net effect stays within ~0.6 dB.
    assert!(
        (nf_with_parts - dev_nf).abs() < 0.6,
        "amp NF {nf_with_parts} vs bare device NF {dev_nf}"
    );
}

#[test]
fn lossy_inductor_noise_equals_equivalent_resistor_noise() {
    // A shunt inductor's noise at f comes only from its ESR: replacing it
    // with the exact same complex impedance synthesized from R+X gives the
    // identical noise parameters.
    let f0 = 1.5e9;
    let ind = Inductor::chip_0402(10e-9);
    let z = ind.impedance(f0);
    let via_component = ind.two_port(f0, Orientation::Shunt, T0_KELVIN);
    let via_impedance = NoisyAbcd::passive_shunt(z.recip(), T0_KELVIN);
    let np1 = via_component.noise_params(50.0).unwrap();
    let np2 = via_impedance.noise_params(50.0).unwrap();
    assert!((np1.fmin - np2.fmin).abs() < 1e-12);
    assert!((np1.rn - np2.rn).abs() < 1e-12);
}
