//! End-to-end integration: characterization → extraction → design →
//! as-built measurement — the whole paper pipeline across every crate.

use lna::{design_lna, measure, Amplifier, BuildConfig, BuiltAmplifier, DesignConfig, DesignGoals};
use rfkit_device::dc::Angelov;
use rfkit_device::{GoldenDevice, MeasurementNoise, Phemt};
use rfkit_extract::{three_step, ExtractionData, ThreeStepConfig};
use rfkit_num::linspace;

fn characterize(noise: MeasurementNoise) -> (GoldenDevice, ExtractionData) {
    let golden = GoldenDevice::default();
    let (vgs_grid, vds_grid) = GoldenDevice::standard_iv_grid();
    let bias_vgs = golden.device.bias_for_current(3.0, 0.06).unwrap();
    let data = ExtractionData {
        dc: golden.measure_dc(&vgs_grid, &vds_grid, &noise),
        sparams: golden.measure_sparams(bias_vgs, 3.0, &GoldenDevice::standard_freq_grid(), &noise),
        bias_vgs,
        bias_vds: 3.0,
    };
    (golden, data)
}

#[test]
fn extracted_model_predicts_unseen_bias_points() {
    // Extract from data taken at 60 mA, then predict the device at 30 mA —
    // the generalization a design flow depends on.
    let (golden, data) = characterize(MeasurementNoise::default());
    let cfg = ThreeStepConfig {
        step1_evals: 10_000,
        step2_evals: 10_000,
        step3_evals: 800,
        seed: 42,
    };
    let result = three_step(&Angelov, &data, &cfg);
    for ids in [0.02, 0.03, 0.05] {
        let vgs_true = golden.device.bias_for_current(3.0, ids).unwrap();
        let vgs_fit =
            rfkit_device::dc::vgs_for_current(&Angelov, &result.dc_params, 3.0, ids, -2.0, 1.0)
                .expect("extracted model must reach the bias");
        assert!(
            (vgs_fit - vgs_true).abs() < 0.03,
            "bias prediction at {ids} A: {vgs_fit} vs {vgs_true}"
        );
    }
}

#[test]
fn design_on_extracted_device_matches_design_on_golden() {
    // Build a Phemt from the extraction and design with it; the resulting
    // amplifier, evaluated on the TRUE (golden) device, must still be
    // feasible and close in performance — the fidelity loop the paper's
    // methodology implies.
    let (golden, data) = characterize(MeasurementNoise::default());
    let cfg = ThreeStepConfig {
        step1_evals: 12_000,
        step2_evals: 12_000,
        step3_evals: 1_000,
        seed: 43,
    };
    let result = three_step(&Angelov, &data, &cfg);
    let extracted_device = golden_like_shell(&golden, &result);

    let design_cfg = DesignConfig {
        max_evals: 4_000,
        seed: 7,
        ..Default::default()
    };
    let design = design_lna(&extracted_device, &DesignGoals::default(), &design_cfg);

    // Evaluate the SAME design on the true device.
    let amp_true = Amplifier::new(&golden.device, design.snapped);
    let metrics = lna::BandMetrics::evaluate(&amp_true, &lna::BandSpec::gnss())
        .expect("design transfers to the true device");
    assert!(
        metrics.min_mu > 0.99,
        "stability transfers (mu = {})",
        metrics.min_mu
    );
    assert!(
        metrics.worst_nf_db < design.snapped_metrics.worst_nf_db + 0.25,
        "NF transfers: {} vs {} designed",
        metrics.worst_nf_db,
        design.snapped_metrics.worst_nf_db
    );
    assert!(
        metrics.min_gain_db > design.snapped_metrics.min_gain_db - 1.5,
        "gain transfers: {} vs {} designed",
        metrics.min_gain_db,
        design.snapped_metrics.min_gain_db
    );
}

/// The extracted DC params with the golden device's capacitance/noise
/// shells (the extraction recovers the small-signal shell separately; the
/// Phemt type wants the bias-dependent models, which DC+S data at one bias
/// cannot fully determine).
fn golden_like_shell(golden: &GoldenDevice, result: &rfkit_extract::ExtractionResult) -> Phemt {
    Phemt {
        dc_model: Box::new(Angelov),
        dc_params: result.dc_params.clone(),
        cap: golden.device.cap,
        ri: result.small_signal.intrinsic.ri,
        tau: result.small_signal.intrinsic.tau,
        extrinsic: result.small_signal.extrinsic,
        noise: golden.device.noise,
    }
}

#[test]
fn full_pipeline_design_to_measurement() {
    let device = Phemt::atf54143_like();
    let design = design_lna(
        &device,
        &DesignGoals::default(),
        &DesignConfig {
            max_evals: 4_000,
            seed: 3,
            ..Default::default()
        },
    );
    let cfg = BuildConfig::default();
    let built = BuiltAmplifier::build(&design.snapped, &cfg);
    let freqs = linspace(1.1e9, 1.7e9, 7);
    let session = measure(&device, &built, &freqs, &cfg).expect("unit alive");
    // The measured in-band gain stays within 2 dB of the design's and the
    // NF within 0.2 dB — the paper-style design/measurement agreement.
    let amp = Amplifier::new(&device, design.snapped);
    for (point, nf) in session.response.iter().zip(&session.nf_db) {
        let m = amp.metrics(point.freq_hz).unwrap();
        let gain_meas = 10.0 * point.s.s21().norm_sqr().log10();
        assert!(
            (gain_meas - m.gain_db).abs() < 2.0,
            "gain gap at {} GHz: {gain_meas} vs {}",
            point.freq_hz / 1e9,
            m.gain_db
        );
        assert!(
            (nf - m.nf_db).abs() < 0.25,
            "NF gap at {} GHz: {nf} vs {}",
            point.freq_hz / 1e9,
            m.nf_db
        );
    }
}
