//! The two analysis paths — netlist MNA (rfkit-circuit) and analytic ABCD
//! cascade (rfkit-net) — must agree wherever both apply.

use rfkit_circuit::{two_port_s, AcStamps, Circuit};
use rfkit_device::smallsignal::NoiseTemperatures;
use rfkit_device::Phemt;
use rfkit_net::Abcd;
use rfkit_num::units::angular;
use rfkit_num::Complex;

#[test]
fn matching_ladder_agrees_between_solvers() {
    // series L — shunt C — series C ladder at several frequencies.
    let (l1, c_sh, c_se) = (5.6e-9, 1.5e-12, 2.2e-12);
    let mut circuit = Circuit::new();
    circuit
        .inductor("in", "mid", l1)
        .capacitor("mid", "gnd", c_sh)
        .capacitor("mid", "out", c_se)
        .port("in", 50.0)
        .port("out", 50.0);
    for f in [0.8e9, 1.4e9, 2.5e9] {
        let w = angular(f);
        let mna = two_port_s(&circuit, f, &AcStamps::none()).unwrap();
        let cascade = Abcd::series_impedance(Complex::imag(w * l1))
            .cascade(&Abcd::shunt_admittance(Complex::imag(w * c_sh)))
            .cascade(&Abcd::series_impedance(Complex::imag(-1.0 / (w * c_se))))
            .to_s(50.0)
            .unwrap();
        for (a, b) in [
            (mna.s11(), cascade.s11()),
            (mna.s21(), cascade.s21()),
            (mna.s12(), cascade.s12()),
            (mna.s22(), cascade.s22()),
        ] {
            assert!((a - b).abs() < 1e-9, "at {f}: {a} vs {b}");
        }
    }
}

#[test]
fn device_stamp_agrees_with_device_two_port() {
    let device = Phemt::atf54143_like();
    let op = device.operating_point(device.bias_for_current(3.0, 0.06).unwrap(), 3.0);
    let ss = device.small_signal(&op);
    let y_of = move |f: f64| {
        ss.noisy_two_port(f, &NoiseTemperatures::default())
            .abcd
            .to_y()
            .expect("device Y form")
    };
    let mut circuit = Circuit::new();
    let g = circuit.node("g");
    let d = circuit.node("d");
    circuit.port("g", 50.0).port("d", 50.0);
    let stamps = AcStamps::none().two_port(g, d, &y_of);
    for f in [1.0e9, 1.575e9, 3.0e9] {
        let mna = two_port_s(&circuit, f, &stamps).unwrap();
        let direct = ss.s_params(f, 50.0);
        assert!((mna.s21() - direct.s21()).abs() < 1e-6, "S21 at {f}");
        assert!((mna.s11() - direct.s11()).abs() < 1e-6, "S11 at {f}");
        assert!((mna.s22() - direct.s22()).abs() < 1e-6, "S22 at {f}");
    }
}

#[test]
fn biased_fet_netlist_matches_analytic_bias_and_gain() {
    // Bias the FET through the netlist solver, then stamp its
    // linearization and check the amplifier gain equals the device-crate
    // prediction at the solved operating point.
    use rfkit_device::dc::Angelov;
    let device = Phemt::atf54143_like();
    let target_vgs = device.bias_for_current(3.0, 0.05).unwrap();

    let mut dc_net = Circuit::new();
    dc_net
        .vsource("vdd", "gnd", 3.0)
        .vsource("vg", "gnd", target_vgs)
        .inductor("vdd", "drain", 10e-9) // bias choke: DC short
        .fet(
            "vg",
            "drain",
            "gnd",
            Box::new(Angelov),
            device.dc_params.clone(),
        );
    let sol = rfkit_circuit::solve_dc(&dc_net).unwrap();
    let ids = sol.fet_currents[0];
    assert!((ids - 0.05).abs() < 1e-4, "netlist bias: {ids}");

    let op = device.operating_point(target_vgs, 3.0);
    assert!((op.ids - ids).abs() < 1e-6);
    let s = device.noisy_two_port(1.575e9, &op).abcd.to_s(50.0).unwrap();
    assert!(
        s.s21().abs() > 3.0,
        "the solved bias yields a live amplifier"
    );
}
