//! Large-signal analysis cross-checks: the three independent nonlinear
//! paths (power series, fixed-Vds time domain, harmonic balance) must
//! agree where their assumptions overlap, and diverge exactly where the
//! physics says they should.

use rfkit_circuit::hb::{solve, HbConfig, HbTestbench};
use rfkit_circuit::{p1db, power_series, single_tone, time_domain, TwoToneSpec};
use rfkit_device::Phemt;
use rfkit_num::units::dbm_from_watts;
use rfkit_num::Complex;

fn op(device: &Phemt) -> rfkit_device::OperatingPoint {
    device.operating_point(device.bias_for_current(3.0, 0.06).unwrap(), 3.0)
}

#[test]
fn hb_matches_fixed_vds_when_load_swing_is_removed() {
    // With a near-zero load the drain voltage cannot swing: harmonic
    // balance must reduce to the fixed-Vds single-tone result.
    let device = Phemt::atf54143_like();
    let op = op(&device);
    let bench = HbTestbench {
        device: &device,
        op,
        vdd: op.vds + op.ids * 1e-3,
        r_dc_feed: 1e-3,
        load: Box::new(|_| Complex::new(1e-3, 0.0)),
    };
    let a = 0.15; // well into the nonlinear region
    let sol = solve(&bench, a, &HbConfig::default()).expect("converges");
    // Fixed-Vds fundamental current amplitude at the same drive: recompute
    // the spectral component via the single-tone helper with its load set
    // to 50 Ω (the load only scales power, not the current).
    let pin_dbm = dbm_from_watts(a * a / (8.0 * 50.0));
    let (p_out_fixed, _) = single_tone(
        &device,
        &op,
        &TwoToneSpec {
            pin_dbm,
            ..Default::default()
        },
    );
    // Convert both to fundamental current amplitude (A).
    let i_fixed = (2.0 * rfkit_num::units::watts_from_dbm(p_out_fixed) / 50.0).sqrt();
    let i_hb = sol.i_d[1].abs();
    assert!(
        (i_hb - i_fixed).abs() / i_fixed < 2e-3,
        "HB {i_hb} vs fixed-Vds {i_fixed}"
    );
    // And the drain voltage barely moved.
    assert!(sol.v_ds[1].abs() < 1e-3);
}

#[test]
fn loaded_hb_compresses_harder_than_fixed_vds() {
    let device = Phemt::atf54143_like();
    let op = op(&device);
    let r_load = 150.0;
    let bench = HbTestbench {
        device: &device,
        op,
        vdd: op.vds + op.ids * 20.0,
        r_dc_feed: 20.0,
        load: Box::new(move |_| Complex::real(r_load)),
    };
    let cfg = HbConfig::default();
    let gain_drop = |a_small: f64, a_large: f64| {
        let s = solve(&bench, a_small, &cfg).unwrap();
        let l = solve(&bench, a_large, &cfg).unwrap();
        20.0 * (s.i_d[1].abs() / a_small).log10() - 20.0 * (l.i_d[1].abs() / a_large).log10()
    };
    let hb_compression = gain_drop(1e-3, 0.25);
    // Fixed-Vds path at the same drives.
    let fixed = |a: f64| {
        let pin = dbm_from_watts(a * a / (8.0 * 50.0));
        single_tone(
            &device,
            &op,
            &TwoToneSpec {
                pin_dbm: pin,
                r_load,
                ..Default::default()
            },
        )
        .1
    };
    let fixed_compression = fixed(1e-3) - fixed(0.25);
    assert!(
        hb_compression > fixed_compression + 0.5,
        "HB {hb_compression} dB vs fixed {fixed_compression} dB"
    );
}

#[test]
fn power_series_and_time_domain_ip3_track_across_bias() {
    let device = Phemt::atf54143_like();
    let pins: Vec<f64> = (0..9).map(|k| -48.0 + 2.0 * k as f64).collect();
    for ids in [0.03, 0.05, 0.07] {
        let op = device.operating_point(device.bias_for_current(3.0, ids).unwrap(), 3.0);
        let td = rfkit_circuit::ip3_sweep(&pins, |p| {
            time_domain(
                &device,
                &op,
                &TwoToneSpec {
                    pin_dbm: p,
                    ..Default::default()
                },
            )
        });
        let ps = rfkit_circuit::ip3_sweep(&pins, |p| {
            power_series(
                &op,
                &TwoToneSpec {
                    pin_dbm: p,
                    ..Default::default()
                },
            )
        });
        let (a, b) = (td.oip3_dbm.unwrap(), ps.oip3_dbm.unwrap());
        assert!((a - b).abs() < 1.5, "OIP3 at {ids} A: {a} vs {b}");
    }
}

#[test]
fn p1db_consistent_with_compression_curve() {
    let device = Phemt::atf54143_like();
    let op = op(&device);
    let p1 = p1db(&device, &op, -45.0, 10.0).expect("compresses");
    // The single-tone gain at P1dB really is 1 dB below small-signal.
    let gain_at = |p: f64| {
        single_tone(
            &device,
            &op,
            &TwoToneSpec {
                pin_dbm: p,
                ..Default::default()
            },
        )
        .1
    };
    let drop = gain_at(-45.0) - gain_at(p1);
    assert!((drop - 1.0).abs() < 0.02, "gain drop at P1dB = {drop} dB");
    // Memoryless cubic rule of thumb: IIP3 − IP1dB ≈ 9.6 dB (loose band).
    let pins: Vec<f64> = (0..9).map(|k| -48.0 + 2.0 * k as f64).collect();
    let iip3 = rfkit_circuit::ip3_sweep(&pins, |p| {
        time_domain(
            &device,
            &op,
            &TwoToneSpec {
                pin_dbm: p,
                ..Default::default()
            },
        )
    })
    .iip3_dbm
    .unwrap();
    let delta = iip3 - p1;
    assert!(
        (4.0..16.0).contains(&delta),
        "IIP3 − P1dB = {delta} dB (textbook ≈ 9.6)"
    );
}
