//! # gnss-lna
//!
//! Umbrella crate of the reproduction of *"Multi-objective optimization of
//! a low-noise antenna amplifier for multi-constellation
//! satellite-navigation receivers"* (Dobeš et al., SOCC 2015).
//!
//! Re-exports the workspace crates; see the `examples/` directory for
//! runnable walkthroughs and `crates/bench` for the per-table/figure
//! experiment binaries.

#![forbid(unsafe_code)]

pub use lna;
pub use rfkit_circuit;
pub use rfkit_device;
pub use rfkit_extract;
pub use rfkit_net;
pub use rfkit_num;
pub use rfkit_opt;
pub use rfkit_passive;
