//! `lna-cli` — command-line front end to the GNSS LNA reproduction.
//!
//! ```text
//! lna-cli design  [--nf 0.8] [--gain 14] [--evals 12000] [--seed 7]
//! lna-cli extract [--noise 0.005] [--model angelov|curtice2|curtice3|statz|tom]
//! lna-cli measure [--seed 1] [--out amp.s2p]
//! lna-cli yield   [--units 200] [--tolerance 0.05]
//! lna-cli thermal [--evals 10000]
//! lna-cli im3     [--seed 1] [--evals 10000]
//! ```
//!
//! Every subcommand is deterministic for a given `--seed`.

use lna::report::{design_summary, format_table, metrics_summary};
use lna::{
    design_lna, measure, yield_analysis, Amplifier, BandMetrics, BandSpec, BuildConfig,
    BuiltAmplifier, DesignConfig, DesignGoals, YieldSpec,
};
use rfkit_device::dc::{all_models, DcModel};
use rfkit_device::{GoldenDevice, MeasurementNoise, Phemt};
use rfkit_extract::{three_step, ExtractionData, ThreeStepConfig};
use rfkit_net::touchstone::{write_s2p, TouchstoneFormat};
use rfkit_num::linspace;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "design" => cmd_design(&flags),
        "extract" => cmd_extract(&flags),
        "measure" => cmd_measure(&flags),
        "yield" => cmd_yield(&flags),
        "thermal" => cmd_thermal(&flags),
        "im3" => cmd_im3(&flags),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    rfkit_obs::flush();
    if let Some(path) = rfkit_obs::trace_path() {
        eprintln!("trace written to {}", path.display());
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage: lna-cli <command> [flags]

commands:
  design    run the improved goal-attainment design flow
            flags: --nf <dB> --gain <dB> --evals <n> --seed <n>
  extract   three-step pHEMT identification against the golden device
            flags: --noise <rel> --model <angelov|curtice2|curtice3|statz|tom>
  measure   design, build one unit with tolerances, print measured response
            flags: --seed <n> --out <file.s2p> --evals <n>
  yield     Monte-Carlo production yield of the designed amplifier
            flags: --units <n> --tolerance <rel> --evals <n> --seed <n>
  thermal   worst-case band performance from -40 to +85 degC
            flags: --evals <n> --seed <n>
  im3       two-tone IM3 sweep and OIP3 of the designed amplifier
            flags: --seed <n> --evals <n>";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let key = key
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got `{key}`"))?;
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
    }
    Ok(flags)
}

fn get_f64(flags: &HashMap<String, String>, key: &str, default: f64) -> Result<f64, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key}: bad number `{v}`")),
    }
}

fn get_usize(flags: &HashMap<String, String>, key: &str, default: usize) -> Result<usize, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key}: bad integer `{v}`")),
    }
}

fn run_design(flags: &HashMap<String, String>) -> Result<lna::LnaDesign, String> {
    let device = Phemt::atf54143_like();
    let goals = DesignGoals {
        nf_db: get_f64(flags, "nf", 0.8)?,
        gain_db: get_f64(flags, "gain", 14.0)?,
        ..Default::default()
    };
    let config = DesignConfig {
        max_evals: get_usize(flags, "evals", 10_000)?,
        seed: get_usize(flags, "seed", 0x1a5)? as u64,
        band: BandSpec::gnss(),
        improved: true,
    };
    Ok(design_lna(&device, &goals, &config))
}

fn cmd_design(flags: &HashMap<String, String>) -> Result<(), String> {
    let design = run_design(flags)?;
    println!("snapped design:");
    let rows: Vec<Vec<String>> = design_summary(&design.snapped)
        .into_iter()
        .map(|(k, v)| vec![k, v])
        .collect();
    println!("{}", format_table(&["quantity", "value"], &rows));
    println!("band metrics (1.1-1.7 GHz):");
    let rows: Vec<Vec<String>> = metrics_summary(&design.snapped_metrics)
        .into_iter()
        .map(|(k, v)| vec![k, v])
        .collect();
    println!("{}", format_table(&["metric", "value"], &rows));
    println!(
        "attainment = {:.3} in {} evaluations",
        design.attainment, design.evaluations
    );
    Ok(())
}

fn cmd_extract(flags: &HashMap<String, String>) -> Result<(), String> {
    let noise_rel = get_f64(flags, "noise", 0.005)?;
    let model_name = flags
        .get("model")
        .map(String::as_str)
        .unwrap_or("angelov")
        .to_lowercase();
    let model: Box<dyn DcModel> = all_models()
        .into_iter()
        .find(|m| {
            let n = m.name().to_lowercase().replace(' ', "");
            n.starts_with(&model_name)
                || (model_name == "curtice2" && n == "curticequadratic")
                || (model_name == "curtice3" && n == "curticecubic")
        })
        .ok_or_else(|| format!("unknown model `{model_name}`"))?;

    let golden = GoldenDevice::default();
    let (vgs_grid, vds_grid) = GoldenDevice::standard_iv_grid();
    let bias_vgs = golden
        .device
        .bias_for_current(3.0, 0.06)
        .expect("bias reachable");
    let noise = MeasurementNoise {
        dc_relative: noise_rel,
        sparam_absolute: noise_rel,
        ..Default::default()
    };
    let data = ExtractionData {
        dc: golden.measure_dc(&vgs_grid, &vds_grid, &noise),
        sparams: golden.measure_sparams(bias_vgs, 3.0, &GoldenDevice::standard_freq_grid(), &noise),
        bias_vgs,
        bias_vds: 3.0,
    };
    let result = three_step(model.as_ref(), &data, &ThreeStepConfig::default());
    println!("model: {}", model.name());
    let rows: Vec<Vec<String>> = model
        .param_names()
        .iter()
        .zip(&result.dc_params)
        .map(|(n, v)| vec![n.to_string(), format!("{v:.5}")])
        .collect();
    println!("{}", format_table(&["parameter", "extracted"], &rows));
    println!(
        "DC RMSE = {:.4} (relative), S RMSE = {:.4}, evaluations = {}",
        result.dc_rmse,
        result.sparam_rmse,
        result.evaluations.iter().sum::<usize>(),
    );
    Ok(())
}

fn cmd_measure(flags: &HashMap<String, String>) -> Result<(), String> {
    let design = run_design(flags)?;
    let device = Phemt::atf54143_like();
    let cfg = BuildConfig {
        seed: get_usize(flags, "seed", 1)? as u64,
        ..Default::default()
    };
    let built = BuiltAmplifier::build(&design.snapped, &cfg);
    let freqs = linspace(0.8e9, 2.2e9, 29);
    let session =
        measure(&device, &built, &freqs, &cfg).ok_or("built unit has unreachable bias")?;
    let text = write_s2p(&session.response.s_rows(), &[], TouchstoneFormat::Ri);
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?;
            println!(
                "wrote {} frequency points to {path}",
                session.response.len()
            );
        }
        None => print!("{text}"),
    }
    println!(
        "in-band: worst |S11| {:.1} dB, min gain {:.2} dB, DGD {:.1} ps",
        session
            .response
            .band(1.1e9, 1.7e9)
            .worst_input_match_db()
            .unwrap_or(f64::NAN),
        session
            .response
            .band(1.1e9, 1.7e9)
            .min_gain_db()
            .unwrap_or(f64::NAN),
        session
            .response
            .band(1.1e9, 1.7e9)
            .differential_group_delay_s()
            .map_or(f64::NAN, |v| v * 1e12),
    );
    Ok(())
}

fn cmd_thermal(flags: &HashMap<String, String>) -> Result<(), String> {
    let design = run_design(flags)?;
    let device = Phemt::atf54143_like();
    let temps = [-40.0, -20.0, 0.0, 25.0, 45.0, 65.0, 85.0];
    let sweep =
        lna::band_sweep_over_temperature(&device, design.snapped, &BandSpec::gnss(), &temps);
    println!(
        "{:>10} {:>14} {:>14}",
        "T (degC)", "worst NF (dB)", "min gain (dB)"
    );
    for (t, nf, g) in sweep {
        println!("{t:>10.1} {nf:>14.3} {g:>14.2}");
    }
    Ok(())
}

fn cmd_im3(flags: &HashMap<String, String>) -> Result<(), String> {
    let design = run_design(flags)?;
    let device = Phemt::atf54143_like();
    let cfg = BuildConfig {
        seed: get_usize(flags, "seed", 1)? as u64,
        ..Default::default()
    };
    let built = BuiltAmplifier::build(&design.snapped, &cfg);
    let pins: Vec<f64> = (0..13).map(|k| -45.0 + 2.5 * k as f64).collect();
    let sweep =
        lna::measure_im3(&device, &built, &pins).ok_or("built unit has unreachable bias")?;
    println!(
        "{:>10} {:>14} {:>14}",
        "Pin (dBm)", "P_fund (dBm)", "P_IM3 (dBm)"
    );
    for r in &sweep.rows {
        println!(
            "{:>10.1} {:>14.2} {:>14.2}",
            r.pin_dbm, r.p_fund_dbm, r.p_im3_dbm
        );
    }
    println!(
        "OIP3 = {:.1} dBm, IIP3 = {:.1} dBm",
        sweep.oip3_dbm.ok_or("extrapolation failed")?,
        sweep.iip3_dbm.ok_or("extrapolation failed")?
    );
    Ok(())
}

fn cmd_yield(flags: &HashMap<String, String>) -> Result<(), String> {
    let design = run_design(flags)?;
    let device = Phemt::atf54143_like();
    let band = BandSpec::gnss();
    let nominal = BandMetrics::evaluate(&Amplifier::new(&device, design.snapped), &band)
        .ok_or("design infeasible")?;
    let spec = YieldSpec {
        max_nf_db: nominal.worst_nf_db + 0.05,
        min_gain_db: nominal.min_gain_db - 0.5,
        max_s11_db: -8.0,
        require_stability: true,
    };
    let report = yield_analysis(
        &device,
        &design.snapped,
        &spec,
        &band,
        get_usize(flags, "units", 200)?,
        &BuildConfig {
            tolerance: get_f64(flags, "tolerance", 0.05)?,
            ..Default::default()
        },
        get_usize(flags, "seed", 0)? as u64,
    );
    println!(
        "yield: {}/{} units pass ({:.1} %)",
        report.passing,
        report.units,
        100.0 * report.yield_fraction()
    );
    if let Some(mechanism) = report.dominant_failure() {
        println!("dominant failure mechanism: {mechanism}");
    }
    Ok(())
}
