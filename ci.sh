#!/usr/bin/env bash
# Tier-1 gate for the workspace: formatting, lints (best-effort — the
# offline toolchain may lack the clippy component), release build, tests.
# Run before committing and as the run_all_experiments.sh preflight.
#
# --write-baseline: refresh results/PROFILE_BASELINE.json from this
# run's aggregate profile instead of gating against it. Use after an
# intentional perf change, commit the new baseline with the change.
set -uo pipefail

write_baseline=0
for arg in "$@"; do
  case "$arg" in
    --write-baseline) write_baseline=1 ;;
    *) echo "ci.sh: unknown argument '$arg' (known: --write-baseline)"; exit 2 ;;
  esac
done

fail=0

echo "== cargo fmt --check"
if cargo fmt --version >/dev/null 2>&1; then
  cargo fmt --all -- --check || fail=1
else
  echo "   (rustfmt unavailable; skipping)"
fi

echo "== cargo clippy -D warnings (best-effort)"
if cargo clippy --version >/dev/null 2>&1; then
  cargo clippy --workspace --all-targets -- -D warnings || fail=1
else
  echo "   (clippy unavailable; skipping)"
fi

echo "== rfkit-analyze --baseline (fail on NEW findings only)"
# Diff a fresh run against the committed results/ANALYZE.json before the
# absolute gate below overwrites it. Keyed on (lint, file, message), so
# line drift from unrelated edits never re-flags an old finding, while
# anything this change introduces fails with a readable NEW delta.
analyze_tmp="$(mktemp)"
cargo run --release -q -p rfkit-analyze -- --deny warnings \
  --baseline results/ANALYZE.json --json "$analyze_tmp" || fail=1
rm -f "$analyze_tmp"

echo "== rfkit-analyze --deny warnings"
# Workspace lint engine: NaN-safe ordering, determinism, unsafe confinement,
# dataflow lints (hot-loop allocs, guards across solves, unseeded RNGs,
# fault-hook coverage), and the cross-artifact obs-name contract. Any
# non-suppressed warning or error fails the gate; suppressions are
# per-line `// rfkit-allow(<lint>[, until = "YYYY-MM-DD"])` comments and
# show up in review diffs (expired dates escalate to errors).
cargo run --release -q -p rfkit-analyze -- --deny warnings || fail=1

echo "== obs name contract (counter-name-drift registry export)"
# The drift errors themselves fail the gate above; this stage guards the
# extraction machinery — if the AST-based obs-name export ever shrinks
# dramatically, the contract check would go quietly vacuous.
# Rows after the two-line table header = one per distinct instrument name.
names="$(cargo run --release -q -p rfkit-analyze -- --dump-obs-names | tail -n +3 | wc -l | tr -d ' ')"
echo "   $names instrument names extracted"
if [ "$names" -lt 50 ]; then
  echo "   obs-name extraction shrank unexpectedly (<50 names)"
  fail=1
fi

echo "== cargo build --release"
cargo build --release || fail=1

echo "== cargo test -q"
cargo test -q --workspace --release || fail=1

echo "== cargo test --features numsan (numeric sanitizer armed)"
# Re-runs the numeric core and the end-to-end design tests with runtime
# NaN-creation checks compiled in. Catches silent NaN laundering that the
# default build (sanitizer compiled out, zero overhead) cannot see.
cargo test -q --release -p rfkit-num --features numsan || fail=1
cargo test -q --release -p gnss-lna --features numsan || fail=1

echo "== cargo test --features rfkit-faults (fault injection armed)"
# Re-runs the solver and degradation crates with the deterministic
# fault-injection hooks compiled in. This is the only configuration in
# which the recovery-path tests (fallback ladder, degraded sweeps, cache
# exclusion) exist; the default build compiles the hooks out entirely.
cargo test -q --release -p rfkit-robust --features rfkit-faults || fail=1
cargo test -q --release -p rfkit-circuit --features rfkit-faults || fail=1
cargo test -q --release -p lna --features rfkit-faults || fail=1
cargo test -q --release -p rfkit-serve --features rfkit-faults || fail=1

echo "== traced fault-injection smoke (RFKIT_TRACE=1, faults armed)"
# Arms a fault plan end to end and checks the retry/fallback/degradation
# counters actually reach the trace: the robustness telemetry is under
# test here, not the numerics.
rm -f results/TRACE_faults.jsonl
RFKIT_TRACE=1 RFKIT_TRACE_OUT=results/TRACE_faults.jsonl \
  cargo run --release -q --features rfkit-faults --example robust_faults \
  >/dev/null || fail=1
cargo run --release -q -p rfkit-obs --bin rfkit-trace -- --json \
  --expect dc.retry.attempts --expect dc.fallback.stage \
  --expect band.points.failed --expect faults.injected \
  results/TRACE_faults.jsonl >/dev/null || fail=1

echo "== traced end-to-end design run (RFKIT_TRACE=1)"
# Arms the observability layer for the full design example, then checks
# the emitted JSONL parses and contains the expected top-level spans —
# the tracing pipeline itself is under test here, not the numerics.
rm -f results/TRACE_ci.jsonl
RFKIT_TRACE=1 RFKIT_TRACE_OUT=results/TRACE_ci.jsonl \
  cargo run --release -q --example design_gnss_lna >/dev/null || fail=1
cargo run --release -q -p rfkit-obs --bin rfkit-trace -- --json \
  --expect design.total --expect design.optimize --expect opt.improved_goal \
  results/TRACE_ci.jsonl >/dev/null || fail=1

echo "== profile diff gate (RFKIT_TRACE_MODE=agg vs committed baseline)"
# Re-runs the design example with in-process aggregation (one profile
# document instead of per-event JSONL) and diffs per-path self time
# against the committed baseline. Tolerances are CI-grade: 4x relative
# with a 20ms self-time floor, because shared single-core runners
# jitter — the gate exists to catch order-of-magnitude structural
# regressions (a cache that stopped hitting, a fast path that fell off),
# not 10% drift. Refresh after an intentional perf change with
# `./ci.sh --write-baseline` and commit the result.
rm -f results/PROFILE_ci.json
RFKIT_TRACE=1 RFKIT_TRACE_MODE=agg RFKIT_TRACE_OUT=results/PROFILE_ci.json \
  cargo run --release -q --example design_gnss_lna >/dev/null || fail=1
if [ "$write_baseline" -eq 1 ]; then
  cp results/PROFILE_ci.json results/PROFILE_BASELINE.json || fail=1
  echo "   wrote results/PROFILE_BASELINE.json (commit it)"
fi
cargo run --release -q -p rfkit-obs --bin rfkit-trace -- diff \
  --rel-tol 4.0 --min-self-us 20000 \
  results/PROFILE_BASELINE.json results/PROFILE_ci.json || fail=1

echo "== bench_ac perf smoke (tiny grid, traced)"
# Runs the AC benchmark on a tiny grid with tracing armed. This proves
# cheaply that: the fast path stays bit-identical to the legacy path and
# the batch path stays inside SWEEP_TOL (bench_ac asserts both per grid
# point before timing); the structure classifier actually picked the
# bordered kernel for the 50+-node multi-stage workload and the shared
# plan cache saw hits; the pivot-reuse engine refactored far fewer times
# than it solved grid points (4 workloads x 16 points vs a bound of 8);
# the memo-cache counters fire; and results/BENCH_ac.json is written.
# Timings on the tiny grid are irrelevant; the full sweep is `bench_ac`
# with default arguments.
rm -f results/TRACE_bench_ac.jsonl results/BENCH_ac_smoke.json \
  results/PROFILE_bench_ac_smoke.json
RFKIT_TRACE=1 RFKIT_TRACE_OUT=results/TRACE_bench_ac.jsonl \
  cargo run --release -q -p lna-bench --bin bench_ac -- \
  --points 16 --reps 2 --out results/BENCH_ac_smoke.json \
  --profile-out results/PROFILE_bench_ac_smoke.json \
  >/dev/null || fail=1
# --expect-min floors assert the workloads actually ran at full size:
# 4 sweep workloads x 16 grid points = 64 solved points minimum, and
# the shared-plan cache must hit at least once per reused workload.
cargo run --release -q -p rfkit-obs --bin rfkit-trace -- --json \
  --expect circuit.ac.assemble_us --expect design.cache.hit \
  --expect design.cache.miss \
  --expect circuit.ac.sweep.path.bordered \
  --expect-min circuit.ac.sweep.points:64 \
  --expect-min plan.cache.hit:1 \
  --expect-max circuit.ac.sweep.refactors:8 \
  results/TRACE_bench_ac.jsonl >/dev/null || fail=1

echo "== surrogate screening smoke (traced example + bench_surrogate)"
# Runs the surrogate-screened study example with tracing armed and
# bounds the evaluation budget: the screen must actually prune
# (surrogate.reject fires) and the total number of full band sweeps
# must stay under the budget a working screen leaves behind — an
# accidentally-disarmed screen blows straight through it. The fixed
# seed makes the decision sequence exact; the band.evaluations ceiling
# carries slack only for parallel duplicate evaluations (concurrent
# misses on identical offspring), which timing may or may not dedup.
rm -f results/TRACE_surrogate.jsonl
RFKIT_TRACE=1 RFKIT_TRACE_OUT=results/TRACE_surrogate.jsonl \
  cargo run --release -q --example surrogate_screening >/dev/null || fail=1
cargo run --release -q -p rfkit-obs --bin rfkit-trace -- --json \
  --expect surrogate.fit --expect surrogate.true_evals \
  --expect-min surrogate.reject:1 \
  --expect-min surrogate.accept:1 \
  --expect-max band.evaluations:800 \
  results/TRACE_surrogate.jsonl >/dev/null || fail=1
# bench_surrogate smoke on a small study, written to a scratch path so
# the committed full-size artifact survives. Proves the two-arm
# warm-continuation protocol runs end to end, the screen actually
# rejects at this size, and well-formed JSON lands on disk; the ≥3x
# reduction target is only meaningful at full size (`bench_surrogate`
# with default arguments).
rm -f results/BENCH_surrogate_smoke.json results/PROFILE_bench_surrogate_smoke.json
cargo run --release -q -p lna-bench --bin bench_surrogate -- \
  --pop 24 --gens 8 --warm-gens 16 \
  --out results/BENCH_surrogate_smoke.json \
  --profile-out results/PROFILE_bench_surrogate_smoke.json \
  >/dev/null || fail=1
grep -q '"reduction"' results/BENCH_surrogate_smoke.json || fail=1

echo "== serve smoke (traced bench_serve, mixed concurrent load)"
# In-process load generator against the rfkit-serve batch server with
# tracing armed. bench_serve itself hard-asserts zero protocol errors,
# zero rejections at this queue size, and nonzero design- and plan-cache
# hits before it writes the report; the trace assertions then prove the
# request-lifecycle telemetry actually reached the sink — every request
# accepted was counted, the queue-depth and latency histograms fired,
# and nothing was rejected or malformed. 8 clients x 12 requests = 96
# timed requests; the floor ignores the warmup pass on purpose.
rm -f results/TRACE_serve.jsonl results/BENCH_serve_smoke.json
RFKIT_TRACE=1 RFKIT_TRACE_OUT=results/TRACE_serve.jsonl \
  cargo run --release -q -p lna-bench --bin bench_serve -- \
  --clients 8 --requests 12 --out results/BENCH_serve_smoke.json \
  >/dev/null || fail=1
cargo run --release -q -p rfkit-obs --bin rfkit-trace -- --json \
  --expect serve.requests.accepted --expect serve.requests.completed \
  --expect serve.queue.depth --expect serve.request.latency_us \
  --expect-min serve.requests.accepted:96 \
  --expect-max serve.requests.rejected:0 \
  --expect-max serve.protocol.errors:0 \
  results/TRACE_serve.jsonl >/dev/null || fail=1
grep -q '"throughput_rps"' results/BENCH_serve_smoke.json || fail=1

if [ "$fail" -ne 0 ]; then
  echo "ci.sh: FAILED"
  exit 1
fi
echo "ci.sh: all checks passed"
